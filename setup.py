"""Packaging for the repro library (src/ layout, setuptools only).

Editable install for development::

    pip install -e .

Optional extras::

    pip install -e ".[test]"        # pytest + hypothesis
    pip install -e ".[benchmarks]"  # the benchmark suite's runner deps
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent


def read_version() -> str:
    init = _HERE / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__ = "([^"]+)"', init.read_text(), re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


def read_readme() -> str:
    readme = _HERE / "README.md"
    return readme.read_text(encoding="utf-8") if readme.exists() else ""


TEST_REQUIRES = ["pytest>=7.0", "hypothesis>=6.0"]
# The benchmark suite runs through pytest; kept as a separate extra so a
# serving-only install stays lean and future plotting deps have a home.
BENCHMARK_REQUIRES = ["pytest>=7.0"]

setup(
    name="repro-dp-grids",
    version=read_version(),
    description=(
        "Reproduction of 'Differentially Private Grids for Geospatial Data' "
        "(Qardaji, Yang, Li; ICDE 2013) with a synopsis serving layer"
    ),
    long_description=read_readme(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "test": TEST_REQUIRES,
        "benchmarks": BENCHMARK_REQUIRES,
        "dev": sorted(set(TEST_REQUIRES + BENCHMARK_REQUIRES)),
    },
    entry_points={
        "console_scripts": [
            "repro = repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: Security",
    ],
)
