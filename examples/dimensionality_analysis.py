"""Section IV-C in numbers: why hierarchies stop paying off beyond 1-D.

Prints the paper's border-fraction model across dimensions (including the
worked example M = 10,000, b = 4 where the 2-D border is 100x the 1-D one)
and backs it with a small experiment: a grid hierarchy versus a flat grid
on a 2-D dataset, where the measured benefit is small exactly as predicted.

Run with:  python examples/dimensionality_analysis.py
"""

from repro.analysis.dimensionality import (
    border_fraction,
    hierarchy_benefit_ratio,
    paper_example,
)
from repro.baselines.hierarchy import HierarchicalGridBuilder
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import standard_setup
from repro.experiments.runner import evaluate_builder


def main() -> None:
    example = paper_example()
    print("The paper's worked example (M = 10,000 cells, groups of b = 4):")
    print(f"  1-D border fraction: {example['1d']:.4f}")
    print(f"  2-D border fraction: {example['2d']:.4f}")
    print(f"  ratio: {example['ratio']:.0f}x more border work in 2-D\n")

    print(f"{'dimension':>10} {'border fraction':>16} {'hierarchy benefit':>18}")
    for dimension in (1, 2, 3, 4, 5):
        border = border_fraction(10_000, 4, dimension)
        benefit = hierarchy_benefit_ratio(10_000, 4, dimension)
        print(f"{dimension:>10} {border:>16.4f} {benefit:>18.4f}")

    print(
        "\nEmpirical check on 2-D data (storage dataset, eps = 1): a 2-level "
        "hierarchy vs a flat grid at the same leaf size."
    )
    setup = standard_setup("storage", queries_per_size=60)
    flat = evaluate_builder(
        UniformGridBuilder(grid_size=32), setup.dataset, setup.workload, 1.0,
        n_trials=3, seed=0,
    )
    hierarchy = evaluate_builder(
        HierarchicalGridBuilder(32, branching=2, depth=2),
        setup.dataset, setup.workload, 1.0, n_trials=3, seed=0,
    )
    print(f"  flat U32 mean relative error:      {flat.mean_relative():.4f}")
    print(f"  hierarchy H2,2 mean relative error: {hierarchy.mean_relative():.4f}")
    ratio = hierarchy.mean_relative() / flat.mean_relative()
    print(
        f"  ratio {ratio:.2f} — in 2-D the hierarchy's interior shortcut "
        "barely offsets the budget it diverts from the leaves, matching the "
        "paper's analysis (and its prediction that 3-D+ would be worse)."
    )


if __name__ == "__main__":
    main()
