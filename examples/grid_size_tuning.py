"""Why Guideline 1 works: sweep the UG grid size and watch the two errors.

Reproduces the intuition of Sections II-B and IV-A interactively: for a
range of grid sizes, this example measures the noise error and the
non-uniformity error separately (using the library's error-model tools) and
shows that their sum bottoms out where Guideline 1 predicts.

Run with:  python examples/grid_size_tuning.py [dataset] [epsilon]
"""

import sys

from repro.analysis.error_model import measure_decomposition
from repro.core.guidelines import guideline1_grid_size
from repro.experiments.base import standard_setup
from repro.experiments.runner import evaluate_builder
from repro.core.uniform_grid import UniformGridBuilder


def main(dataset_name: str = "storage", epsilon: float = 1.0) -> None:
    setup = standard_setup(
        dataset_name,
        n_points=None if dataset_name == "storage" else 50_000,
        queries_per_size=60,
    )
    n = setup.dataset.size
    suggested = guideline1_grid_size(n, epsilon)
    print(
        f"dataset={dataset_name}, N={n}, epsilon={epsilon:g} "
        f"-> Guideline 1 suggests m = {suggested}\n"
    )

    sizes = sorted(
        {max(1, suggested // 8), max(1, suggested // 4), max(1, suggested // 2),
         suggested, suggested * 2, suggested * 4, suggested * 8}
    )
    header = (
        f"{'m':>6} {'noise err':>12} {'non-unif err':>13} "
        f"{'total (model)':>14} {'mean rel err':>13}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for m in sizes:
        decomposition = measure_decomposition(
            setup.dataset, m, epsilon, setup.workload, rng=0
        )
        result = evaluate_builder(
            UniformGridBuilder(grid_size=m), setup.dataset, setup.workload,
            epsilon, n_trials=2, seed=0,
        )
        rows.append((m, result.mean_relative()))
        marker = "  <- suggested" if m == suggested else ""
        print(
            f"{m:>6} {decomposition.noise_error:>12.1f} "
            f"{decomposition.nonuniformity_error:>13.1f} "
            f"{decomposition.total_error:>14.1f} "
            f"{result.mean_relative():>13.4f}{marker}"
        )

    best_m = min(rows, key=lambda row: row[1])[0]
    print(
        f"\nempirically best size in this sweep: {best_m} "
        f"(suggested {suggested}) — noise error grows with m, "
        f"non-uniformity error shrinks, and the sum bottoms out in between."
    )


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "storage"
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    main(dataset, eps)
