"""Publish a differentially private *synthetic dataset*.

The paper notes a synopsis "can then be used either for generating a
synthetic dataset, or for answering queries directly".  This example does
the former: it fits AG to a sensitive point set, samples a synthetic point
cloud from the released noisy counts, saves it to CSV, and shows that the
synthetic data answers range queries about as well as the synopsis itself.

Run with:  python examples/synthetic_release.py [output.csv]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import AdaptiveGridBuilder, GeoDataset, make_landmark
from repro.queries.metrics import relative_errors
from repro.queries.workload import QueryWorkload


def main(output_path: str | None = None) -> None:
    sensitive = make_landmark(80_000, rng=1)
    epsilon = 1.0
    rng = np.random.default_rng(7)

    # Fit once; the synopsis is the only thing derived from the raw data.
    synopsis = AdaptiveGridBuilder().fit(sensitive, epsilon, rng)

    # Sample a synthetic point cloud from the released counts and persist it.
    cloud = synopsis.synthetic_points(rng)
    synthetic = GeoDataset.from_points(
        cloud, domain=sensitive.domain, name="landmark-synthetic", clip=True
    )
    if output_path is None:
        output_path = str(Path(tempfile.gettempdir()) / "landmark_synthetic.csv")
    synthetic.to_csv(output_path)
    print(
        f"released {synthetic.size} synthetic points "
        f"(original N = {sensitive.size}) -> {output_path}"
    )

    # Quality check: answer a fresh workload from (a) the synopsis and
    # (b) the synthetic dataset, and compare both against the truth.
    workload = QueryWorkload.generate(
        sensitive, q6_width=40.0, q6_height=20.0, rng=3, queries_per_size=50
    )
    print(f"\n{'size':<6} {'synopsis mean RE':>18} {'synthetic mean RE':>19}")
    for query_set in workload.query_sets:
        synopsis_estimates = synopsis.answer_many(query_set.rects)
        synthetic_estimates = synthetic.count_many(query_set.rects)
        synopsis_errors = relative_errors(
            synopsis_estimates, query_set.true_answers, sensitive.size
        )
        synthetic_errors = relative_errors(
            synthetic_estimates, query_set.true_answers, sensitive.size
        )
        print(
            f"{query_set.size.label:<6} {synopsis_errors.mean():>18.4f} "
            f"{synthetic_errors.mean():>19.4f}"
        )
    print(
        "\nThe synthetic dataset inherits the synopsis's accuracy: it is a "
        "drop-in, shareable stand-in for the sensitive points."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
