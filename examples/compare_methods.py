"""Compare all synopsis methods on one dataset (a mini Figure 5).

Evaluates KD-hybrid, UG, Privelet, grid hierarchy, and AG on the same
workload and prints the paper's two report styles: mean relative error per
query size, and pooled candlestick profiles.

Run with:  python examples/compare_methods.py [dataset] [epsilon]
           e.g.  python examples/compare_methods.py landmark 0.1
"""

import sys

from repro import (
    AdaptiveGridBuilder,
    HierarchicalGridBuilder,
    KDHybridBuilder,
    PriveletBuilder,
    UniformGridBuilder,
    guideline1_grid_size,
)
from repro.experiments.base import standard_setup
from repro.experiments.report import mean_by_size_table, profile_table
from repro.experiments.runner import evaluate_builders


def main(dataset_name: str = "storage", epsilon: float = 1.0) -> None:
    # 40k points keeps this example snappy; benchmarks run at full scale.
    setup = standard_setup(
        dataset_name,
        n_points=None if dataset_name == "storage" else 40_000,
        queries_per_size=100,
    )
    suggested = guideline1_grid_size(setup.dataset.size, epsilon)
    hierarchy_leaf = max(4, suggested - suggested % 4)  # divisible by 2^(d-1)

    builders = [
        KDHybridBuilder(),
        UniformGridBuilder(),  # Guideline 1
        PriveletBuilder(grid_size=suggested),
        HierarchicalGridBuilder(hierarchy_leaf, branching=2, depth=3),
        AdaptiveGridBuilder(),  # Guidelines 1 + 2
    ]

    print(
        f"dataset={dataset_name} (N={setup.dataset.size}), epsilon={epsilon:g}, "
        f"suggested UG size={suggested}\n"
    )
    results = evaluate_builders(
        builders, setup.dataset, setup.workload, epsilon, n_trials=2, seed=0
    )
    print(mean_by_size_table(results, title="mean relative error per query size"))
    print()
    print(profile_table(results, title="pooled relative-error candlesticks"))

    winner = min(results, key=lambda result: result.mean_relative())
    print(f"\nlowest mean relative error: {winner.label}")


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "storage"
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    main(dataset, eps)
