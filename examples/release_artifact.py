"""A full curator → consumer release workflow.

The synopsis is a *publishable artifact*: differential privacy is immune
to post-processing, so once the curator has fitted it, the file can be
shared with anyone.  This example plays both roles:

* **curator** — owns the sensitive points; estimates a dataset-specific
  Guideline 1 constant, fits AG, audits the mechanism's privacy
  empirically, and writes the release to disk;
* **consumer** — never sees the raw data; loads the file and answers
  range queries from the released noisy counts alone.

Run with:  python examples/release_artifact.py [release.npz]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AdaptiveGridBuilder,
    Rect,
    estimate_c,
    load_synopsis,
    make_landmark,
    save_synopsis,
    uniformity_profile,
)


def curator(release_path: Path) -> None:
    sensitive = make_landmark(60_000, rng=2)
    epsilon = 1.0
    rng = np.random.default_rng(11)

    # Understand the data before choosing parameters (this analysis uses
    # raw data, so it happens on the curator's side only).
    profile = uniformity_profile(sensitive)
    c = estimate_c(sensitive, rng=rng)
    print("curator: dataset profile")
    print(f"  empty cells (64x64): {profile.empty_fraction:.1%}")
    print(f"  density CV: {profile.density_cv:.2f}")
    print(f"  estimated Guideline 1 constant c = {c:.1f} (paper default: 10)")

    synopsis = AdaptiveGridBuilder(c=c, c2=c / 2).fit(sensitive, epsilon, rng)
    save_synopsis(synopsis, release_path)
    size_kb = release_path.stat().st_size / 1024
    print(
        f"curator: wrote eps={epsilon:g} release with "
        f"{synopsis.leaf_cell_count()} leaf cells to {release_path} "
        f"({size_kb:.0f} KiB)\n"
    )


def consumer(release_path: Path) -> None:
    synopsis = load_synopsis(release_path)
    print(f"consumer: loaded synopsis (eps = {synopsis.epsilon:g})")
    regions = {
        "north-east US": Rect(-80.0, 38.0, -70.5, 45.0),
        "west coast": Rect(-125.0, 32.0, -115.0, 49.0),
        "gulf of Mexico (empty)": Rect(-95.0, 18.0, -85.0, 24.0),
    }
    for name, rect in regions.items():
        print(f"  {name:<25} ~{synopsis.answer(rect):>10.0f} landmarks")
    print(f"  {'TOTAL':<25} ~{synopsis.total():>10.0f}")


def main(path_argument: str | None = None) -> None:
    if path_argument is None:
        path = Path(tempfile.gettempdir()) / "landmark_release.npz"
    else:
        path = Path(path_argument)
    curator(path)
    consumer(path)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
