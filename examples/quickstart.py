"""Quickstart: build a differentially private synopsis and query it.

Walks through the library's core loop on the checkin dataset analogue:

1. generate (or load) a 2-D point dataset;
2. fit a synopsis — UG with Guideline 1, then AG — under a privacy budget;
3. answer rectangular count queries from the released synopsis;
4. compare the noisy answers against ground truth.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AdaptiveGridBuilder,
    Rect,
    UniformGridBuilder,
    make_checkin,
)


def main() -> None:
    # 1. A sensitive dataset: 100k "check-ins" on a world-map-like
    #    distribution.  In a real deployment these points are private.
    data = make_checkin(100_000, rng=0)
    print(f"dataset: {data.name}, N = {data.size}, domain = {data.domain!r}")

    epsilon = 1.0
    rng = np.random.default_rng(42)

    # 2. Fit the two methods from the paper.  The builders pick their grid
    #    sizes automatically (Guideline 1 for UG; Guideline 2 per cell for
    #    AG) and spend exactly `epsilon` of privacy budget each.
    ug = UniformGridBuilder().fit(data, epsilon, rng)
    ag = AdaptiveGridBuilder().fit(data, epsilon, rng)
    print(f"UG grid: {ug.grid_size[0]} x {ug.grid_size[1]}")
    print(
        f"AG first level: {ag.first_level_size[0]} x {ag.first_level_size[1]}, "
        f"{ag.leaf_cell_count()} leaf cells total"
    )

    # 3. Ask range-count questions of the *released* synopses.  Once fitted,
    #    a synopsis never touches the raw points again.
    queries = {
        "Western Europe": Rect(-10.0, 36.0, 25.0, 60.0),
        "Continental US": Rect(-125.0, 25.0, -65.0, 50.0),
        "Mid Atlantic (empty ocean)": Rect(-40.0, -20.0, -20.0, 10.0),
        "One city block scale": Rect(-0.5, 51.2, 0.5, 51.8),
    }

    print(f"\n{'query':<30} {'truth':>8} {'UG':>10} {'AG':>10}")
    for name, rect in queries.items():
        truth = data.count_in(rect)
        print(
            f"{name:<30} {truth:>8d} {ug.answer(rect):>10.1f} "
            f"{ag.answer(rect):>10.1f}"
        )

    # 4. The total is a query too; both methods track it well.
    print(f"\n{'TOTAL':<30} {data.size:>8d} {ug.total():>10.1f} {ag.total():>10.1f}")


if __name__ == "__main__":
    main()
