"""Performance benchmark: the long-tail flat kernels.

Not a paper figure — an engineering benchmark for the library itself,
covering the three families ISSUE 6 flattened onto the CSR + registry
pattern, at figure-3 scale (150k points, 6 sizes x 200 queries):

* **Privelet**: vectorised Haar build vs the retained per-lane
  ``fit_reference`` (releases asserted bit-identical), and the
  coefficient-space :class:`WaveletRangeEngine` vs the scalar
  reconstructed-grid loop.
* **Hierarchy**: array-stack build vs ``fit_reference`` (bit-identical),
  and the inherited prefix-sum batch engine vs the scalar grid loop.
* **ND grid**: the d = 2 servable embedding build vs the raw reference
  (bit-identical) with :class:`NDPrefixSumEngine` vs the scalar
  tensordot loop, plus a d = 3 sweep on the hyper-rectangle workload.

Bit-identity is asserted in *every* mode; the registry must resolve all
three engines without ever touching ``fallback_engine_count()``.
Results land in ``BENCH_longtail.json`` at the repo root so the perf
trajectory is tracked in-tree.

``BENCH_LONGTAIL_QUICK=1`` (the CI smoke mode, ``make
bench-longtail-quick``) shrinks the data and workload and keeps every
equivalence assertion, but skips the speedup floors and leaves the
tracked JSON untouched.
"""

import os
import time

import numpy as np
from conftest import write_json_report, write_report

from repro.baselines.hierarchy import HierarchicalGridBuilder
from repro.baselines.privelet import PriveletBuilder
from repro.datasets.synthetic import make_checkin
from repro.experiments.report import format_table
from repro.extensions.multidim import (
    MultiDimGridBuilder,
    NDBox,
    NDUniformGridBuilder,
)
from repro.queries.engine import (
    NDPrefixSumEngine,
    WaveletRangeEngine,
    fallback_engine_count,
    make_engine,
    scalar_answer_batch,
)
from repro.queries.workload import QueryWorkload, nd_hyperrectangle_workload

QUICK = os.environ.get("BENCH_LONGTAIL_QUICK", "") not in ("", "0")

#: Figure-3 scale (see benchmarks/conftest.py).
BENCH_N = 20_000 if QUICK else 150_000
QUERIES_PER_SIZE = 50 if QUICK else 200
ND_POINTS = 10_000 if QUICK else 60_000
ND_QUERIES = 100 if QUICK else 400
EPSILON = 1.0

#: Acceptance floor: every flat batch engine beats its scalar loop.
MIN_QUERY_SPEEDUP = 2.0


def _best_seconds(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _scalar_loop(synopsis, rects):
    """The pre-engine path: one scalar grid estimate per rectangle.

    The raw ND reference answers :class:`NDBox` queries, not rectangles.
    """
    if hasattr(synopsis, "dimension"):
        return np.array(
            [
                synopsis.answer(
                    NDBox(np.array([r.x_lo, r.y_lo]), np.array([r.x_hi, r.y_hi]))
                )
                for r in rects
            ]
        )
    return np.array([synopsis.answer(rect) for rect in rects])


def test_longtail_kernels_vs_reference():
    fallbacks_before = fallback_engine_count()
    dataset = make_checkin(BENCH_N, rng=3)
    workload = QueryWorkload.generate(
        dataset, 90.0, 90.0, np.random.default_rng(11),
        queries_per_size=QUERIES_PER_SIZE,
    )
    rects = workload.all_rects()
    rounds = 2 if QUICK else 3

    families = [
        ("Privelet", PriveletBuilder(), WaveletRangeEngine),
        ("Hier", HierarchicalGridBuilder(), None),  # inherits the grid engine
        ("UGnd", MultiDimGridBuilder(), NDPrefixSumEngine),
    ]

    rows = []
    results = {}
    for label, builder, engine_type in families:
        flat = builder.fit(dataset, EPSILON, np.random.default_rng(29))
        reference = builder.fit_reference(
            dataset, EPSILON, np.random.default_rng(29)
        )
        np.testing.assert_array_equal(flat.counts, reference.counts)

        build_flat_s = _best_seconds(
            lambda: builder.fit(dataset, EPSILON, np.random.default_rng(29)),
            rounds=rounds,
        )
        build_reference_s = _best_seconds(
            lambda: builder.fit_reference(
                dataset, EPSILON, np.random.default_rng(29)
            ),
            rounds=rounds,
        )

        engine = make_engine(flat)
        if engine_type is not None:
            assert isinstance(engine, engine_type)
        engine_answers = engine.answer_batch(rects)
        # Privelet and the ND embedding route their scalar `answer`
        # through a one-row engine call, so batch and scalar agree bit
        # for bit; the hierarchy's scalar path is the direct grid
        # estimate, which re-associates sums — float rounding only.
        scalar_flat = scalar_answer_batch(flat, rects)
        if label == "Hier":
            hier_scale = max(1.0, float(np.abs(scalar_flat).max()))
            np.testing.assert_allclose(
                engine_answers, scalar_flat,
                rtol=1e-9, atol=1e-9 * hier_scale,
            )
        else:
            np.testing.assert_array_equal(engine_answers, scalar_flat)
        # Both match the reference release's scalar grid loop to float
        # rounding (the wavelet engine evaluates in coefficient space).
        scalar_answers = _scalar_loop(reference, rects)
        scale = max(1.0, float(np.abs(scalar_answers).max()))
        np.testing.assert_allclose(
            engine_answers, scalar_answers, rtol=1e-9, atol=1e-9 * scale
        )

        query_engine_s = _best_seconds(lambda: engine.answer_batch(rects))
        query_scalar_s = _best_seconds(
            lambda: _scalar_loop(reference, rects), rounds=1 if QUICK else 2
        )

        build_speedup = build_reference_s / max(build_flat_s, 1e-9)
        query_speedup = query_scalar_s / max(query_engine_s, 1e-9)
        results[label] = {
            "n_points": BENCH_N,
            "n_queries": len(rects),
            "grid_size": flat.layout.shape[0],
            "build_reference_s": build_reference_s,
            "build_flat_s": build_flat_s,
            "build_speedup": build_speedup,
            "query_scalar_s": query_scalar_s,
            "query_engine_s": query_engine_s,
            "query_speedup": query_speedup,
            "bit_identical_release": True,
        }
        rows.append(
            [
                label, f"{flat.layout.shape[0]}",
                f"{build_reference_s * 1e3:.0f}", f"{build_flat_s * 1e3:.0f}",
                f"{build_speedup:.1f}x",
                f"{query_scalar_s * 1e3:.0f}", f"{query_engine_s * 1e3:.1f}",
                f"{query_speedup:.1f}x",
            ]
        )

    # d = 3: the prefix-sum engine beyond what the 2-D service can reach.
    rng = np.random.default_rng(5)
    box = NDBox(np.zeros(3), np.ones(3))
    points = rng.uniform(box.lows, box.highs, size=(ND_POINTS, 3))
    nd = NDUniformGridBuilder().fit(
        points, box, EPSILON, np.random.default_rng(29)
    )
    boxes, _ = nd_hyperrectangle_workload(
        points, box, np.random.default_rng(11), n_queries=ND_QUERIES
    )
    engine = nd.batch_engine()
    assert isinstance(engine, NDPrefixSumEngine)
    engine_answers = engine.answer_batch(boxes)
    scalar_answers = np.array(
        [nd.answer(NDBox(row[:3], row[3:])) for row in boxes]
    )
    scale = max(1.0, float(np.abs(scalar_answers).max()))
    np.testing.assert_allclose(
        engine_answers, scalar_answers, rtol=1e-9, atol=1e-9 * scale
    )
    query_engine_s = _best_seconds(lambda: engine.answer_batch(boxes))
    query_scalar_s = _best_seconds(
        lambda: np.array([nd.answer(NDBox(row[:3], row[3:])) for row in boxes]),
        rounds=1 if QUICK else 2,
    )
    nd_speedup = query_scalar_s / max(query_engine_s, 1e-9)
    results["UGnd-d3"] = {
        "n_points": ND_POINTS,
        "n_queries": int(boxes.shape[0]),
        "grid_size": nd.layout.m,
        "query_scalar_s": query_scalar_s,
        "query_engine_s": query_engine_s,
        "query_speedup": nd_speedup,
        "bit_identical_release": True,
    }
    rows.append(
        [
            "UGnd-d3", f"{nd.layout.m}", "-", "-", "-",
            f"{query_scalar_s * 1e3:.0f}", f"{query_engine_s * 1e3:.1f}",
            f"{nd_speedup:.1f}x",
        ]
    )

    # The registry resolved every engine above; nothing fell back to the
    # scalar loop — the ISSUE 6 acceptance criterion.
    assert fallback_engine_count() == fallbacks_before

    table = format_table(
        [
            "method", "m",
            "build ref ms", "build flat ms", "build",
            "query ref ms", "query flat ms", "query",
        ],
        rows,
    )
    write_report("longtail", table)

    if QUICK:
        return  # smoke mode: equivalence checked, perf history untouched

    payload = {
        "cpu_count": os.cpu_count() or 1,
        "n_points": BENCH_N,
        "n_queries": len(rects),
        "methods": results,
    }
    write_json_report("longtail", payload)

    for label, entry in results.items():
        assert entry["query_speedup"] >= MIN_QUERY_SPEEDUP, (label, entry)
