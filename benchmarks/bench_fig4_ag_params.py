"""Benchmark: Figure 4 — the AG parameter study.

Paper shapes asserted:

* AG at/near the suggested m1 beats UG and Privelet at the best UG size
  (column 1 of the figure);
* AG is robust to m1: a 4x range of first-level sizes stays within a
  modest factor of the best (column 2);
* c2 = 5 is no worse than c2 = 15, and alpha = 0.75 is no better than
  alpha = 0.5 (columns 3-4).
"""

import pytest
from conftest import BENCH_N, BENCH_QUERIES, BENCH_WORKERS, write_report

from repro.core.guidelines import adaptive_first_level_size, guideline1_grid_size
from repro.experiments import figure4
from repro.experiments.base import standard_setup
from repro.experiments.runner import evaluate_builder
from repro.core.uniform_grid import UniformGridBuilder

PANELS = [
    ("checkin", 1.0),
    ("landmark", 0.1),
]


@pytest.mark.parametrize("dataset_name, epsilon", PANELS)
def test_figure4_vary_m1(benchmark, dataset_name, epsilon):
    report = benchmark.pedantic(
        lambda: figure4.run_vary_m1(
            dataset_name,
            epsilon,
            n_points=BENCH_N[dataset_name],
            queries_per_size=BENCH_QUERIES,
            seed=29,
            n_workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"fig4_vary_m1_{dataset_name}_eps{epsilon:g}", report.render())

    results = report.data["results"]
    suggested = report.data["suggested_m1"]
    means = {m1: results[f"A{m1},5"].mean_relative() for m1 in report.data["m1_values"]}
    best = min(means.values())
    # The suggested m1 is at or near the sweep optimum.
    assert means[suggested] <= best * 1.35
    # Robustness: every m1 within [suggested/2, suggested*2] stays close.
    near = [m for m in means if suggested / 2 <= m <= suggested * 2]
    assert all(means[m] <= best * 2.0 for m in near)


@pytest.mark.parametrize("dataset_name, epsilon", PANELS)
def test_figure4_vary_alpha_c2(benchmark, dataset_name, epsilon):
    setup_n = BENCH_N[dataset_name]
    m1 = adaptive_first_level_size(setup_n, epsilon)
    report = benchmark.pedantic(
        lambda: figure4.run_vary_alpha_c2(
            dataset_name,
            epsilon,
            m1=m1,
            n_points=setup_n,
            queries_per_size=BENCH_QUERIES,
            seed=31,
            n_workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"fig4_alpha_c2_{dataset_name}_eps{epsilon:g}", report.render())

    grid = report.data["mean_grid"]
    # c2 = 5 beats (or matches) c2 = 15 at the default alpha.
    assert grid[(0.5, 5.0)] <= grid[(0.5, 15.0)] * 1.05
    # alpha = 0.75 is not better than alpha = 0.5 at the suggested c2.
    assert grid[(0.5, 5.0)] <= grid[(0.75, 5.0)] * 1.05
    # alpha in {0.25, 0.5} give similar accuracy (paper: flat in [0.2,0.6]).
    ratio = grid[(0.25, 5.0)] / grid[(0.5, 5.0)]
    assert 0.5 < ratio < 2.0


@pytest.mark.parametrize("dataset_name, epsilon", [("checkin", 1.0)])
def test_figure4_ag_beats_ug_and_privelet(benchmark, dataset_name, epsilon):
    n = BENCH_N[dataset_name]
    ug_size = guideline1_grid_size(n, epsilon)
    m1 = adaptive_first_level_size(n, epsilon)
    report = benchmark.pedantic(
        lambda: figure4.run_versus_ug(
            dataset_name,
            epsilon,
            ug_size=ug_size,
            ag_m1_values=[m1 // 2, m1],
            n_points=n,
            queries_per_size=BENCH_QUERIES,
            seed=37,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"fig4_vs_ug_{dataset_name}_eps{epsilon:g}", report.render())

    results = report.data["results"]
    ag_best = min(
        result.mean_relative()
        for label, result in results.items()
        if label.startswith("A")
    )
    assert ag_best <= results[f"U{ug_size}"].mean_relative()
    assert ag_best <= results[f"W{ug_size}"].mean_relative()
