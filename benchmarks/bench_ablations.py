"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but direct probes of its design decisions:

* the Guideline 1 constant ``c = 10`` sits on a broad optimum plateau;
* AG's two-level constrained inference pays for itself;
* geometric budget allocation helps the KD-hybrid tree;
* AG's second level is doing real work (vs a first-level-only release).
"""

import pytest
from conftest import BENCH_N, BENCH_QUERIES, write_report

from repro.baselines.kd_tree import KDTreeBuilder
from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import standard_setup
from repro.experiments.report import format_table
from repro.experiments.runner import evaluate_builder


@pytest.fixture(scope="module")
def landmark_setup():
    return standard_setup(
        "landmark", n_points=BENCH_N["landmark"], queries_per_size=BENCH_QUERIES
    )


def test_ablation_guideline_c(benchmark, landmark_setup):
    """Sweep c in Guideline 1: c = 10 lies on the optimum plateau."""
    c_values = (2.5, 5.0, 10.0, 20.0, 40.0)

    def run():
        return {
            c: evaluate_builder(
                UniformGridBuilder(c=c), landmark_setup.dataset,
                landmark_setup.workload, 1.0, seed=59,
            ).mean_relative()
            for c in c_values
        }

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_guideline_c",
        format_table(
            ["c", "mean relative error"],
            [[f"{c:g}", f"{mean:.4f}"] for c, mean in means.items()],
            title="Guideline 1 constant sweep (landmark, eps=1)",
        ),
    )
    best = min(means.values())
    assert means[10.0] <= best * 1.4  # c = 10 is on the plateau


def test_ablation_ag_inference(benchmark, landmark_setup):
    """Constrained inference makes AG at least as accurate, never worse."""

    def run():
        with_ci = evaluate_builder(
            AdaptiveGridBuilder(constrained_inference=True),
            landmark_setup.dataset, landmark_setup.workload, 1.0,
            n_trials=2, seed=61,
        ).mean_relative()
        without_ci = evaluate_builder(
            AdaptiveGridBuilder(constrained_inference=False),
            landmark_setup.dataset, landmark_setup.workload, 1.0,
            n_trials=2, seed=61,
        ).mean_relative()
        return with_ci, without_ci

    with_ci, without_ci = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_ag_inference",
        format_table(
            ["variant", "mean relative error"],
            [["AG + constrained inference", f"{with_ci:.4f}"],
             ["AG without inference", f"{without_ci:.4f}"]],
            title="AG constrained-inference ablation (landmark, eps=1)",
        ),
    )
    assert with_ci <= without_ci * 1.1


def test_ablation_kd_budget_allocation(benchmark, landmark_setup):
    """Geometric budgets (Cormode et al.) do not hurt the hybrid tree."""

    def run():
        geometric = evaluate_builder(
            KDTreeBuilder(
                depth=10, quadtree_levels=4, geometric_budget=True,
                constrained_inference=True, median_fraction=0.15,
            ),
            landmark_setup.dataset, landmark_setup.workload, 1.0, seed=67,
            label="geometric",
        ).mean_relative()
        uniform = evaluate_builder(
            KDTreeBuilder(
                depth=10, quadtree_levels=4, geometric_budget=False,
                constrained_inference=True, median_fraction=0.15,
            ),
            landmark_setup.dataset, landmark_setup.workload, 1.0, seed=67,
            label="uniform",
        ).mean_relative()
        return geometric, uniform

    geometric, uniform = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_kd_budget",
        format_table(
            ["allocation", "mean relative error"],
            [["geometric (2^(1/3))", f"{geometric:.4f}"],
             ["uniform", f"{uniform:.4f}"]],
            title="KD-hybrid budget allocation ablation (landmark, eps=1)",
        ),
    )
    assert geometric <= uniform * 1.25


def test_ablation_ag_second_level(benchmark, landmark_setup):
    """AG's adaptive second level beats releasing only the coarse grid."""

    def run():
        m1 = 30
        two_level = evaluate_builder(
            AdaptiveGridBuilder(first_level_size=m1),
            landmark_setup.dataset, landmark_setup.workload, 1.0,
            n_trials=2, seed=71,
        ).mean_relative()
        coarse_only = evaluate_builder(
            UniformGridBuilder(grid_size=m1),
            landmark_setup.dataset, landmark_setup.workload, 1.0,
            n_trials=2, seed=71,
        ).mean_relative()
        return two_level, coarse_only

    two_level, coarse_only = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_ag_second_level",
        format_table(
            ["variant", "mean relative error"],
            [["AG (m1=30 + adaptive level 2)", f"{two_level:.4f}"],
             ["UG at m=30 (coarse only)", f"{coarse_only:.4f}"]],
            title="AG second-level ablation (landmark, eps=1)",
        ),
    )
    assert two_level < coarse_only


def test_ablation_aspect_adaptive_grid(benchmark):
    """Square cells on a non-square domain (checkin is 360 x 150).

    The paper always uses m x m; this measures what (if anything) the
    aspect-matched variant buys.
    """
    setup = standard_setup(
        "checkin", n_points=BENCH_N["checkin"], queries_per_size=BENCH_QUERIES
    )

    def run():
        square = evaluate_builder(
            UniformGridBuilder(), setup.dataset, setup.workload, 1.0,
            n_trials=2, seed=89, label="m x m",
        ).mean_relative()
        adaptive = evaluate_builder(
            UniformGridBuilder(aspect_adaptive=True),
            setup.dataset, setup.workload, 1.0,
            n_trials=2, seed=89, label="aspect-matched",
        ).mean_relative()
        return square, adaptive

    square, adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_aspect",
        format_table(
            ["grid", "mean relative error"],
            [["m x m (paper)", f"{square:.4f}"],
             ["aspect-matched cells", f"{adaptive:.4f}"]],
            title="Aspect-adaptive grid ablation (checkin, eps=1)",
        ),
    )
    # Neither variant should dominate wildly; the paper's square grid is
    # within a modest factor of the aspect-matched one.
    assert 0.5 < square / adaptive < 2.0


def test_ablation_nonnegativity_postprocess(benchmark, landmark_setup):
    """Non-negativity post-processing trades range accuracy for validity.

    Raw signed counts answer *range* queries best: their zero-mean noises
    cancel when summed, while clamping introduces a positive bias in
    sparse regions.  The total-preserving projection repairs most of the
    clamp's damage.  (Non-negative counts still matter when the release
    feeds synthetic-data generation, which discards negative cells.)
    """

    def run():
        means = {}
        for mode in ("none", "clamp", "project"):
            means[mode] = evaluate_builder(
                UniformGridBuilder(postprocess=mode),
                landmark_setup.dataset, landmark_setup.workload, 0.2,
                n_trials=2, seed=97, label=mode,
            ).mean_relative()
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_postprocess",
        format_table(
            ["postprocess", "mean relative error"],
            [[mode, f"{error:.4f}"] for mode, error in means.items()],
            title="Non-negativity post-processing ablation (landmark, eps=0.2)",
        ),
    )
    # Raw counts win on range queries (noise cancellation)...
    assert means["none"] <= means["project"] * 1.1
    # ...and the total-preserving projection beats the naive clamp.
    assert means["project"] <= means["clamp"] * 1.1
