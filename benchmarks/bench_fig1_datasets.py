"""Benchmark: regenerate Figure 1 (dataset illustrations + structure).

Asserts the structural properties the paper's narrative relies on:
road has two dense regions separated by blank space, checkin is heavily
skewed with empty oceans, landmark/storage follow a US-like density.
"""

from conftest import BENCH_N, write_report

from repro.experiments import figure1


def test_figure1_dataset_structure(benchmark):
    report = benchmark.pedantic(
        lambda: figure1.run(n_points=BENCH_N), rounds=1, iterations=1
    )
    write_report("fig1_datasets", report.render())

    stats = report.data["statistics"]
    # Road: huge blank areas (the paper calls its distribution "unusual").
    assert stats["road"]["empty_cell_fraction"] > 0.5
    # Checkin: most of the world grid is ocean/empty and mass is
    # concentrated in few cells ("more developed areas better represented").
    assert stats["checkin"]["empty_cell_fraction"] > 0.5
    assert stats["checkin"]["top1pct_mass_fraction"] > 0.15
    # Landmark is skewed but with a broad rural background.
    assert 0.0 < stats["landmark"]["top1pct_mass_fraction"] < 0.9
    # Point counts match the configured scale.
    for name, n in BENCH_N.items():
        assert stats[name]["n_points"] == n
