"""Performance benchmark: the flat tree kernel.

Not a paper figure — an engineering benchmark for the library itself,
covering the three layers ISSUE 4 flattened, on each tree baseline
(quadtree, KD-standard, KD-hybrid) at figure-3 scale (150k points, the
paper's 6-sizes x 200-queries workload shape):

* **build**: ``fit`` (flat ``TreeArrays`` emission + level-wise array
  inference) vs ``fit_reference`` (``SpatialNode`` object graph +
  recursive inference), with the releases asserted bit-identical.
* **inference**: ``infer_level_order`` over the released arrays vs
  ``infer_tree`` over the equivalent ``CountNode`` graph (conversion
  included, as ``apply_tree_inference`` pays it), asserted bit-identical.
* **batch query**: ``FlatTreeEngine`` (level-synchronous frontier
  descent) vs the scalar ``FallbackEngine`` loop on the full workload,
  asserted equal to float rounding.

Results are written to ``BENCH_tree_kernel.json`` at the repo root so
the perf trajectory is tracked in-tree; ``cpu_count`` is recorded
alongside (timings are single-threaded, but the context should never be
lost).  The hard target asserted here is the ISSUE 4 acceptance
criterion: >= 5x batch-query speedup on every tree baseline.

``BENCH_TREE_QUICK=1`` (the CI smoke mode, ``make bench-tree-quick``)
shrinks the dataset and workload and keeps every equivalence assertion,
but skips the speedup floors and leaves the tracked JSON untouched —
a smoke run on a loaded CI box must not rewrite the repo's perf history.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import write_json_report, write_report

from repro.baselines.constrained_inference import infer_level_order, infer_tree
from repro.baselines.kd_tree import KDHybridBuilder, KDStandardBuilder
from repro.baselines.quadtree import QuadtreeBuilder
from repro.baselines.tree import TreeArrays
from repro.datasets.synthetic import make_checkin
from repro.experiments.report import format_table
from repro.queries.engine import FallbackEngine, FlatTreeEngine
from repro.queries.workload import QueryWorkload

QUICK = os.environ.get("BENCH_TREE_QUICK", "") not in ("", "0")

#: Figure-3 scale (see benchmarks/conftest.py): the checkin analogue at
#: 150k points, 6 query sizes x 200 queries.
BENCH_N = 20_000 if QUICK else 150_000
QUERIES_PER_SIZE = 50 if QUICK else 200
EPSILON = 1.0

#: The acceptance floor for the batch-query path.
MIN_QUERY_SPEEDUP = 5.0


def _builders():
    return [
        ("Quad", QuadtreeBuilder(depth=5 if QUICK else 8)),
        ("Kst", KDStandardBuilder(depth=5 if QUICK else None)),
        ("Khy", KDHybridBuilder(depth=5 if QUICK else None)),
    ]


def _best_seconds(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _assert_same_release(flat, reference):
    a, b = flat.arrays, reference.arrays
    for name in (
        "rects", "depths", "child_offsets", "noisy_counts", "variances",
        "counts", "level_offsets",
    ):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))


def _to_count_node(node):
    from repro.baselines.constrained_inference import CountNode

    return CountNode(
        noisy_count=node.noisy_count,
        variance=node.variance,
        children=[_to_count_node(child) for child in node.children],
    )


def test_tree_kernel_vs_object_graph():
    dataset = make_checkin(BENCH_N, rng=3)
    workload = QueryWorkload.generate(
        dataset, 90.0, 90.0, np.random.default_rng(11),
        queries_per_size=QUERIES_PER_SIZE,
    )
    rects = workload.all_rects()

    rows = []
    results = {}
    for label, builder in _builders():
        flat = builder.fit(dataset, EPSILON, np.random.default_rng(29))
        reference = builder.fit_reference(
            dataset, EPSILON, np.random.default_rng(29)
        )
        _assert_same_release(flat, reference)
        arrays = flat.arrays

        rounds = 2 if QUICK else 3
        build_flat_s = _best_seconds(
            lambda: builder.fit(dataset, EPSILON, np.random.default_rng(29)),
            rounds=rounds,
        )
        build_reference_s = _best_seconds(
            lambda: builder.fit_reference(
                dataset, EPSILON, np.random.default_rng(29)
            ),
            rounds=rounds,
        )

        # Inference alone, flat vs recursive (conversion included for the
        # recursive side, exactly what apply_tree_inference pays).
        root = reference.root
        infer_flat_s = _best_seconds(
            lambda: infer_level_order(
                arrays.noisy_counts, arrays.variances,
                arrays.child_offsets, arrays.level_offsets,
            ),
            rounds=rounds,
        )

        def run_recursive_inference():
            count_root = _to_count_node(root)
            infer_tree(count_root)
            return count_root

        infer_reference_s = _best_seconds(run_recursive_inference, rounds=rounds)
        flat_inferred = infer_level_order(
            arrays.noisy_counts, arrays.variances,
            arrays.child_offsets, arrays.level_offsets,
        )
        # Bit-identity of the two inference kernels on this tree (KD-
        # standard skips inference at build time, so compare against a
        # fresh recursive run, not the released counts).
        recursive = run_recursive_inference()
        recursive_inferred = []
        queue = [recursive]
        cursor = 0
        while cursor < len(queue):
            node = queue[cursor]
            recursive_inferred.append(node.inferred_count)
            queue.extend(node.children)
            cursor += 1
        np.testing.assert_array_equal(flat_inferred, recursive_inferred)

        flat_engine = FlatTreeEngine(flat)
        scalar_engine = FallbackEngine(reference)
        flat_answers = flat_engine.answer_batch(rects)
        scalar_answers = scalar_engine.answer_batch(rects)
        np.testing.assert_allclose(
            flat_answers, scalar_answers, rtol=1e-9, atol=1e-9
        )
        query_flat_s = _best_seconds(lambda: flat_engine.answer_batch(rects))
        query_scalar_s = _best_seconds(
            lambda: scalar_engine.answer_batch(rects),
            rounds=1 if QUICK else 2,
        )

        build_speedup = build_reference_s / max(build_flat_s, 1e-9)
        infer_speedup = infer_reference_s / max(infer_flat_s, 1e-9)
        query_speedup = query_scalar_s / max(query_flat_s, 1e-9)
        results[label] = {
            "n_points": BENCH_N,
            "n_queries": len(rects),
            "n_nodes": arrays.n_nodes,
            "height": arrays.height(),
            "build_reference_s": build_reference_s,
            "build_flat_s": build_flat_s,
            "build_speedup": build_speedup,
            "inference_reference_s": infer_reference_s,
            "inference_flat_s": infer_flat_s,
            "inference_speedup": infer_speedup,
            "query_scalar_s": query_scalar_s,
            "query_flat_s": query_flat_s,
            "query_speedup": query_speedup,
            "bit_identical_release": True,
        }
        rows.append(
            [
                label, f"{arrays.n_nodes:,}",
                f"{build_reference_s * 1e3:.0f}", f"{build_flat_s * 1e3:.0f}",
                f"{build_speedup:.1f}x",
                f"{infer_reference_s * 1e3:.1f}", f"{infer_flat_s * 1e3:.2f}",
                f"{infer_speedup:.1f}x",
                f"{query_scalar_s * 1e3:.0f}", f"{query_flat_s * 1e3:.1f}",
                f"{query_speedup:.1f}x",
            ]
        )

    table = format_table(
        [
            "method", "nodes",
            "build ref ms", "build flat ms", "build",
            "infer ref ms", "infer flat ms", "infer",
            "query ref ms", "query flat ms", "query",
        ],
        rows,
    )
    write_report("tree_kernel", table)

    if QUICK:
        return  # smoke mode: equivalence checked, perf history untouched

    payload = {
        "cpu_count": os.cpu_count() or 1,
        "n_points": BENCH_N,
        "n_queries": len(rects),
        "methods": results,
    }
    write_json_report("tree_kernel", payload)

    # Acceptance: the batched tree path beats the scalar loop >= 5x on
    # every baseline at figure-3 scale.
    for label, entry in results.items():
        assert entry["query_speedup"] >= MIN_QUERY_SPEEDUP, (label, entry)
