"""Scaling-law benchmarks: error vs epsilon and vs N.

Not a single paper figure, but the quantitative backbone behind
Guideline 1: at the guideline grid size both error components scale like
``(N * eps)^(-1/2)`` relative to the data mass.  These benches fit the
measured curves and assert the log-log slopes sit in the predicted band.
"""

from conftest import BENCH_QUERIES, write_report

from repro.analysis.scaling import epsilon_sweep, size_sweep
from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.core.uniform_grid import UniformGridBuilder
from repro.datasets.synthetic import make_landmark
from repro.experiments.base import standard_setup
from repro.experiments.report import format_table
from repro.queries.workload import QueryWorkload

EPSILONS = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
SIZES = [10_000, 30_000, 90_000]


def test_ug_error_scales_with_epsilon(benchmark):
    setup = standard_setup("landmark", n_points=60_000, queries_per_size=BENCH_QUERIES)

    def run():
        return epsilon_sweep(
            UniformGridBuilder(), setup.dataset, setup.workload,
            EPSILONS, n_trials=2, seed=73,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "scaling_epsilon_ug",
        format_table(
            ["epsilon", "mean relative error"],
            [[f"{eps:g}", f"{err:.4f}"] for eps, err in sweep.as_rows()],
            title=f"UG error vs epsilon (landmark, slope={sweep.slope():.2f})",
        ),
    )
    assert sweep.mean_relative_errors[0] > sweep.mean_relative_errors[-1]
    assert -1.0 < sweep.slope() < -0.2  # model: -1/2


def test_ag_error_scales_with_epsilon(benchmark):
    setup = standard_setup("landmark", n_points=60_000, queries_per_size=BENCH_QUERIES)

    def run():
        return epsilon_sweep(
            AdaptiveGridBuilder(), setup.dataset, setup.workload,
            EPSILONS, n_trials=2, seed=79,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "scaling_epsilon_ag",
        format_table(
            ["epsilon", "mean relative error"],
            [[f"{eps:g}", f"{err:.4f}"] for eps, err in sweep.as_rows()],
            title=f"AG error vs epsilon (landmark, slope={sweep.slope():.2f})",
        ),
    )
    assert sweep.mean_relative_errors[0] > sweep.mean_relative_errors[-1]
    assert -1.2 < sweep.slope() < -0.2


def test_ug_error_scales_with_n(benchmark):
    def make_dataset(n):
        return make_landmark(n, rng=5)

    def make_workload(dataset):
        return QueryWorkload.generate(
            dataset, 40.0, 20.0, rng=6, queries_per_size=BENCH_QUERIES
        )

    def run():
        return size_sweep(
            UniformGridBuilder(), make_dataset, make_workload,
            SIZES, epsilon=0.5, n_trials=2, seed=83,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "scaling_n_ug",
        format_table(
            ["N", "mean relative error"],
            [[f"{int(n)}", f"{err:.4f}"] for n, err in sweep.as_rows()],
            title=f"UG error vs N (landmark, slope={sweep.slope():.2f})",
        ),
    )
    assert sweep.mean_relative_errors[0] > sweep.mean_relative_errors[-1]
    assert -1.0 < sweep.slope() < -0.2
