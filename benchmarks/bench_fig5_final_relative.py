"""Benchmark: Figure 5 — the final six-method comparison, relative error.

Paper shapes asserted per dataset/epsilon:

* AG (suggested sizes) clearly outperforms KD-hybrid;
* AG (suggested) is at least as good as every non-AG method;
* UG at the suggested size is in the same league as KD-hybrid;
* AG at the suggested size is close to AG at the swept-best size.
"""

import pytest
from conftest import BENCH_N, BENCH_QUERIES, BENCH_WORKERS, write_report

from repro.experiments import figure5

PANELS = [
    ("road", 1.0),
    ("checkin", 1.0),
    ("checkin", 0.1),
    ("landmark", 1.0),
    ("storage", 1.0),
    ("storage", 0.1),
]


def _ag_labels(results):
    return [label for label in results if label.startswith("A")]


@pytest.mark.parametrize("dataset_name, epsilon", PANELS)
def test_figure5_panel(benchmark, dataset_name, epsilon):
    report = benchmark.pedantic(
        lambda: figure5.run(
            dataset_name,
            epsilon,
            n_points=BENCH_N[dataset_name],
            queries_per_size=BENCH_QUERIES,
            seed=41,
            sweep_steps=1,
            n_workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"fig5_{dataset_name}_eps{epsilon:g}", report.render())

    results = report.data["results"]
    means = {label: result.mean_relative() for label, result in results.items()}
    ag_suggested = next(v for k, v in means.items() if k.endswith("(sugg)") and k.startswith("A"))
    ag_best = next(v for k, v in means.items() if k.endswith("(best)") and k.startswith("A"))
    ug_suggested = next(v for k, v in means.items() if k.endswith("(sugg)") and k.startswith("U"))
    khy = means["Khy"]
    non_ag_best = min(v for k, v in means.items() if not k.startswith("A"))

    # AG consistently and significantly outperforms KD-hybrid.
    assert ag_suggested < khy
    # The AG family beats (or ties) every non-AG method...
    assert min(ag_suggested, ag_best) <= non_ag_best * 1.05
    # ...and even the suggested-size variant stays within noise of the
    # best non-AG method (exactly ahead of it on the paper's larger N).
    assert ag_suggested <= non_ag_best * 1.4
    # UG at suggested size is about KD-hybrid grade.
    assert ug_suggested <= khy * 1.5
    # Suggested AG is close to swept-best AG.  road is the paper's own
    # outlier (its high uniformity pushes the empirically best sizes well
    # below the suggestions; see Table II), so it gets the wider margin.
    margin = 2.0 if dataset_name == "road" else 1.5
    assert ag_suggested <= ag_best * margin
