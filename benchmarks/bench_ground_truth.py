"""Performance benchmark: the evaluation fast path.

Not a paper figure — an engineering benchmark for the library itself,
covering the two layers ISSUE 3 vectorised:

* **ground truth**: ``GroundTruthIndex.count_batch`` (CSR bucket grid +
  2-D prefix sum + filtered border ring) vs the scalar
  ``count_many_scalar`` mask loop, on the paper's full per-dataset
  workload shape (6 sizes x 200 queries = 1,200 rectangles) at
  N in {60k, 250k, 1M}.  Counts must match exactly — the speedup is
  free of any change in what is measured.
* **trial runner**: ``evaluate_builder(..., n_workers=4)`` vs the serial
  run for an 8-trial figure-style evaluation (KD-hybrid on the checkin
  analogue, the heaviest per-trial builder in the suite), with the
  pooled errors asserted bit-identical.

Results are written to ``BENCH_experiments.json`` at the repo root so
the perf trajectory is tracked in-tree.  The hard targets asserted here
are the ISSUE 3 acceptance criteria: >= 10x for batch ground-truth
counting at 1M points (including the one-off index build), and >= 3x
wall-clock for the 8-trial parallel run — the latter is only asserted
when the machine actually has >= 4 CPUs (a single-core box cannot show
a wall-clock win; the JSON records ``cpu_count`` alongside the measured
number so the context is never lost).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import write_json_report, write_report

from repro.baselines.kd_tree import KDHybridBuilder
from repro.core.point_index import GroundTruthIndex
from repro.datasets.synthetic import make_checkin, make_landmark
from repro.experiments.report import format_table
from repro.experiments.runner import evaluate_builder
from repro.queries.workload import QueryWorkload

#: Dataset sizes for the ground-truth sweep (the 1M row is the paper's
#: largest-dataset regime and the acceptance target).
GROUND_TRUTH_N = (60_000, 250_000, 1_000_000)
ASSERT_N = 1_000_000

#: The paper's per-dataset workload shape: 6 sizes x 200 queries.
QUERIES_PER_SIZE = 200

#: The parallel-runner configuration from the acceptance criteria.
N_TRIALS = 8
N_WORKERS = 4


def _best_seconds(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_ground_truth_index_vs_scalar_loop():
    rows = []
    results = {}
    for n in GROUND_TRUTH_N:
        dataset = make_landmark(n, rng=3)
        workload = QueryWorkload.generate(
            dataset, 20.0, 20.0, np.random.default_rng(11),
            queries_per_size=QUERIES_PER_SIZE,
        )
        rects = workload.all_rects()

        index = dataset.ground_truth_index()
        fast = index.count_batch(rects)
        slow = dataset.count_many_scalar(rects)
        # The fast path must not change ground truth: exact equality.
        np.testing.assert_array_equal(fast.astype(float), slow)

        scalar_rounds = 1 if n >= ASSERT_N else 2
        scalar_s = _best_seconds(
            lambda: dataset.count_many_scalar(rects), rounds=scalar_rounds
        )
        batch_s = _best_seconds(lambda: index.count_batch(rects))
        build_s = _best_seconds(
            lambda: GroundTruthIndex(dataset.points, dataset.domain),
            rounds=scalar_rounds,
        )
        batch_speedup = scalar_s / max(batch_s, 1e-9)
        amortised_speedup = scalar_s / max(batch_s + build_s, 1e-9)
        results[str(n)] = {
            "n_points": n,
            "n_queries": len(rects),
            "resolution": index.resolution,
            "scalar_s": scalar_s,
            "index_build_s": build_s,
            "index_batch_s": batch_s,
            "batch_speedup": batch_speedup,
            "amortised_speedup": amortised_speedup,
        }
        rows.append(
            [
                f"{n:,}", str(index.resolution), f"{scalar_s * 1e3:.1f}",
                f"{build_s * 1e3:.1f}", f"{batch_s * 1e3:.1f}",
                f"{batch_speedup:.1f}x", f"{amortised_speedup:.1f}x",
            ]
        )

    table = format_table(
        ["N", "m", "scalar ms", "build ms", "batch ms", "batch", "amortised"],
        rows,
    )
    write_report("ground_truth_index", table)

    # Acceptance: >= 10x for 1,200 queries at 1M points, even paying the
    # one-off index build inside the measured time.
    target = results[str(ASSERT_N)]
    assert target["amortised_speedup"] >= 10.0, target

    payload = _load_payload()
    payload["ground_truth"] = results
    write_json_report("experiments", payload)


def test_parallel_runner_vs_serial():
    dataset = make_checkin(150_000, rng=3)
    workload = QueryWorkload.generate(
        dataset, 90.0, 90.0, np.random.default_rng(7), queries_per_size=100
    )
    builder = KDHybridBuilder()

    def run(n_workers):
        return evaluate_builder(
            builder, dataset, workload, 1.0,
            n_trials=N_TRIALS, seed=13, n_workers=n_workers,
        )

    start = time.perf_counter()
    serial = run(1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    pooled = run(N_WORKERS)
    parallel_s = time.perf_counter() - start

    # The determinism contract: pooling must not change a single bit.
    for label in serial.size_labels:
        np.testing.assert_array_equal(
            pooled.relative_by_size[label], serial.relative_by_size[label]
        )
        np.testing.assert_array_equal(
            pooled.absolute_by_size[label], serial.absolute_by_size[label]
        )

    cpu_count = os.cpu_count() or 1
    speedup = serial_s / max(parallel_s, 1e-9)
    results = {
        "builder": serial.label,
        "n_trials": N_TRIALS,
        "n_workers": N_WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "cpu_count": cpu_count,
        "bit_identical": True,
    }
    write_report(
        "parallel_runner",
        format_table(
            ["trials", "workers", "cpus", "serial s", "parallel s", "speedup"],
            [[str(N_TRIALS), str(N_WORKERS), str(cpu_count),
              f"{serial_s:.2f}", f"{parallel_s:.2f}", f"{speedup:.2f}x"]],
        ),
    )

    payload = _load_payload()
    payload["parallel_runner"] = results
    write_json_report("experiments", payload)

    # A wall-clock win needs actual cores; on fewer than 4 CPUs the
    # bit-identical assertion above is the meaningful check.
    if cpu_count >= 4:
        assert speedup >= 3.0, results


def _load_payload() -> dict:
    """Read the current BENCH_experiments.json (both tests update it)."""
    path = Path(__file__).parent.parent / "BENCH_experiments.json"
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {}
