"""Load benchmark: the HTTP serving hot path.

Not a paper figure — an engineering benchmark for the serving layer
(ISSUE 5), measuring what a consumer of ``POST /query`` actually sees:
sustained batches/second through a real ``SynopsisHTTPServer`` on a
loopback socket, with persistent keep-alive client threads and
pre-encoded request bodies (the server, not the client, must be the
bottleneck).  Four modes cross the two axes the PR added:

* **json_cold** — the pre-PR path: JSON request + JSON response, every
  batch distinct so the answer cache always misses;
* **json_warm** — JSON transport, one batch repeated (cache hits);
* **binary_cold** — binary batch protocol both ways, distinct batches;
* **binary_warm** — binary protocol + answer-cache hits: the PR's
  target hot path.

All modes query the same AG release with 1,000-rectangle batches whose
coordinates are float32-exact, so every transport produces bit-identical
estimates — asserted here for **every** servable method (UG, AG, Quad,
Kst, Khy) by comparing JSON and binary answers for the same batch.

A second scenario (ISSUE 7) drives the same server at 2x its admission
capacity with cold binary clients and records the shed rate and the
server-measured p50/p95/p99 under overload.  A third (ISSUE 10) times
the warm binary path with API-key auth required — Bearer token resolved
through the SQLite catalog — against the anonymous baseline and asserts
the verification overhead stays within 10%.

Results are written to ``BENCH_service.json`` at the repo root so the
perf trajectory is tracked in-tree; ``cpu_count`` is recorded alongside.
The hard target asserted in full mode is the ISSUE 5 acceptance
criterion: >= 3x sustained batches/sec on the warm-cache binary path vs
the (cold, JSON) baseline.

``BENCH_SERVICE_QUICK=1`` (the CI smoke mode, ``make
bench-service-quick``) shrinks the dataset and request counts and keeps
the bit-identity assertions, but asserts the throughput ratio only when
``cpu_count >= 4`` (same convention as ``BENCH_experiments.json``) and
leaves the tracked JSON untouched — a smoke run on a loaded CI box must
not rewrite the repo's perf history.
"""

import http.client
import json
import os
import statistics
import threading
import time

import numpy as np
from conftest import update_json_report, write_report

from repro.datasets.registry import get_spec
from repro.experiments.report import format_table
from repro.queries.engine import fallback_engine_count
from repro.service import protocol
from repro.service.keys import ReleaseKey, method_names
from repro.service.query_service import QueryService
from repro.service.server import serve
from repro.service.store import SynopsisStore

QUICK = os.environ.get("BENCH_SERVICE_QUICK", "") not in ("", "0")

N_POINTS = 2_000 if QUICK else 9_000  # storage at its full paper scale
BATCH_SIZE = 200 if QUICK else 1_000
REQUESTS_PER_MODE = 12 if QUICK else 96
CLIENT_THREADS = 2 if QUICK else 4
EPSILON = 1.0

#: The acceptance floor: warm-cache binary vs the cold JSON baseline.
MIN_WARM_BINARY_SPEEDUP = 3.0

RELEASE = {"dataset": "storage", "method": "AG", "epsilon": EPSILON, "seed": 0}


def _f32_exact_batches(domain, n_batches, rng):
    """Distinct ``(BATCH_SIZE, 4)`` float64 batches, float32-exact.

    float32-exact coordinates make the JSON and binary transports
    bit-equivalent: the binary frame's float32 payload widens back to
    the same float64 the JSON body carries.
    """
    bounds = domain.bounds
    batches = []
    for _ in range(n_batches):
        x = rng.uniform(bounds.x_lo, bounds.x_hi, size=(BATCH_SIZE, 2))
        y = rng.uniform(bounds.y_lo, bounds.y_hi, size=(BATCH_SIZE, 2))
        boxes = np.column_stack(
            [x.min(axis=1), y.min(axis=1), x.max(axis=1), y.max(axis=1)]
        )
        batches.append(boxes.astype(np.float32).astype(np.float64))
    return batches


def _json_body(key_payload, boxes):
    return json.dumps(
        {**key_payload, "rects": boxes.tolist()}, separators=(",", ":")
    ).encode()


class _KeepAliveClient:
    """One persistent HTTP/1.1 connection (reconnects when dropped)."""

    def __init__(self, host, port):
        self._host, self._port = host, port
        self._conn = http.client.HTTPConnection(host, port, timeout=60)

    def post(self, path, body, content_type, accept=None, extra_headers=None):
        headers = {"Content-Type": content_type}
        if accept:
            headers["Accept"] = accept
        if extra_headers:
            headers.update(extra_headers)
        for attempt in (0, 1):
            try:
                self._conn.request("POST", path, body=body, headers=headers)
                response = self._conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                self._conn.close()
                self._conn = http.client.HTTPConnection(
                    self._host, self._port, timeout=60
                )
                if attempt:
                    raise

    def close(self):
        self._conn.close()


def _run_mode(
    host,
    port,
    bodies,
    content_type,
    accept,
    extra_headers=None,
    client_threads=None,
):
    """Fire all request bodies from persistent client threads; seconds."""
    if client_threads is None:
        client_threads = CLIENT_THREADS
    shares = [bodies[i::client_threads] for i in range(client_threads)]
    barrier = threading.Barrier(client_threads + 1)
    failures = []

    def worker(share):
        client = _KeepAliveClient(host, port)
        try:
            barrier.wait()
            for body in share:
                status, payload = client.post(
                    "/query",
                    body,
                    content_type,
                    accept=accept,
                    extra_headers=extra_headers,
                )
                if status != 200:
                    failures.append(payload[:200])
                    return
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(share,), daemon=True)
        for share in shares
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not failures, failures[0]
    return elapsed


def test_service_throughput_json_vs_binary():
    store = SynopsisStore(
        n_points=N_POINTS, dataset_budget=float(len(method_names())) * EPSILON
    )
    service = QueryService(store)
    server = serve(service, "127.0.0.1", 0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        domain = get_spec("storage").make(n=16, rng=0).domain
        rng = np.random.default_rng(17)

        # ------------------------------------------------------------------
        # Bit-identity: JSON == binary for every servable method.
        # ------------------------------------------------------------------
        check_batch = _f32_exact_batches(domain, 1, rng)[0][:64]
        identical = {}
        for method in method_names():
            key = ReleaseKey("storage", method, epsilon=EPSILON, seed=0)
            store.build(key)
            client = _KeepAliveClient(host, port)
            try:
                status, raw = client.post(
                    "/query",
                    _json_body(key.to_payload(), check_batch),
                    "application/json",
                )
                assert status == 200, raw
                json_estimates = np.array(json.loads(raw)["estimates"])
                status, raw = client.post(
                    "/query",
                    protocol.encode_query(key, check_batch),
                    protocol.CONTENT_TYPE,
                    accept=protocol.CONTENT_TYPE,
                )
                assert status == 200, raw
                binary_estimates = protocol.decode_answer(raw)
            finally:
                client.close()
            np.testing.assert_array_equal(binary_estimates, json_estimates)
            identical[method] = True

        # ------------------------------------------------------------------
        # Throughput: 4 modes against the AG release.
        # ------------------------------------------------------------------
        key = ReleaseKey(**RELEASE)
        key_payload = key.to_payload()
        cold_batches = _f32_exact_batches(domain, 2 * REQUESTS_PER_MODE, rng)
        warm_batch = _f32_exact_batches(domain, 1, rng)[0]

        modes = {
            "json_cold": (
                [
                    _json_body(key_payload, boxes)
                    for boxes in cold_batches[:REQUESTS_PER_MODE]
                ],
                "application/json",
                None,
            ),
            "json_warm": (
                [_json_body(key_payload, warm_batch)] * REQUESTS_PER_MODE,
                "application/json",
                None,
            ),
            "binary_cold": (
                [
                    protocol.encode_query(key, boxes)
                    for boxes in cold_batches[REQUESTS_PER_MODE:]
                ],
                protocol.CONTENT_TYPE,
                protocol.CONTENT_TYPE,
            ),
            "binary_warm": (
                [protocol.encode_query(key, warm_batch)] * REQUESTS_PER_MODE,
                protocol.CONTENT_TYPE,
                protocol.CONTENT_TYPE,
            ),
        }

        # Prime the engine and the warm-mode cache entry outside timing.
        service.answer(key, warm_batch)

        results = {}
        for name, (bodies, content_type, accept) in modes.items():
            seconds = _run_mode(host, port, bodies, content_type, accept)
            results[name] = {
                "seconds": seconds,
                "batches_per_s": len(bodies) / seconds,
                "queries_per_s": len(bodies) * BATCH_SIZE / seconds,
            }

        stats = service.stats()
        assert stats["engine_fallbacks"] == fallback_engine_count() == 0
        ratio = (
            results["binary_warm"]["batches_per_s"]
            / results["json_cold"]["batches_per_s"]
        )
        ratios = {
            "binary_warm_vs_json_cold": ratio,
            "json_warm_vs_json_cold": (
                results["json_warm"]["batches_per_s"]
                / results["json_cold"]["batches_per_s"]
            ),
            "binary_cold_vs_json_cold": (
                results["binary_cold"]["batches_per_s"]
                / results["json_cold"]["batches_per_s"]
            ),
        }

        rows = [
            [
                name,
                f"{entry['seconds'] * 1e3 / REQUESTS_PER_MODE:.2f}",
                f"{entry['batches_per_s']:.0f}",
                f"{entry['queries_per_s']:,.0f}",
            ]
            for name, entry in results.items()
        ]
        write_report(
            "service",
            format_table(
                ["mode", "ms/batch", "batches/s", "queries/s"], rows
            )
            + f"\n\nbinary_warm vs json_cold: {ratio:.1f}x"
            f"  (batch={BATCH_SIZE}, clients={CLIENT_THREADS})",
        )

        cpu_count = os.cpu_count() or 1
        if QUICK:
            # Smoke mode: bit-identity is asserted above; throughput is
            # only meaningful with headroom for client + server threads.
            if cpu_count >= 4:
                assert ratio >= MIN_WARM_BINARY_SPEEDUP, results
            return

        payload = {
            "cpu_count": cpu_count,
            "n_points": N_POINTS,
            "batch_size": BATCH_SIZE,
            "requests_per_mode": REQUESTS_PER_MODE,
            "client_threads": CLIENT_THREADS,
            "bit_identical_json_vs_binary": identical,
            "modes": results,
            "ratios": ratios,
            "answer_cache": {
                "hits": stats["answer_cache_hits"],
                "misses": stats["answer_cache_misses"],
                "entries": stats["answer_cache_entries"],
                "bytes": stats["answer_cache_bytes"],
            },
            "engine": {
                "cold_starts": stats["engine_cold_starts"],
                "sealed_loads": stats["engine_sealed_loads"],
            },
        }
        update_json_report("service", payload)

        # Acceptance (ISSUE 5): the warm-cache binary path sustains >= 3x
        # the cold JSON baseline's batches/sec at 1,000-rect batches.
        assert ratio >= MIN_WARM_BINARY_SPEEDUP, results
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


# ----------------------------------------------------------------------
# Auth scenario (ISSUE 10): API-key verification on the warm binary path
# ----------------------------------------------------------------------

#: The acceptance ceiling: Bearer-key verification may cost at most this
#: fraction of warm binary throughput vs the anonymous baseline.
MAX_AUTH_OVERHEAD = 0.10
AUTH_ROUNDS = 1 if QUICK else 5


def test_service_auth_overhead_on_warm_binary_path(tmp_path):
    """API-key auth stays within 10% of anonymous warm binary throughput.

    Two servers over the *same* ``QueryService`` (same engine, same
    answer cache, same store) take the identical warm binary batch: one
    anonymous, one requiring a Bearer key resolved through the SQLite
    catalog.  One persistent connection per mode, held across all
    rounds, measures each — this is a per-request-cost comparison (one
    guarded cache probe + one extra header line), and both multi-client
    scheduling noise and per-round thread churn on a small box would
    swamp the ~2% signal.  Rounds alternate between the modes and the
    comparison is the *median* per-request latency across all rounds,
    so a background burst landing on one mode's rounds cannot fake (or
    mask) an overhead.  Recorded into ``BENCH_service.json`` under
    ``auth``; the <= 10% ceiling is asserted in full mode only (a quick
    run on a loaded CI box still asserts the 401/403/200 semantics).
    """
    from repro.service.auth import ApiKeyAuthenticator
    from repro.service.catalog import DEFAULT_TENANT, Catalog

    catalog = Catalog(tmp_path / "catalog.sqlite")
    token = catalog.create_api_key(DEFAULT_TENANT, name="bench")
    store = SynopsisStore(n_points=N_POINTS, dataset_budget=2.0)
    service = QueryService(store)
    servers = {
        "anonymous": serve(service, "127.0.0.1", 0),
        "authed": serve(
            service,
            "127.0.0.1",
            0,
            authenticator=ApiKeyAuthenticator(catalog),
            catalog=catalog,
        ),
    }
    threads = []
    for server in servers.values():
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        threads.append(thread)
    try:
        key = ReleaseKey(**RELEASE)
        store.build(key)
        domain = get_spec("storage").make(n=16, rng=0).domain
        rng = np.random.default_rng(41)
        warm_batch = _f32_exact_batches(domain, 1, rng)[0]
        service.answer(key, warm_batch)  # prime the cache entry
        bodies = [protocol.encode_query(key, warm_batch)] * REQUESTS_PER_MODE
        bearer = {"Authorization": f"Bearer {token}"}
        addresses = {
            name: server.server_address[:2] for name, server in servers.items()
        }

        # Semantics before speed: the authed server rejects anonymous
        # and wrong-key clients, and both servers agree on the answer.
        client = _KeepAliveClient(*addresses["authed"])
        try:
            status, raw = client.post(
                "/query", bodies[0], protocol.CONTENT_TYPE
            )
            assert status == 401, raw
            status, raw = client.post(
                "/query",
                bodies[0],
                protocol.CONTENT_TYPE,
                extra_headers={"Authorization": "Bearer rk_bogus.nope"},
            )
            assert status == 403, raw
            status, raw = client.post(
                "/query",
                bodies[0],
                protocol.CONTENT_TYPE,
                accept=protocol.CONTENT_TYPE,
                extra_headers=bearer,
            )
            assert status == 200, raw
            authed_estimates = protocol.decode_answer(raw)
        finally:
            client.close()
        np.testing.assert_array_equal(
            authed_estimates, service.answer(key, warm_batch).estimates
        )

        # Alternate anonymous/authed rounds on two long-lived
        # connections, timing every request individually.  Reusing the
        # connection keeps the server-side handler thread (and its
        # thread-local catalog state) warm across rounds, so a sample
        # times the steady-state request path and nothing else.
        headers = {"anonymous": None, "authed": bearer}
        clients = {
            name: _KeepAliveClient(*address)
            for name, address in addresses.items()
        }
        samples = {"anonymous": [], "authed": []}
        try:
            for name, client in clients.items():  # connect + warm up
                for body in bodies[: max(4, len(bodies) // 8)]:
                    status, raw = client.post(
                        "/query",
                        body,
                        protocol.CONTENT_TYPE,
                        accept=protocol.CONTENT_TYPE,
                        extra_headers=headers[name],
                    )
                    assert status == 200, raw
            for _ in range(AUTH_ROUNDS):
                for name, client in clients.items():
                    for body in bodies:
                        start = time.perf_counter()
                        status, raw = client.post(
                            "/query",
                            body,
                            protocol.CONTENT_TYPE,
                            accept=protocol.CONTENT_TYPE,
                            extra_headers=headers[name],
                        )
                        samples[name].append(time.perf_counter() - start)
                        assert status == 200, raw
        finally:
            for client in clients.values():
                client.close()

        medians = {
            name: statistics.median(times) for name, times in samples.items()
        }
        overhead = medians["authed"] / medians["anonymous"] - 1.0
        results = {
            name: {
                "median_ms": median * 1e3,
                "batches_per_s": 1.0 / median,
                "samples": len(samples[name]),
            }
            for name, median in medians.items()
        }
        write_report(
            "service_auth",
            f"warm binary, median of {len(samples['authed'])} requests "
            f"over {AUTH_ROUNDS} alternating rounds "
            f"(batch={BATCH_SIZE}, single client):\n"
            f"  anonymous {medians['anonymous'] * 1e3:.3f} ms/req   "
            f"authed {medians['authed'] * 1e3:.3f} ms/req   "
            f"overhead {overhead:+.1%}",
        )
        if QUICK:
            return
        update_json_report(
            "service",
            {
                "auth": {
                    "requests_per_round": REQUESTS_PER_MODE,
                    "rounds": AUTH_ROUNDS,
                    "modes": results,
                    "overhead": round(overhead, 4),
                }
            },
        )
        # Acceptance (ISSUE 10): Bearer verification costs <= 10% of the
        # anonymous warm binary path.
        assert overhead <= MAX_AUTH_OVERHEAD, results
    finally:
        for server in servers.values():
            server.shutdown()
            server.server_close()
        for thread in threads:
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Overload scenario (ISSUE 7): shed rate and tail latency at 2x saturation
# ----------------------------------------------------------------------

OVERLOAD_INFLIGHT = 2 if QUICK else 4
OVERLOAD_QUEUE = 1 if QUICK else 2
#: Concurrent clients vs server capacity (running + queued).
OVERLOAD_SATURATION = 2
OVERLOAD_REQUESTS_PER_CLIENT = 6 if QUICK else 32


def test_service_overload_sheds_and_stays_observable():
    """2x saturation: excess load sheds with 429, the rest is served.

    A server with a small admission gate takes twice as many concurrent
    cold binary clients as it has capacity (running + queued).  Recorded
    into ``BENCH_service.json`` under ``overload``: the shed rate, the
    throughput of the admitted requests, and the p50/p95/p99 the server
    itself measured — the acceptance criterion is that overload degrades
    into fast 429s and bounded tails, not thread pile-up.
    """
    store = SynopsisStore(n_points=N_POINTS, dataset_budget=2.0)
    service = QueryService(store)
    server = serve(
        service,
        "127.0.0.1",
        0,
        max_inflight=OVERLOAD_INFLIGHT,
        queue_depth=OVERLOAD_QUEUE,
    )
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        key = ReleaseKey(**RELEASE)
        store.build(key)
        domain = get_spec("storage").make(n=16, rng=0).domain
        rng = np.random.default_rng(29)
        service.answer(key, _f32_exact_batches(domain, 1, rng)[0])  # prime

        n_clients = OVERLOAD_SATURATION * (OVERLOAD_INFLIGHT + OVERLOAD_QUEUE)
        shares = [
            [
                protocol.encode_query(key, boxes)
                for boxes in _f32_exact_batches(
                    domain, OVERLOAD_REQUESTS_PER_CLIENT, rng
                )
            ]
            for _ in range(n_clients)
        ]
        barrier = threading.Barrier(n_clients + 1)
        counts = {"ok": 0, "shed": 0}
        unexpected = []
        lock = threading.Lock()

        def client_worker(share):
            client = _KeepAliveClient(host, port)
            ok = shed = 0
            try:
                barrier.wait()
                for body in share:
                    status, payload = client.post(
                        "/query",
                        body,
                        protocol.CONTENT_TYPE,
                        accept=protocol.CONTENT_TYPE,
                    )
                    if status == 200:
                        ok += 1
                    elif status == 429:
                        shed += 1  # no retry: overload means back off
                    else:
                        unexpected.append((status, payload[:200]))
                        return
            finally:
                client.close()
                with lock:
                    counts["ok"] += ok
                    counts["shed"] += shed

        threads = [
            threading.Thread(target=client_worker, args=(share,), daemon=True)
            for share in shares
        ]
        for worker_thread in threads:
            worker_thread.start()
        barrier.wait()
        start = time.perf_counter()
        # Health must answer *while* the gate is shedding (GETs bypass
        # admission control) — poll it mid-storm.
        health_conn = http.client.HTTPConnection(host, port, timeout=30)
        health_conn.request("GET", "/health")
        health_mid = json.loads(health_conn.getresponse().read())
        health_conn.close()
        for worker_thread in threads:
            worker_thread.join()
        elapsed = time.perf_counter() - start

        assert not unexpected, unexpected[0]
        assert health_mid["status"] == "ok"
        total = n_clients * OVERLOAD_REQUESTS_PER_CLIENT
        assert counts["ok"] + counts["shed"] == total
        assert counts["ok"] > 0, "overload starved every request"
        assert counts["shed"] > 0, "2x saturation never shed -- gate inert?"

        health_conn = http.client.HTTPConnection(host, port, timeout=30)
        health_conn.request("GET", "/health")
        health = json.loads(health_conn.getresponse().read())
        health_conn.close()
        assert health["shed_count"] >= counts["shed"]
        latency = health["latency_ms"]
        assert latency["p99_ms"] > 0

        shed_rate = counts["shed"] / total
        write_report(
            "service_overload",
            f"overload @ {OVERLOAD_SATURATION}x saturation "
            f"(inflight={OVERLOAD_INFLIGHT}, queue={OVERLOAD_QUEUE}, "
            f"clients={n_clients}):\n"
            f"  served {counts['ok']}/{total}  shed {counts['shed']} "
            f"({shed_rate:.0%})  "
            f"p50={latency['p50_ms']:.1f}ms p95={latency['p95_ms']:.1f}ms "
            f"p99={latency['p99_ms']:.1f}ms",
        )
        if QUICK:
            return
        update_json_report(
            "service",
            {
                "overload": {
                    "max_inflight": OVERLOAD_INFLIGHT,
                    "queue_depth": OVERLOAD_QUEUE,
                    "client_threads": n_clients,
                    "saturation": OVERLOAD_SATURATION,
                    "requests_total": total,
                    "served": counts["ok"],
                    "shed": counts["shed"],
                    "shed_rate": round(shed_rate, 4),
                    "elapsed_s": round(elapsed, 4),
                    "served_batches_per_s": round(counts["ok"] / elapsed, 2),
                    "latency_ms": latency,
                }
            },
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
