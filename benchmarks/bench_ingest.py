"""Engineering benchmark: the crash-safe streaming ingestion path.

Not a paper figure — the operational envelope of the ISSUE 8 subsystem:

* **ingest throughput** — durably acknowledged batches/second and
  points/second through :meth:`IngestManager.ingest` with the refresh
  gate closed, so the number isolates the WAL append + fsync + drift
  accounting cost every ``POST /ingest`` pays;
* **replay time vs WAL size** — cold-start cost of replaying a log of
  1x/4x/16x the base batch count, the restart-latency curve an operator
  actually budgets for;
* **staleness vs budget** — drifted batches streamed against a small
  ``epoch_budget_fraction``: how many re-releases the ledger allows
  before refreshes are refused and pending points accumulate on a
  stale release;
* **replay bit-identity** (asserted, both modes) — a crash injected
  between the ledger charge and the WAL commit marker, then a restart:
  the recovered archive must be byte-identical to a never-crashed run's,
  with identical ledger state.  This is the PR's acceptance criterion
  and runs even in quick mode.

Results land in ``BENCH_ingest.json`` at the repo root.
``BENCH_INGEST_QUICK=1`` (CI smoke, ``make bench-ingest-quick``) shrinks
batch counts, keeps the bit-identity assertion, and leaves the tracked
JSON untouched.
"""

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
from conftest import update_json_report

from repro.datasets.registry import get_spec
from repro.service import faultinject
from repro.service.faultinject import SimulatedCrash
from repro.service.ingest import IngestManager
from repro.service.keys import ReleaseKey
from repro.service.store import SynopsisStore

QUICK = os.environ.get("BENCH_INGEST_QUICK", "") not in ("", "0")

N_POINTS = 1_000 if QUICK else 9_000
BATCHES = 20 if QUICK else 200
BATCH_POINTS = 100 if QUICK else 500
REPLAY_SCALES = (1, 2) if QUICK else (1, 4, 16)

KEY = ReleaseKey("storage", "UG", 0.5, 0)


def _uniform_batches(n_batches, n_points, seed=0):
    bounds = get_spec("storage").make(n=10, rng=0).domain.bounds
    rng = np.random.default_rng(seed)
    return [
        np.column_stack(
            [
                rng.uniform(bounds.x_lo, bounds.x_hi, n_points),
                rng.uniform(bounds.y_lo, bounds.y_hi, n_points),
            ]
        )
        for _ in range(n_batches)
    ]


def _corner_batch(n_points, seed):
    bounds = get_spec("storage").make(n=10, rng=0).domain.bounds
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [
            rng.uniform(
                bounds.x_lo, bounds.x_lo + 0.1 * (bounds.x_hi - bounds.x_lo), n_points
            ),
            rng.uniform(
                bounds.y_lo, bounds.y_lo + 0.1 * (bounds.y_hi - bounds.y_lo), n_points
            ),
        ]
    )


def _boot(store_dir, **kwargs):
    store = SynopsisStore(
        store_dir=store_dir, dataset_budget=4.0, n_points=N_POINTS
    )
    kwargs.setdefault("drift_threshold", 1.0)  # gate closed by default
    manager = IngestManager(store, store_dir, **kwargs)
    return store, manager


class _TempDir:
    def __enter__(self):
        self.path = Path(tempfile.mkdtemp(prefix="bench_ingest_"))
        return self.path

    def __exit__(self, *exc):
        shutil.rmtree(self.path, ignore_errors=True)


def test_ingest_throughput_and_replay():
    results = {}
    with _TempDir() as store_dir:
        store, manager = _boot(store_dir)
        store.build(KEY)
        batches = _uniform_batches(BATCHES, BATCH_POINTS)
        start = time.perf_counter()
        for i, batch in enumerate(batches):
            manager.ingest("storage", 0, f"batch-{i}", batch)
        elapsed = time.perf_counter() - start
        wal_bytes = manager.to_payload()["datasets"]["storage|0"]["wal_bytes"]
        manager.close()
        results["throughput"] = {
            "batches": BATCHES,
            "points_per_batch": BATCH_POINTS,
            "seconds": round(elapsed, 4),
            "batches_per_sec": round(BATCHES / elapsed, 1),
            "points_per_sec": round(BATCHES * BATCH_POINTS / elapsed, 1),
            "wal_bytes": int(wal_bytes),
        }

        # Replay cost vs log size: reopen over ever larger logs.
        replay = []
        for scale in REPLAY_SCALES:
            target = BATCHES * scale
            store, manager = _boot(store_dir)
            staged = manager.to_payload()["datasets"]["storage|0"]
            for i in range(staged["staged_batches"], target):
                manager.ingest(
                    "storage", 0, f"batch-{i}", _uniform_batches(1, BATCH_POINTS, seed=i)[0]
                )
            manager.close()
            start = time.perf_counter()
            store, manager = _boot(store_dir)
            replay_seconds = time.perf_counter() - start
            state = manager.to_payload()["datasets"]["storage|0"]
            replay.append(
                {
                    "batches": int(state["staged_batches"]),
                    "points": int(state["staged_points"]),
                    "wal_bytes": int(state["wal_bytes"]),
                    "replay_seconds": round(replay_seconds, 4),
                }
            )
            manager.close()
        results["replay"] = replay

    assert results["throughput"]["batches_per_sec"] > 0
    # Replay must scale roughly linearly, not quadratically: 16x the
    # batches must not cost more than ~64x the 1x replay time (generous
    # bound; quadratic behaviour would blow far past it).
    if len(replay) > 1 and replay[0]["replay_seconds"] > 0:
        ratio = replay[-1]["replay_seconds"] / replay[0]["replay_seconds"]
        size_ratio = replay[-1]["batches"] / replay[0]["batches"]
        assert ratio < size_ratio * size_ratio * 4

    if not QUICK:
        update_json_report("ingest", results)


def test_staleness_vs_budget_curve():
    """Refreshes until the epoch cap trips, then pending accumulates."""
    curve = []
    fraction = 0.4  # cap = 1.6: three eps-0.5 refreshes, then refusal
    with _TempDir() as store_dir:
        store, manager = _boot(
            store_dir, drift_threshold=0.05, epoch_budget_fraction=fraction
        )
        store.build(KEY)
        steps = 5 if QUICK else 6
        for i in range(steps):
            report = manager.ingest(
                "storage", 0, f"drift-{i}", _corner_batch(BATCH_POINTS, seed=i)
            )
            stale = manager.staleness(KEY)
            curve.append(
                {
                    "batch": i,
                    "refreshed": bool(report["refreshed"]),
                    "refused": bool(report["refused"]),
                    "pending_points": 0 if stale is None else stale["pending_points"],
                }
            )
        state = store.budget_state()["storage|0"]
        manager.close()

    refreshes = sum(1 for step in curve if step["refreshed"])
    refusals = sum(1 for step in curve if step["refused"])
    assert refusals > 0, "the curve must reach the epoch cap"
    assert refreshes >= 1
    # Once refused, pending points only grow (the release is stale).
    refused_tail = [s["pending_points"] for s in curve if s["refused"]]
    assert refused_tail == sorted(refused_tail)
    assert state["spent"] <= fraction * state["total"] + KEY.epsilon + 1e-9

    if not QUICK:
        update_json_report(
            "ingest",
            {
                "staleness_vs_budget": {
                    "epoch_budget_fraction": fraction,
                    "refreshes": refreshes,
                    "refusals": refusals,
                    "curve": curve,
                }
            },
        )


def test_replay_bit_identity():
    """Crash between charge and commit; restart must reproduce the
    no-crash archive byte for byte.  Runs in both modes — this is the
    acceptance criterion, not a perf number."""
    batch = _corner_batch(400, seed=7)

    def run(store_dir, crash):
        store, manager = _boot(
            store_dir, drift_threshold=0.05, epoch_budget_fraction=0.9
        )
        store.build(KEY)
        if crash:
            faultinject.install(
                "wal.append",
                lambda **context: (_ for _ in ()).throw(SimulatedCrash("marker"))
                if context.get("kind") == "marker"
                else None,
            )
            try:
                manager.ingest("storage", 0, "batch-1", batch)
            except SimulatedCrash:
                pass
            finally:
                faultinject.clear()
            manager.close()
            store, manager = _boot(
                store_dir, drift_threshold=0.05, epoch_budget_fraction=0.9
            )
            assert manager.stats.recovered_releases == 1
        else:
            manager.ingest("storage", 0, "batch-1", batch)
        archive = (store_dir / f"{KEY.slug()}.npz").read_bytes()
        ledger = json.loads((store_dir / "budgets.json").read_text())
        manager.close()
        return hashlib.sha256(archive).hexdigest(), ledger

    with _TempDir() as baseline_dir, _TempDir() as crashed_dir:
        clean_sha, clean_ledger = run(baseline_dir, crash=False)
        crash_sha, crash_ledger = run(crashed_dir, crash=True)

    assert crash_sha == clean_sha, "replayed release must be bit-identical"
    assert crash_ledger == clean_ledger, "replay must never double-spend"

    if not QUICK:
        update_json_report(
            "ingest", {"replay_bit_identity": {"archive_sha256": clean_sha}}
        )
