"""Performance benchmark: batch query engine vs per-query answering.

Not a paper figure — an engineering benchmark for the library itself.
Verifies that the prefix-sum batch path (a) produces identical answers to
the bilinear-form path and (b) is substantially faster per query, which
is what keeps the experiment suite's wall-clock practical.
"""

import time

import numpy as np
from conftest import write_json_report, write_report

from repro.core.uniform_grid import UniformGridBuilder
from repro.datasets.synthetic import make_landmark
from repro.experiments.report import format_table
from repro.queries.engine import BatchQueryEngine
from repro.queries.workload import QueryWorkload


def test_batch_engine_speed_and_exactness(benchmark):
    dataset = make_landmark(60_000, rng=3)
    synopsis = UniformGridBuilder(grid_size=128).fit(
        dataset, 1.0, np.random.default_rng(0)
    )
    workload = QueryWorkload.generate(
        dataset, 40.0, 20.0, rng=1, queries_per_size=500
    )
    rects = workload.all_rects()
    engine = BatchQueryEngine(synopsis.layout, synopsis.counts)

    def run_batch():
        return engine.answer_batch(rects)

    batch_answers = benchmark.pedantic(run_batch, rounds=3, iterations=1)

    start = time.perf_counter()
    loop_answers = np.array(
        [synopsis.layout.estimate(synopsis.counts, rect) for rect in rects]
    )
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine.answer_batch(rects)
    batch_seconds = time.perf_counter() - start

    np.testing.assert_allclose(batch_answers, loop_answers, rtol=1e-9)
    speedup = loop_seconds / max(batch_seconds, 1e-9)
    write_report(
        "engine_perf",
        format_table(
            ["path", "seconds for 3000 queries"],
            [
                ["per-query bilinear form", f"{loop_seconds:.4f}"],
                ["batch prefix-sum engine", f"{batch_seconds:.4f}"],
                ["speedup", f"{speedup:.1f}x"],
            ],
            title="Batch query engine performance (128x128 grid)",
        ),
    )
    write_json_report(
        "engine",
        {
            "workload": {
                "grid": "128x128 uniform",
                "n_queries": int(len(rects)),
                "dataset": "landmark-60k",
                "epsilon": 1.0,
            },
            "per_query_loop_seconds": round(loop_seconds, 6),
            "batch_engine_seconds": round(batch_seconds, 6),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup > 5.0
