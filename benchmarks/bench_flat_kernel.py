"""Performance benchmark: the flat AG kernel vs the per-cell loop.

Not a paper figure — an engineering benchmark for the library itself,
covering both sides of the release boundary:

* **build**: ``AdaptiveGridBuilder.fit`` (vectorised CSR kernel: one leaf
  assignment pass, one Laplace draw, one segment-sum inference pass) vs
  ``fit_percell_reference`` (the pre-flat-kernel m1 x m1 Python loop),
  at several first-level sizes.  The releases must be bit-identical —
  the speedup is free of any change in what is released.
* **query**: ``FlatAdaptiveGridEngine`` (one concatenated prefix buffer,
  interior blocks O(1) from a level-1 totals prefix, border ring as
  vectorised (query, cell) pairs) vs the per-cell composite
  ``AdaptiveGridEngine`` on a large mixed q1-q6 batch, with answers
  matching to ``rtol=1e-9``.

Results are written to ``BENCH_flat_kernel.json`` at the repo root so the
perf trajectory is tracked in-tree.  The hard targets asserted here are
the ISSUE 2 acceptance criteria: >= 5x build speedup at the
paper-realistic first-level size (the auto rule picks m1 ~ 28 for this
dataset and epsilon, so m1 = 32 is the relevant regime; m1 = 16 is also
recorded) and >= 3x on a >= 1k-query mixed batch.
"""

import time

import numpy as np
from conftest import BENCH_N, write_json_report, write_report

from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.datasets.synthetic import make_landmark
from repro.experiments.report import format_table
from repro.queries.engine import (
    AdaptiveGridEngine,
    FlatAdaptiveGridEngine,
    rects_to_boxes,
)
from repro.queries.workload import QueryWorkload

EPSILON = 1.0
BUILD_M1 = (16, 32, 64)
#: The acceptance assertion runs at the paper-realistic first-level size.
ASSERT_M1 = 32


def _best_seconds(fn, rounds: int = 5) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_flat_kernel_build_and_query_speedups():
    dataset = make_landmark(BENCH_N["landmark"], rng=3)

    build_rows = []
    build_results = {}
    for m1 in BUILD_M1:
        builder = AdaptiveGridBuilder(first_level_size=m1)
        flat = builder.fit(dataset, EPSILON, np.random.default_rng(5))
        reference = builder.fit_percell_reference(
            dataset, EPSILON, np.random.default_rng(5)
        )
        # The kernel must not change the release: bit-identical state.
        np.testing.assert_array_equal(flat.cell_sizes, reference.cell_sizes)
        np.testing.assert_array_equal(flat.cell_totals, reference.cell_totals)
        np.testing.assert_array_equal(flat.leaf_counts, reference.leaf_counts)

        percell_s = _best_seconds(
            lambda: builder.fit_percell_reference(
                dataset, EPSILON, np.random.default_rng(5)
            )
        )
        flat_s = _best_seconds(
            lambda: builder.fit(dataset, EPSILON, np.random.default_rng(5))
        )
        speedup = percell_s / max(flat_s, 1e-9)
        build_results[str(m1)] = {
            "percell_seconds": round(percell_s, 6),
            "flat_seconds": round(flat_s, 6),
            "speedup": round(speedup, 2),
            "leaf_cells": int(flat.leaf_cell_count()),
        }
        build_rows.append(
            [f"m1={m1}", f"{percell_s * 1e3:.1f}", f"{flat_s * 1e3:.1f}",
             f"{speedup:.1f}x"]
        )

    # Query side: a large mixed workload against one paper-realistic
    # release, per-cell composite engine vs the flat CSR engine.
    synopsis = AdaptiveGridBuilder(first_level_size=ASSERT_M1).fit(
        dataset, EPSILON, np.random.default_rng(5)
    )
    workload = QueryWorkload.generate(
        dataset, 40.0, 20.0, rng=1, queries_per_size=500
    )
    boxes = rects_to_boxes(workload.all_rects())
    assert boxes.shape[0] >= 1_000

    percell_engine = AdaptiveGridEngine(synopsis)
    flat_engine = FlatAdaptiveGridEngine(synopsis)
    percell_answers = percell_engine.answer_batch(boxes)
    flat_answers = flat_engine.answer_batch(boxes)
    np.testing.assert_allclose(flat_answers, percell_answers, rtol=1e-9, atol=1e-7)
    # And against the scalar definition, on a sample (the scalar loop over
    # the full batch would dominate the bench's wall-clock).
    from repro.core.geometry import Rect

    sample = boxes[:: max(1, boxes.shape[0] // 100)]
    scalar = np.array([synopsis.answer(Rect(*row)) for row in sample])
    np.testing.assert_allclose(
        flat_engine.answer_batch(sample), scalar, rtol=1e-9, atol=1e-7
    )

    percell_q_s = _best_seconds(lambda: percell_engine.answer_batch(boxes))
    flat_q_s = _best_seconds(lambda: flat_engine.answer_batch(boxes))
    query_speedup = percell_q_s / max(flat_q_s, 1e-9)

    prep_percell_s = _best_seconds(lambda: AdaptiveGridEngine(synopsis))
    prep_flat_s = _best_seconds(lambda: FlatAdaptiveGridEngine(synopsis))

    write_report(
        "flat_kernel",
        format_table(
            ["build", "per-cell loop (ms)", "flat kernel (ms)", "speedup"],
            build_rows,
            title=(
                f"Flat AG kernel vs per-cell loop "
                f"(landmark n={BENCH_N['landmark']}, eps={EPSILON})"
            ),
        )
        + "\n"
        + format_table(
            ["query path", "seconds"],
            [
                [f"per-cell engine, {boxes.shape[0]} queries", f"{percell_q_s:.4f}"],
                [f"flat CSR engine, {boxes.shape[0]} queries", f"{flat_q_s:.4f}"],
                ["speedup", f"{query_speedup:.1f}x"],
            ],
            title=f"Batch query engines (m1={ASSERT_M1})",
        ),
    )
    write_json_report(
        "flat_kernel",
        {
            "workload": {
                "dataset": "landmark",
                "n_points": int(BENCH_N["landmark"]),
                "epsilon": EPSILON,
                "n_queries": int(boxes.shape[0]),
                "query_mix": "q1-q6 sized rects, 500 per size",
            },
            "build": build_results,
            "build_release_bit_identical": True,
            "query": {
                "m1": ASSERT_M1,
                "percell_engine_seconds": round(percell_q_s, 6),
                "flat_engine_seconds": round(flat_q_s, 6),
                "speedup": round(query_speedup, 2),
                "answers_rtol": 1e-9,
            },
            "engine_preparation": {
                "m1": ASSERT_M1,
                "percell_seconds": round(prep_percell_s, 6),
                "flat_seconds": round(prep_flat_s, 6),
                "speedup": round(prep_percell_s / max(prep_flat_s, 1e-9), 2),
            },
        },
    )

    assert build_results[str(ASSERT_M1)]["speedup"] >= 5.0
    # Slightly softer floor at m1 = 16, where the flat kernel is
    # data-pass-bound (typically ~5.7x standalone; the margin absorbs
    # pytest/plugin load and machine noise).
    assert build_results["16"]["speedup"] >= 4.0
    assert query_speedup >= 3.0
