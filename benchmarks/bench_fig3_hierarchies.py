"""Benchmark: Figure 3 — the effect of adding hierarchies to a uniform grid.

Paper shapes asserted (checkin and landmark, as in the figure):

* hierarchies over the 360 grid improve on U360 at best modestly — no
  H(b,d) beats plain U360 by a large factor (Section IV-C's point);
* Privelet over the same grid is competitive with the hierarchies;
* UG at the Guideline 1 size remains in the same league as everything
  built on the (suboptimal for this N) 360 grid.
"""

import pytest
from conftest import BENCH_N, BENCH_QUERIES, BENCH_WORKERS, write_report

from repro.experiments import figure3

PANELS = [
    ("checkin", 1.0),
    ("landmark", 1.0),
]


@pytest.mark.parametrize("dataset_name, epsilon", PANELS)
def test_figure3_panel(benchmark, dataset_name, epsilon):
    report = benchmark.pedantic(
        lambda: figure3.run(
            dataset_name,
            epsilon,
            leaf_size=360,
            n_points=BENCH_N[dataset_name],
            queries_per_size=BENCH_QUERIES,
            seed=23,
            n_workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"fig3_{dataset_name}_eps{epsilon:g}", report.render())

    results = report.data["results"]
    u360 = results["U360"].mean_relative()
    w360 = results["W360"].mean_relative()
    hierarchy_means = {
        label: result.mean_relative()
        for label, result in results.items()
        if label.startswith("H")
    }
    best_hierarchy = min(hierarchy_means.values())

    # The hierarchy benefit is limited (Section IV-C): even the best
    # H(b,d) improves U360 by well under 2x, and no hierarchy collapses.
    assert best_hierarchy > u360 / 2.0
    assert max(hierarchy_means.values()) < u360 * 2.0
    # Privelet stays in a sane band.  At the paper's N (1M) W360 modestly
    # beats U360; at our scaled N the wavelet's heavy per-leaf noise is
    # relatively larger, so we only assert it does not blow up — its
    # advantage re-emerges on large queries (asserted in the unit tests)
    # and its Figure 5 role (worse than UG at small grids) is asserted in
    # bench_fig5.  See EXPERIMENTS.md for the divergence note.
    assert w360 < u360 * 6.0
    # Choosing the grid size right (Guideline 1) matters more than adding
    # a hierarchy: UG at the guideline size beats all 360-leaf methods.
    u_best = min(
        result.mean_relative()
        for label, result in results.items()
        if label.startswith("U") and label != "U360"
    )
    assert u_best <= min(best_hierarchy, w360, u360) * 1.1
