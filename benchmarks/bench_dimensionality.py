"""Benchmark: Section IV-C — the effect of dimensionality on hierarchies.

Regenerates the paper's closed-form example and validates its empirical
consequence: on 2-D data a hierarchy's improvement over a flat grid is
small, because a query's border (which must be answered at the leaves)
occupies a far larger fraction of the domain than in 1-D.
"""

from conftest import BENCH_QUERIES, write_report

from repro.analysis.dimensionality import (
    border_fraction,
    paper_example,
)
from repro.baselines.hierarchy import HierarchicalGridBuilder
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import standard_setup
from repro.experiments.report import format_table
from repro.experiments.runner import evaluate_builder


def test_closed_form_example(benchmark):
    example = benchmark.pedantic(paper_example, rounds=1, iterations=1)
    rows = [["1", f"{example['1d']:.4f}"], ["2", f"{example['2d']:.4f}"]]
    for dimension in (3, 4):
        rows.append(
            [str(dimension), f"{border_fraction(10_000, 4, dimension):.4f}"]
        )
    write_report(
        "dimensionality_closed_form",
        format_table(
            ["dimension", "border fraction (M=10000, b=4)"], rows,
            title="Section IV-C: query-border fraction by dimension",
        ),
    )
    # The paper's exact numbers.
    assert example["1d"] == 0.0008
    assert abs(example["2d"] - 0.08) < 1e-12
    assert example["ratio"] == 100.0
    # Monotone growth with dimension.
    fractions = [border_fraction(10_000, 4, d) for d in (1, 2, 3)]
    assert fractions[0] < fractions[1] < fractions[2]


def test_empirical_2d_hierarchy_benefit_small(benchmark):
    """A depth-3 hierarchy over storage barely moves the needle vs flat UG."""
    setup = standard_setup("storage", queries_per_size=BENCH_QUERIES)

    def run():
        flat = evaluate_builder(
            UniformGridBuilder(grid_size=32), setup.dataset, setup.workload,
            1.0, n_trials=3, seed=53,
        )
        hierarchy = evaluate_builder(
            HierarchicalGridBuilder(32, branching=2, depth=3),
            setup.dataset, setup.workload, 1.0, n_trials=3, seed=53,
        )
        return flat.mean_relative(), hierarchy.mean_relative()

    flat_mean, hierarchy_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "dimensionality_empirical",
        format_table(
            ["method", "mean relative error"],
            [["U32 (flat)", f"{flat_mean:.4f}"],
             ["H2,3 over 32 (hierarchy)", f"{hierarchy_mean:.4f}"]],
            title="2-D hierarchy benefit (storage, eps=1)",
        ),
    )
    ratio = hierarchy_mean / flat_mean
    # "Some small benefits" at best: no 2x swing in either direction.
    assert 0.5 < ratio < 2.0
