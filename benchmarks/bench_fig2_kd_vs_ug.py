"""Benchmark: Figure 2 — KD-standard vs KD-hybrid vs UG across grid sizes.

Paper shapes asserted per panel:

* there is an interior optimum: the best UG size in the sweep is neither
  the smallest nor the largest candidate (choosing m matters);
* UG at its best swept size is at least as good as KD-hybrid;
* KD-hybrid is no worse than KD-standard.
"""

import pytest
from conftest import BENCH_N, BENCH_QUERIES, BENCH_WORKERS, write_report

from repro.experiments import figure2

PANELS = [
    ("storage", 1.0),
    ("storage", 0.1),
    ("landmark", 1.0),
    ("checkin", 0.1),
]


@pytest.mark.parametrize("dataset_name, epsilon", PANELS)
def test_figure2_panel(benchmark, dataset_name, epsilon):
    report = benchmark.pedantic(
        lambda: figure2.run(
            dataset_name,
            epsilon,
            n_points=BENCH_N[dataset_name],
            queries_per_size=BENCH_QUERIES,
            seed=17,
            n_workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"fig2_{dataset_name}_eps{epsilon:g}", report.render())

    results = report.data["results"]
    ug_sizes = report.data["ug_sizes"]
    ug_means = {m: results[f"U{m}"].mean_relative() for m in ug_sizes}
    best_size = min(ug_means, key=ug_means.get)
    best_ug = ug_means[best_size]
    kst = results["Kst"].mean_relative()
    khy = results["Khy"].mean_relative()

    # Grid size matters: the extremes of the sweep are worse than the best.
    assert best_ug <= ug_means[ug_sizes[0]]
    assert best_ug <= ug_means[ug_sizes[-1]]
    # UG at a good size matches or beats the hierarchical state of the art.
    assert best_ug <= khy * 1.1
    # Cormode et al.'s ordering: hybrid beats (or at worst ties) standard.
    # In the tiny N*eps regime both trees are noise-dominated, so we allow
    # a wider tie margin there (the paper's storage panels show them close).
    tie_margin = 1.2 if dataset_name != "storage" else 1.5
    assert khy <= kst * tie_margin
