"""Benchmark: Figure 6 — the final comparison in absolute error.

Paper shapes asserted:

* AG methods dominate in absolute error exactly as they do in relative
  error;
* on the highly uniform road dataset, UG at the *suggested* size does not
  lose to UG at the relative-error-tuned size under absolute error (the
  paper's robustness argument for Guideline 1).
"""

import pytest
from conftest import BENCH_N, BENCH_QUERIES, BENCH_WORKERS, write_report

from repro.experiments import figure6

PANELS = [
    ("road", 1.0),
    ("checkin", 1.0),
    ("landmark", 1.0),
    ("storage", 1.0),
]


@pytest.mark.parametrize("dataset_name, epsilon", PANELS)
def test_figure6_panel(benchmark, dataset_name, epsilon):
    report = benchmark.pedantic(
        lambda: figure6.run(
            dataset_name,
            epsilon,
            n_points=BENCH_N[dataset_name],
            queries_per_size=BENCH_QUERIES,
            seed=43,
            sweep_steps=1,
            n_workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"fig6_{dataset_name}_eps{epsilon:g}", report.render())

    results = report.data["results"]
    absolute_means = {
        label: result.mean_absolute() for label, result in results.items()
    }
    ag_suggested = next(
        v for k, v in absolute_means.items()
        if k.endswith("(sugg)") and k.startswith("A")
    )
    khy = absolute_means["Khy"]
    non_ag_best = min(
        v for k, v in absolute_means.items() if not k.startswith("A")
    )

    # AG outperforms KD-hybrid in absolute error as well.
    assert ag_suggested < khy
    # And remains at least competitive with every non-AG method.
    assert ag_suggested <= non_ag_best * 1.1

    if dataset_name == "road":
        # Figure 6's extra observation: the suggested UG size holds up
        # under absolute error on the uniform road data.
        ug_suggested = next(
            v for k, v in absolute_means.items()
            if k.endswith("(sugg)") and k.startswith("U")
        )
        ug_best_relative = next(
            v for k, v in absolute_means.items()
            if k.endswith("(best)") and k.startswith("U")
        )
        assert ug_suggested <= ug_best_relative * 1.25
