"""Shared configuration for the benchmark suite.

Benchmarks run the per-figure experiment modules at reduced-but-meaningful
scale (see DESIGN.md for the substitution rationale): dataset sizes are
scaled down from the paper's (keeping storage at its full 9,000), and 100
queries per size are used instead of 200.  Every bench writes its rendered
report to ``benchmarks/output/`` so the regenerated tables survive pytest's
output capture; EXPERIMENTS.md summarises them against the paper.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Scaled dataset sizes used by the benches (paper sizes in DESIGN.md).
BENCH_N = {
    "road": 150_000,
    "checkin": 150_000,
    "landmark": 120_000,
    "storage": 9_000,
}

#: Queries per size (paper: 200).
BENCH_QUERIES = 100

#: Trial-runner processes for every experiment bench.  Parallel pooling
#: is bit-identical to serial (see repro.experiments.runner), so this is
#: purely a wall-clock knob; default serial, override via BENCH_WORKERS.
BENCH_WORKERS = int(os.environ.get("BENCH_WORKERS", "1"))

OUTPUT_DIR = Path(__file__).parent / "output"

#: Machine-readable perf results land at the repo root as
#: ``BENCH_<name>.json`` so the performance trajectory is tracked in-tree
#: from PR to PR (human-readable tables still go to ``OUTPUT_DIR``).
REPO_ROOT = Path(__file__).parent.parent


def write_report(name: str, text: str) -> Path:
    """Persist a rendered experiment report next to the benchmarks."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def write_json_report(name: str, payload: dict) -> Path:
    """Persist machine-readable perf numbers as ``BENCH_<name>.json``.

    ``payload`` must be JSON-serialisable (coerce numpy scalars with
    ``float``/``int`` first).  The file is committed at the repo root so
    each PR's perf numbers are diffable history, not throwaway output.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def update_json_report(name: str, updates: dict) -> Path:
    """Merge ``updates`` into ``BENCH_<name>.json`` (created if missing).

    For benches whose scenarios live in separate tests (e.g. the service
    throughput modes and the overload scenario): each test overwrites
    only its own top-level keys, so running one scenario never erases
    the others' tracked numbers.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    payload = json.loads(path.read_text(encoding="utf-8")) if path.exists() else {}
    payload.update(updates)
    return write_json_report(name, payload)


@pytest.fixture
def report_writer():
    return write_report
