"""Benchmark: Table II — suggested vs empirically best grid sizes.

For every dataset and epsilon in the table, sweeps UG sizes and AG
first-level sizes around the guideline suggestions and asserts the paper's
finding: the suggested UG size lands inside (or within one factor-2 step
of) the empirically best band, and the suggested AG m1 likewise.
"""

import pytest
from conftest import BENCH_N, BENCH_QUERIES, BENCH_WORKERS, write_report

from repro.experiments import table2

EPSILONS = (1.0, 0.1)


def _within_one_step(suggested: int, best: int) -> bool:
    """True when best is within a factor-2 ladder step of suggested."""
    return best / 2.2 <= suggested <= best * 2.2


@pytest.mark.parametrize("dataset_name", ["road", "checkin", "landmark", "storage"])
def test_table2_dataset(benchmark, dataset_name):
    report = benchmark.pedantic(
        lambda: table2.run(
            dataset_names=[dataset_name],
            epsilons=EPSILONS,
            n_points=BENCH_N[dataset_name],
            queries_per_size=BENCH_QUERIES,
            ladder_steps=2,
            seed=47,
            n_workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(f"table2_{dataset_name}", report.render())

    for epsilon in EPSILONS:
        details = report.data["details"][f"{dataset_name}@eps={epsilon:g}"]
        ug_sweep = details["ug_sweep"]
        ug_suggested = details["ug_suggested"]
        ug_best = min(ug_sweep, key=ug_sweep.get)
        # The suggestion is within one ladder step of the observed best
        # (the paper: "generally lie within the range ... of best sizes";
        # road at eps=1 is its one known outlier, mirrored here).
        if not (dataset_name == "road" and epsilon == 1.0):
            assert _within_one_step(ug_suggested, ug_best), (
                f"UG suggested {ug_suggested} vs best {ug_best} ({ug_sweep})"
            )
        # Either way the suggested size is never catastrophic: within 2x
        # of the best swept error.
        assert ug_sweep[ug_suggested] <= min(ug_sweep.values()) * 2.0

        ag_sweep = details["ag_sweep"]
        ag_suggested = details["ag_suggested"]
        # road is again the paper's own outlier: Table II reports the best
        # AG sizes for road (32-48 at eps=1) well below its suggested m1
        # (100).  Everywhere else the suggestion is near-optimal.
        ag_margin = 2.5 if dataset_name == "road" else 1.6
        assert ag_sweep[ag_suggested] <= min(ag_sweep.values()) * ag_margin, (
            f"AG suggested {ag_suggested} sweep {ag_sweep}"
        )
