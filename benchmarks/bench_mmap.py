"""Fork-scaling benchmark: mapped (v2) vs copied (v1) release archives.

Not a paper figure — an engineering benchmark for the zero-copy store
(PR 9).  The scenario is a pre-fork serving fleet: N worker processes
share one ``--store-dir``, each loads the same release after the fork,
prepares an engine, and answers query batches.  With v1 archives every
worker decompresses the payload into its own heap and rebuilds the
prefix-sum engine (private pages, engine cold start); with v2 archives
every worker memory-maps the same page-aligned slabs and restores the
engine from its sealed buffers (shared file-backed pages, zero cold
starts).

For each format and each worker count in ``WORKER_COUNTS`` the parent
forks the workers and collects, per child, the *private* memory growth
around the load (``Private_Clean + Private_Dirty`` from
``/proc/self/smaps_rollup`` — RSS alone counts shared pages and would
flatter nobody), the engine cold-start/sealed-load counters, and the
child's batch throughput.  Bit-identity of v1 and v2 answers is asserted
always, in both modes.

Results land under ``mmap_scaling`` in ``BENCH_service.json``.  The
acceptance criterion asserted in full mode is memory, not speed (so it
holds on a 1-CPU box too): at 4 workers, the mean per-worker private
growth of mapped releases is <= 20% of the v1 per-process copy cost.

``BENCH_MMAP_QUICK=1`` (``make bench-mmap-quick``) shrinks the release
and the worker counts, keeps the bit-identity assertion, and leaves the
tracked JSON untouched.
"""

import hashlib
import json
import os
import sys
import time

import numpy as np
import pytest
from conftest import update_json_report, write_report

from repro.core.serialization import synopsis_from_path
from repro.experiments.report import format_table
from repro.queries.engine import make_engine
from repro.service.keys import ReleaseKey
from repro.service.query_service import QueryService
from repro.service.store import SynopsisStore

QUICK = os.environ.get("BENCH_MMAP_QUICK", "") not in ("", "0")

N_POINTS = 100_000 if QUICK else 8_000_000
WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4, 8)
BATCHES_PER_WORKER = 4 if QUICK else 16
BATCH_SIZE = 64 if QUICK else 256

#: Acceptance: mapped per-worker private growth vs the v1 copy cost.
MAX_PRIVATE_RATIO = 0.20
RATIO_WORKERS = 4

KEY = ReleaseKey("storage", "UG", epsilon=1.0, seed=0)

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork") or not sys.platform.startswith("linux"),
    reason="fork + /proc/<pid>/smaps_rollup are Linux-only",
)


def _private_bytes():
    """Private (unshared) resident bytes of this process, plus RSS/PSS."""
    fields = {}
    with open("/proc/self/smaps_rollup") as handle:
        for line in handle:
            parts = line.split()
            if len(parts) >= 2 and parts[0].endswith(":"):
                try:
                    fields[parts[0][:-1]] = int(parts[1]) * 1024
                except ValueError:
                    pass
    private = fields.get("Private_Clean", 0) + fields.get("Private_Dirty", 0)
    return private, fields.get("Rss", 0), fields.get("Pss", 0)


def _check_batch():
    rng = np.random.default_rng(101)
    x = np.sort(rng.random((32, 2)), axis=1)
    y = np.sort(rng.random((32, 2)), axis=1)
    return np.column_stack([x[:, 0], y[:, 0], x[:, 1], y[:, 1]])


def _worker_batches():
    rng = np.random.default_rng(7)
    batches = []
    for _ in range(BATCHES_PER_WORKER):
        x = np.sort(rng.random((BATCH_SIZE, 2)), axis=1)
        y = np.sort(rng.random((BATCH_SIZE, 2)), axis=1)
        batches.append(
            np.column_stack([x[:, 0], y[:, 0], x[:, 1], y[:, 1]])
        )
    return batches


def _child(write_fd, store):
    """Post-fork worker body: load, prepare, answer, report, exit."""
    status = 1
    try:
        private_before, _, _ = _private_bytes()
        service = QueryService(store, answer_cache_bytes=0)
        digest = hashlib.sha1(
            np.ascontiguousarray(
                service.answer(KEY, _check_batch()).estimates
            ).tobytes()
        ).hexdigest()
        batches = _worker_batches()
        start = time.perf_counter()
        for boxes in batches:
            service.answer(KEY, boxes)
        elapsed = time.perf_counter() - start
        private_after, rss, pss = _private_bytes()
        stats = service.stats()
        payload = {
            "private_delta_bytes": max(0, private_after - private_before),
            "rss_bytes": rss,
            "pss_bytes": pss,
            "batches_per_s": len(batches) / elapsed,
            "engine_cold_starts": stats["engine_cold_starts"],
            "engine_sealed_loads": stats["engine_sealed_loads"],
            "answers_sha1": digest,
        }
        os.write(write_fd, json.dumps(payload).encode())
        status = 0
    finally:
        os.close(write_fd)
        os._exit(status)


def _fork_round(store, n_workers):
    """Fork ``n_workers`` children over one (unloaded) store; collect."""
    pipes, pids = [], []
    for _ in range(n_workers):
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            for other_read, _ in pipes:
                os.close(other_read)
            _child(write_fd, store)  # never returns
        os.close(write_fd)
        pipes.append((read_fd, pid))
        pids.append(pid)
    reports = []
    for read_fd, pid in pipes:
        raw = b""
        while chunk := os.read(read_fd, 65536):
            raw += chunk
        os.close(read_fd)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0, f"worker {pid} died"
        reports.append(json.loads(raw))
    return reports


def _aggregate(reports):
    deltas = [r["private_delta_bytes"] for r in reports]
    return {
        "workers": len(reports),
        "mean_private_delta_bytes": int(np.mean(deltas)),
        "max_private_delta_bytes": int(np.max(deltas)),
        "mean_rss_bytes": int(np.mean([r["rss_bytes"] for r in reports])),
        "mean_pss_bytes": int(np.mean([r["pss_bytes"] for r in reports])),
        "sum_batches_per_s": round(
            sum(r["batches_per_s"] for r in reports), 2
        ),
        "engine_cold_starts": sum(r["engine_cold_starts"] for r in reports),
        "engine_sealed_loads": sum(r["engine_sealed_loads"] for r in reports),
    }


def test_mmap_fork_scaling(tmp_path):
    if not os.path.exists("/proc/self/smaps_rollup"):
        pytest.skip("smaps_rollup not available")

    dirs = {fmt: tmp_path / fmt for fmt in ("v1", "v2")}
    archive_bytes = {}
    for fmt, directory in dirs.items():
        SynopsisStore(
            store_dir=directory,
            n_points=N_POINTS,
            dataset_budget=4.0,
            archive_format=fmt,
        ).build(KEY)
        archive_bytes[fmt] = (directory / f"{KEY.slug()}.npz").stat().st_size

    # ------------------------------------------------------------------
    # Bit-identity: the mapped container restores the exact v1 synopsis.
    # ------------------------------------------------------------------
    check = _check_batch()
    reference = None
    for fmt, directory in dirs.items():
        synopsis = synopsis_from_path(directory / f"{KEY.slug()}.npz")
        answers = np.asarray(make_engine(synopsis).answer_batch(check))
        if reference is None:
            reference = answers
        else:
            np.testing.assert_array_equal(answers, reference)

    # ------------------------------------------------------------------
    # Fork rounds: fresh (unloaded) store per round; children load.
    # ------------------------------------------------------------------
    scaling = {}
    digests = set()
    for n_workers in WORKER_COUNTS:
        row = {}
        for fmt, directory in dirs.items():
            store = SynopsisStore(
                store_dir=directory,
                n_points=N_POINTS,
                dataset_budget=4.0,
                archive_format=fmt,
            )
            reports = _fork_round(store, n_workers)
            digests.update(r["answers_sha1"] for r in reports)
            aggregate = _aggregate(reports)
            if fmt == "v2":
                # Warm mapped workers never rebuild: sealed slabs only.
                assert aggregate["engine_cold_starts"] == 0, aggregate
                assert aggregate["engine_sealed_loads"] == n_workers
            else:
                assert aggregate["engine_cold_starts"] == n_workers
            row[fmt] = aggregate
        scaling[str(n_workers)] = row

    # Every worker, both formats, all rounds: one answer vector.
    assert len(digests) == 1, digests

    ratio_at = str(RATIO_WORKERS) if str(RATIO_WORKERS) in scaling else None
    ratio = None
    if ratio_at:
        v1_cost = scaling[ratio_at]["v1"]["mean_private_delta_bytes"]
        v2_cost = scaling[ratio_at]["v2"]["mean_private_delta_bytes"]
        ratio = v2_cost / max(v1_cost, 1)

    rows = [
        [
            workers,
            fmt,
            f"{row[fmt]['mean_private_delta_bytes'] / 1e6:.2f}",
            f"{row[fmt]['mean_rss_bytes'] / 1e6:.1f}",
            f"{row[fmt]['sum_batches_per_s']:.0f}",
            str(row[fmt]["engine_cold_starts"]),
        ]
        for workers, row in scaling.items()
        for fmt in ("v1", "v2")
    ]
    text = format_table(
        ["workers", "fmt", "private MB/worker", "rss MB", "batches/s", "cold"],
        rows,
    ) + (
        f"\n\narchive bytes: v1={archive_bytes['v1']:,} "
        f"v2={archive_bytes['v2']:,}"
    )
    if ratio is not None:
        text += (
            f"\nmapped private cost at {RATIO_WORKERS} workers: "
            f"{ratio:.1%} of the v1 copy cost"
        )
    write_report("mmap_scaling", text)

    if QUICK:
        return  # smoke: bit-identity asserted above, JSON untouched

    update_json_report(
        "service",
        {
            "mmap_scaling": {
                "cpu_count": os.cpu_count() or 1,
                "n_points": N_POINTS,
                "batch_size": BATCH_SIZE,
                "batches_per_worker": BATCHES_PER_WORKER,
                "archive_bytes": archive_bytes,
                "bit_identical_v1_vs_v2": True,
                "workers": scaling,
                "private_delta_ratio_at_4_workers": (
                    round(ratio, 4) if ratio is not None else None
                ),
            }
        },
    )

    # Acceptance (PR 9): per-worker private growth for mapped releases
    # is <= 20% of the v1 per-process copy cost at 4 workers.
    assert ratio is not None and ratio <= MAX_PRIVATE_RATIO, scaling
