# Developer entry points. `make test` is the tier-1 verification command
# referenced by ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: help test test-faults test-ingest test-tenant bench-quick bench-engine bench-experiments bench-tree bench-tree-quick bench-service bench-service-quick bench-longtail bench-longtail-quick bench-ingest bench-ingest-quick bench-mmap bench-mmap-quick serve serve-smoke quickstart

help:
	@echo "make test                run the full unit/property test suite (tier-1)"
	@echo "make test-faults         fault-injection suite: shedding, deadlines, crash-safe storage"
	@echo "make test-ingest         streaming-ingest suite: WAL properties, crash replay, drift policy"
	@echo "make test-tenant         multi-tenant suite: router, API-key auth, catalog ledger safety"
	@echo "make bench-quick         every paper experiment at quick scale, one report"
	@echo "make bench-engine        engine perf benches only; refreshes BENCH_*.json"
	@echo "make bench-experiments   evaluation fast-path benches; refreshes BENCH_experiments.json"
	@echo "make bench-tree          flat tree kernel benches; refreshes BENCH_tree_kernel.json"
	@echo "make bench-tree-quick    tree kernel equivalence smoke (small scale, no JSON)"
	@echo "make bench-service       HTTP load bench (JSON vs binary, cold vs warm); refreshes BENCH_service.json"
	@echo "make bench-service-quick service bench smoke (bit-identity always, ratios only on >= 4 CPUs)"
	@echo "make bench-longtail      long-tail kernels (Privelet/Hier/UGnd); refreshes BENCH_longtail.json"
	@echo "make bench-longtail-quick long-tail kernel equivalence smoke (small scale, no JSON)"
	@echo "make bench-ingest        ingest throughput + replay curve; refreshes BENCH_ingest.json"
	@echo "make bench-ingest-quick  ingest smoke: replay bit-identity asserted, no JSON"
	@echo "make bench-mmap          fork-scaling bench (mapped v2 vs copied v1 archives); refreshes BENCH_service.json"
	@echo "make bench-mmap-quick    mmap smoke: v1==v2 bit-identity asserted, no JSON"
	@echo "make serve               start the synopsis HTTP server on port 8731 (--workers N via SERVE_ARGS)"
	@echo "make serve-smoke         build + query + budget-refusal round trip over HTTP"
	@echo "make quickstart          run examples/quickstart.py"

test:
	$(PYTHON) -m pytest -x -q

test-faults:
	$(PYTHON) -m pytest tests/faults -q

test-ingest:
	$(PYTHON) -m pytest tests/faults/test_wal.py tests/faults/test_ingest_crash.py tests/faults/test_ledger_lock.py tests/service/test_ingest.py tests/service/test_ingest_http.py -q

test-tenant:
	$(PYTHON) -m pytest tests/tenant -q

bench-quick:
	$(PYTHON) -m repro suite

bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_engine_perf.py benchmarks/bench_flat_kernel.py -q

bench-experiments:
	$(PYTHON) -m pytest benchmarks/bench_ground_truth.py -q

bench-tree:
	$(PYTHON) -m pytest benchmarks/bench_tree_kernel.py -q

bench-tree-quick:
	BENCH_TREE_QUICK=1 $(PYTHON) -m pytest benchmarks/bench_tree_kernel.py -q

bench-service:
	$(PYTHON) -m pytest benchmarks/bench_service.py -q

bench-service-quick:
	BENCH_SERVICE_QUICK=1 $(PYTHON) -m pytest benchmarks/bench_service.py -q

bench-longtail:
	$(PYTHON) -m pytest benchmarks/bench_longtail.py -q

bench-longtail-quick:
	BENCH_LONGTAIL_QUICK=1 $(PYTHON) -m pytest benchmarks/bench_longtail.py -q

bench-ingest:
	$(PYTHON) -m pytest benchmarks/bench_ingest.py -q

bench-ingest-quick:
	BENCH_INGEST_QUICK=1 $(PYTHON) -m pytest benchmarks/bench_ingest.py -q

bench-mmap:
	$(PYTHON) -m pytest benchmarks/bench_mmap.py -q

bench-mmap-quick:
	BENCH_MMAP_QUICK=1 $(PYTHON) -m pytest benchmarks/bench_mmap.py -q

serve:
	$(PYTHON) -m repro serve $(SERVE_ARGS)

serve-smoke:
	$(PYTHON) -m repro serve --smoke

quickstart:
	$(PYTHON) examples/quickstart.py
