"""Private KD-tree baselines (Cormode et al., ICDE 2012).

The paper compares against two recursive-partitioning methods:

* **KD-standard** (``Kst``) — a KD-tree of fixed height.  At every internal
  node the split coordinate is a noisy median of the node's points along
  the splitting dimension (alternating x / y), chosen with the exponential
  mechanism; a share of the budget pays for the medians and the rest is
  split uniformly across levels for noisy counts.  No constrained
  inference.
* **KD-hybrid** (``Khy``) — Cormode et al.'s best configuration: the first
  few levels split at region midpoints like a quadtree (free: no data-
  dependent choice), deeper levels use noisy medians; count budget is
  allocated *geometrically* across levels (more to the leaves), and
  constrained inference is applied over the tree.

Both release a :class:`~repro.baselines.tree.TreeSynopsis`.

Budget accounting: nodes at one tree level have disjoint regions, so both
the per-level count histograms and the per-level median selections fall
under parallel composition and are charged once per level.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.tree import (
    SpatialNode,
    TreeArrays,
    TreeSynopsis,
    apply_tree_inference,
    apply_tree_inference_arrays,
)
from repro.core.dataset import GeoDataset
from repro.core.geometry import Rect
from repro.core.synopsis import SynopsisBuilder
from repro.privacy.budget import PrivacyBudget
from repro.privacy.composition import geometric_allocation, uniform_allocation
from repro.privacy.mechanisms import (
    ensure_rng,
    exponential_mechanism,
    laplace_noise,
    laplace_scale,
    noisy_median_index,
)

__all__ = ["KDTreeBuilder", "KDStandardBuilder", "KDHybridBuilder", "default_tree_depth"]


def default_tree_depth(n_points: int, epsilon: float = 1.0) -> int:
    """A KD-tree height comparable to the implementations the paper cites.

    The paper notes that recursive methods commonly reach ~16 levels for one
    million points; ``log2(N * eps) - 3`` reproduces that scale at
    ``eps = 1`` and is clamped to [4, 16].  Scaling with the *budget-
    weighted* count follows Cormode et al.'s guidance: at small ``N * eps``
    deep trees dilute the per-level budget into pure noise, so the tree
    should be shallower.
    """
    effective = max(2.0, n_points * epsilon)
    return int(min(16, max(4, math.floor(math.log2(effective)) - 3)))


class KDTreeBuilder(SynopsisBuilder):
    """Configurable private KD-tree; the named baselines are presets.

    Parameters
    ----------
    depth:
        Total tree height (number of split levels).  ``None`` derives it
        from the dataset size via :func:`default_tree_depth`.
    quadtree_levels:
        How many top levels split at region midpoints into four quadrants
        (the "hybrid" part).  0 gives a pure KD-tree.
    median_fraction:
        Fraction of the budget reserved for exponential-mechanism medians,
        split uniformly over the KD (non-quadtree) internal levels.
    geometric_budget:
        When ``True``, count budget grows geometrically toward the leaves
        with ratio ``2^(1/3)`` (Cormode et al.'s optimised allocation);
        otherwise it is uniform per level.
    constrained_inference:
        Apply Hay-et-al inference over the released tree.
    min_split_count:
        Stop splitting a node whose *noisy* count falls below this
        threshold (data-dependent stopping must use noisy counts to remain
        private).
    split_strategy:
        ``"median"`` (Cormode et al.: exponential-mechanism noisy median)
        or ``"uniformity"`` (after Xiao et al., VLDB SDM 2010: prefer the
        split whose halves are closest to internally uniform, selected
        with the exponential mechanism over candidate positions using the
        mass-vs-area balance utility, sensitivity 2).
    """

    name = "KD-tree"

    _SPLIT_STRATEGIES = ("median", "uniformity")
    _UNIFORMITY_CANDIDATES = 32

    def __init__(
        self,
        depth: int | None = None,
        quadtree_levels: int = 0,
        median_fraction: float = 0.25,
        geometric_budget: bool = False,
        constrained_inference: bool = False,
        min_split_count: float = 16.0,
        split_strategy: str = "median",
    ):
        if split_strategy not in self._SPLIT_STRATEGIES:
            raise ValueError(
                f"split_strategy must be one of {self._SPLIT_STRATEGIES}, "
                f"got {split_strategy!r}"
            )
        if depth is not None and depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if quadtree_levels < 0:
            raise ValueError(f"quadtree_levels must be >= 0, got {quadtree_levels}")
        if not 0.0 <= median_fraction < 1.0:
            raise ValueError(
                f"median_fraction must be in [0, 1), got {median_fraction}"
            )
        self.depth = depth
        self.quadtree_levels = quadtree_levels
        self.median_fraction = median_fraction
        self.geometric_budget = geometric_budget
        self.constrained_inference = constrained_inference
        self.min_split_count = min_split_count
        self.split_strategy = split_strategy

    def label(self) -> str:
        return self.name

    def _allocate_budgets(
        self,
        dataset: GeoDataset,
        epsilon: float,
        budget: PrivacyBudget,
    ) -> tuple[int, list[float], list[float]]:
        """Resolve the tree depth and spend the per-level budgets.

        Shared by :meth:`fit` and :meth:`fit_reference` so the two build
        paths charge identical ledgers.  Returns ``(depth,
        count_epsilons, median_epsilons)``.
        """
        depth = (
            self.depth
            if self.depth is not None
            else default_tree_depth(dataset.size, epsilon)
        )
        kd_levels = max(0, depth - self.quadtree_levels)
        median_epsilon_total = epsilon * self.median_fraction if kd_levels else 0.0
        count_epsilon_total = epsilon - median_epsilon_total

        # Per-level count budgets: levels 0 (root) .. depth (leaves).
        n_count_levels = depth + 1
        if self.geometric_budget:
            count_epsilons = geometric_allocation(count_epsilon_total, n_count_levels)
        else:
            count_epsilons = uniform_allocation(count_epsilon_total, n_count_levels)

        # Per-level median budgets for the KD levels only.
        median_epsilons = [0.0] * depth
        if kd_levels and median_epsilon_total > 0.0:
            per_level = median_epsilon_total / kd_levels
            for level in range(self.quadtree_levels, depth):
                median_epsilons[level] = per_level

        for level, eps in enumerate(count_epsilons):
            budget.spend(eps, f"counts level {level} (parallel over nodes)")
        for level, eps in enumerate(median_epsilons):
            if eps > 0.0:
                budget.spend(eps, f"medians level {level} (parallel over nodes)")
        return depth, count_epsilons, median_epsilons

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> TreeSynopsis:
        """Build the release straight into flat level-order arrays.

        The recursion mirrors :meth:`fit_reference`'s ``_build_node``
        call for call — same splits, same point filtering, same rng draw
        order — but records each node into flat DFS lists instead of
        allocating a :class:`~repro.baselines.tree.SpatialNode` per
        region; a stable sort by depth then yields the BFS level order
        of :class:`~repro.baselines.tree.TreeArrays`, and constrained
        inference runs as the level-wise array kernel.  The release is
        bit-identical to :meth:`fit_reference` given the same rng state
        (pinned by the equivalence tests).
        """
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)
        depth, count_epsilons, median_epsilons = self._allocate_budgets(
            dataset, epsilon, budget
        )

        rect_rows: list[tuple[float, float, float, float]] = []
        noisy_list: list[float] = []
        variance_list: list[float] = []
        depth_list: list[int] = []
        parent_list: list[int] = []

        def build(rect: Rect, points: np.ndarray, level: int, parent: int) -> None:
            count_eps = count_epsilons[level]
            scale = laplace_scale(1.0, count_eps)
            noisy = float(points.shape[0] + laplace_noise(scale, rng))
            index = len(noisy_list)
            rect_rows.append(rect.as_tuple())
            noisy_list.append(noisy)
            variance_list.append(2.0 * scale**2)
            depth_list.append(level)
            parent_list.append(parent)
            if level >= depth or noisy < self.min_split_count:
                return
            child_rects = self._split_rects(rect, points, level, median_epsilons, rng)
            for child_rect in child_rects:
                mask = child_rect.mask(points[:, 0], points[:, 1])
                # Points on shared edges must go to exactly one child; keep
                # the first claimant by removing them from the residual pool.
                child_points = points[mask]
                points = points[~mask]
                build(child_rect, child_points, level + 1, index)

        build(dataset.domain.bounds, dataset.points, 0, -1)
        arrays = TreeArrays.from_records(
            np.asarray(rect_rows),
            np.asarray(depth_list, dtype=np.int64),
            np.asarray(parent_list, dtype=np.int64),
            np.asarray(noisy_list),
            np.asarray(variance_list),
        )
        if self.constrained_inference:
            apply_tree_inference_arrays(arrays)
        return TreeSynopsis(dataset.domain, epsilon, arrays)

    def fit_reference(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> TreeSynopsis:
        """The historical object-graph build, retained as the reference.

        One :class:`~repro.baselines.tree.SpatialNode` per region and the
        recursive :func:`~repro.baselines.tree.apply_tree_inference`.
        Produces a bit-identical release to :meth:`fit` given the same
        rng state; used by the equivalence tests and by
        ``benchmarks/bench_tree_kernel.py`` to measure the flat kernel's
        speedup.  Not intended for production use.
        """
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)
        depth, count_epsilons, median_epsilons = self._allocate_budgets(
            dataset, epsilon, budget
        )
        root = self._build_node(
            rect=dataset.domain.bounds,
            points=dataset.points,
            level=0,
            max_depth=depth,
            count_epsilons=count_epsilons,
            median_epsilons=median_epsilons,
            rng=rng,
        )
        if self.constrained_inference:
            apply_tree_inference(root)
        return TreeSynopsis(dataset.domain, epsilon, root)

    # ------------------------------------------------------------------

    def _split_rects(
        self,
        rect: Rect,
        points: np.ndarray,
        level: int,
        median_epsilons: list[float],
        rng: np.random.Generator,
    ) -> list[Rect]:
        """The child regions of one internal node (both build paths)."""
        if level < self.quadtree_levels:
            return _quadrant_split(rect)
        axis = level % 2
        if self.split_strategy == "uniformity":
            split = self._uniformity_split(
                rect, points, axis, median_epsilons[level], rng
            )
        else:
            split = self._noisy_median_split(
                rect, points, axis, median_epsilons[level], rng
            )
        return _axis_split(rect, axis, split)

    def _build_node(
        self,
        rect: Rect,
        points: np.ndarray,
        level: int,
        max_depth: int,
        count_epsilons: list[float],
        median_epsilons: list[float],
        rng: np.random.Generator,
    ) -> SpatialNode:
        count_eps = count_epsilons[level]
        scale = laplace_scale(1.0, count_eps)
        noisy = float(points.shape[0] + laplace_noise(scale, rng))
        node = SpatialNode(
            rect=rect,
            noisy_count=noisy,
            variance=2.0 * scale**2,
            count=noisy,
            depth=level,
        )
        if level >= max_depth or noisy < self.min_split_count:
            return node

        child_rects = self._split_rects(rect, points, level, median_epsilons, rng)
        for child_rect in child_rects:
            mask = child_rect.mask(points[:, 0], points[:, 1])
            # Points on shared edges must go to exactly one child; keep the
            # first claimant by removing them from the residual pool.
            child_points = points[mask]
            points = points[~mask]
            node.children.append(
                self._build_node(
                    child_rect,
                    child_points,
                    level + 1,
                    max_depth,
                    count_epsilons,
                    median_epsilons,
                    rng,
                )
            )
        return node

    def _noisy_median_split(
        self,
        rect: Rect,
        points: np.ndarray,
        axis: int,
        median_epsilon: float,
        rng: np.random.Generator,
    ) -> float:
        lo = rect.x_lo if axis == 0 else rect.y_lo
        hi = rect.x_hi if axis == 0 else rect.y_hi
        if points.shape[0] == 0 or median_epsilon <= 0.0:
            return (lo + hi) / 2.0
        values = np.sort(points[:, axis])
        index = noisy_median_index(values, median_epsilon, rng)
        split = float(values[index])
        # Keep both children non-degenerate.
        if not lo < split < hi:
            return (lo + hi) / 2.0
        return split

    def _uniformity_split(
        self,
        rect: Rect,
        points: np.ndarray,
        axis: int,
        split_epsilon: float,
        rng: np.random.Generator,
    ) -> float:
        """Xiao-et-al-style split: halves as close to uniform as possible.

        Candidate splits are an equi-width grid of positions; a
        candidate's utility is how internally uniform each resulting half
        would be, measured by the mass balance around each half's own
        midpoint: ``-(|c1 - c2| + |c3 - c4|)`` where ``c1, c2`` are the
        left half's two quarter-counts and ``c3, c4`` the right half's.
        Adding or removing one tuple changes exactly one quarter-count by
        one, so the utility's sensitivity is 1.
        """
        lo = rect.x_lo if axis == 0 else rect.y_lo
        hi = rect.x_hi if axis == 0 else rect.y_hi
        if points.shape[0] == 0 or split_epsilon <= 0.0:
            return (lo + hi) / 2.0
        candidates = np.linspace(lo, hi, self._UNIFORMITY_CANDIDATES + 2)[1:-1]
        coordinates = np.sort(points[:, axis])
        left_mid = (lo + candidates) / 2.0
        right_mid = (candidates + hi) / 2.0
        c1 = np.searchsorted(coordinates, left_mid)
        c12 = np.searchsorted(coordinates, candidates)
        c123 = np.searchsorted(coordinates, right_mid)
        total = coordinates.size
        utilities = -(
            np.abs(c1 - (c12 - c1)) + np.abs((c123 - c12) - (total - c123))
        )
        index = exponential_mechanism(
            utilities.astype(float), split_epsilon, rng, sensitivity=1.0
        )
        return float(candidates[index])


def _axis_split(rect: Rect, axis: int, split: float) -> list[Rect]:
    """Split a rectangle into two along the given axis at ``split``."""
    if axis == 0:
        return [
            Rect(rect.x_lo, rect.y_lo, split, rect.y_hi),
            Rect(split, rect.y_lo, rect.x_hi, rect.y_hi),
        ]
    return [
        Rect(rect.x_lo, rect.y_lo, rect.x_hi, split),
        Rect(rect.x_lo, split, rect.x_hi, rect.y_hi),
    ]


def _quadrant_split(rect: Rect) -> list[Rect]:
    """Split a rectangle into its four midpoint quadrants."""
    cx, cy = rect.center
    return [
        Rect(rect.x_lo, rect.y_lo, cx, cy),
        Rect(cx, rect.y_lo, rect.x_hi, cy),
        Rect(rect.x_lo, cy, cx, rect.y_hi),
        Rect(cx, cy, rect.x_hi, rect.y_hi),
    ]


class KDStandardBuilder(KDTreeBuilder):
    """The ``Kst`` baseline: pure KD-tree, uniform budget, no inference."""

    name = "KD-standard"

    def __init__(self, depth: int | None = None, median_fraction: float = 0.25):
        super().__init__(
            depth=depth,
            quadtree_levels=0,
            median_fraction=median_fraction,
            geometric_budget=False,
            constrained_inference=False,
        )

    def label(self) -> str:
        return "Kst"


class KDHybridBuilder(KDTreeBuilder):
    """The ``Khy`` baseline: quadtree top, KD bottom, geometric budget, inference."""

    name = "KD-hybrid"

    def __init__(
        self,
        depth: int | None = None,
        quadtree_levels: int = 4,
        median_fraction: float = 0.15,
    ):
        super().__init__(
            depth=depth,
            quadtree_levels=quadtree_levels,
            median_fraction=median_fraction,
            geometric_budget=True,
            constrained_inference=True,
        )

    def label(self) -> str:
        return "Khy"
