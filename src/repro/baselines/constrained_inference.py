"""Constrained inference for hierarchical noisy counts (Hay et al., VLDB 2010).

A hierarchy measures each region at several levels: a node's true count
equals the sum of its children's true counts, but the *noisy* counts are
mutually inconsistent.  Constrained inference computes the least-squares
estimate that (a) is consistent on the tree and (b) has minimum variance
among linear unbiased estimators.

This module implements the general two-pass algorithm for arbitrary trees
and **heterogeneous noise variances** (needed because KD-hybrid allocates
budget geometrically across levels, so each level has a different variance):

* **Upward pass** — compute ``z[v]``, the best estimate of ``v``'s count
  using only measurements in ``v``'s subtree, by inverse-variance weighting
  of ``v``'s own measurement against the sum of its children's ``z`` values.
* **Downward pass** — set ``u[root] = z[root]`` and push each node's final
  estimate down, distributing the residual between a parent and its
  children proportionally to the children's ``z``-variances (which yields
  the exact weighted-least-squares solution on trees).

Nodes without a measurement of their own (``variance = inf``) are handled
naturally: their ``z`` is just the children's sum.

Two implementations share those passes:

* :func:`infer_tree` — the recursive reference over a
  :class:`CountNode` object graph, one Python call per node.
* :func:`infer_level_order` — the production array kernel over the flat
  BFS-level-order layout of :class:`~repro.baselines.tree.TreeArrays`
  (noisy counts, variances, CSR child offsets, level offsets).  Each pass
  walks the *levels*, not the nodes: children sums are gathered per
  parent with ``child_offsets[v] + arange(k)`` arithmetic grouped by
  child count, so one level costs a fixed number of numpy calls.  The
  per-parent gather sums use the same sequential left-to-right addition
  as the reference's Python ``sum`` (numpy only switches to pairwise
  blocking above 128 addends; fan-outs here are 2 or 4), so the result
  is bit-identical to :func:`infer_tree` on the same tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CountNode", "infer_tree", "infer_level_order"]


@dataclass
class CountNode:
    """A node in a hierarchy of noisy counts.

    Attributes
    ----------
    noisy_count:
        The node's own Laplace-noised measurement, or ``None`` when this
        node was not measured (e.g. internal KD nodes whose budget was spent
        elsewhere).
    variance:
        Variance of ``noisy_count`` (``2 / eps_v^2`` for the Laplace
        mechanism).  Ignored when ``noisy_count`` is ``None``.
    children:
        Sub-nodes whose true counts sum to this node's true count.
    inferred_count:
        Output slot: the consistent least-squares estimate, populated by
        :func:`infer_tree`.
    """

    noisy_count: float | None
    variance: float = math.inf
    children: list["CountNode"] = field(default_factory=list)
    inferred_count: float = 0.0

    # Internal two-pass state.
    _z: float = field(default=0.0, repr=False)
    _z_variance: float = field(default=math.inf, repr=False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return 1 + sum(child.subtree_size() for child in self.children)

    def leaves(self) -> list["CountNode"]:
        """All leaf nodes, in left-to-right order."""
        if self.is_leaf:
            return [self]
        collected: list[CountNode] = []
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                collected.append(node)
            else:
                stack.extend(reversed(node.children))
        return collected


def _combine(
    own_count: float | None,
    own_variance: float,
    children_sum: float,
    children_variance: float,
) -> tuple[float, float]:
    """Inverse-variance combination of a node's two count estimates."""
    has_own = own_count is not None and math.isfinite(own_variance)
    has_children = math.isfinite(children_variance)
    if has_own and has_children:
        weight_own = children_variance / (own_variance + children_variance)
        combined = weight_own * own_count + (1.0 - weight_own) * children_sum
        variance = own_variance * children_variance / (own_variance + children_variance)
        return combined, variance
    if has_own:
        return float(own_count), own_variance
    if has_children:
        return children_sum, children_variance
    raise ValueError(
        "node has neither a measurement nor measured descendants; "
        "its count is unidentifiable"
    )


def _upward(node: CountNode) -> None:
    """Post-order pass computing subtree-only estimates z and their variances."""
    stack: list[tuple[CountNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if current.is_leaf:
            if current.noisy_count is None or not math.isfinite(current.variance):
                raise ValueError("leaf nodes must carry a measurement")
            current._z = float(current.noisy_count)
            current._z_variance = current.variance
            continue
        if not expanded:
            stack.append((current, True))
            for child in current.children:
                stack.append((child, False))
            continue
        children_sum = sum(child._z for child in current.children)
        children_variance = sum(child._z_variance for child in current.children)
        current._z, current._z_variance = _combine(
            current.noisy_count, current.variance, children_sum, children_variance
        )


def _downward(root: CountNode) -> None:
    """Pre-order pass distributing residuals from parents to children."""
    root.inferred_count = root._z
    stack = [root]
    while stack:
        parent = stack.pop()
        if parent.is_leaf:
            continue
        children = parent.children
        z_sum = sum(child._z for child in children)
        variance_sum = sum(child._z_variance for child in children)
        residual = parent.inferred_count - z_sum
        for child in children:
            share = child._z_variance / variance_sum if variance_sum > 0 else (
                1.0 / len(children)
            )
            child.inferred_count = child._z + share * residual
            stack.append(child)


def infer_tree(root: CountNode) -> None:
    """Run constrained inference in place on the tree rooted at ``root``.

    After the call every node's :attr:`CountNode.inferred_count` holds the
    consistent weighted-least-squares estimate: each parent's inferred count
    equals the sum of its children's, and leaves have no more variance than
    their raw measurements.
    """
    _upward(root)
    _downward(root)


# ----------------------------------------------------------------------
# Flat level-order kernel
# ----------------------------------------------------------------------


def _children_sums(
    values_pair: "tuple[np.ndarray, np.ndarray]",
    child_offsets: np.ndarray,
    n_children: np.ndarray,
    parents: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-parent sums of two value arrays over each parent's child range.

    Parents are grouped by fan-out so each group is one ``(g, k)`` gather
    index, shared by both value arrays, summed along the last axis.
    ``k`` never exceeds numpy's pairwise blocking threshold in practice
    (quadtree fan-out is 4), so the addition order matches a sequential
    Python ``sum`` bit for bit.
    """
    first, second = values_pair
    out_first = np.empty(parents.size)
    out_second = np.empty(parents.size)
    fan_outs = n_children[parents]
    for k in np.unique(fan_outs):
        group = fan_outs == k
        rows = parents[group]
        gather = child_offsets[rows][:, None] + np.arange(k)[None, :]
        out_first[group] = first[gather].sum(axis=1)
        out_second[group] = second[gather].sum(axis=1)
    return out_first, out_second


def infer_level_order(
    noisy_counts: np.ndarray,
    variances: np.ndarray,
    child_offsets: np.ndarray,
    level_offsets: np.ndarray,
) -> np.ndarray:
    """Constrained inference over a flat BFS-level-order tree.

    Array counterpart of :func:`infer_tree`: ``noisy_counts[v]`` is node
    ``v``'s measurement (``NaN`` when unmeasured), ``variances[v]`` its
    noise variance (``inf`` treated as unmeasured, like the reference),
    ``child_offsets`` the CSR child ranges (children of ``v`` are nodes
    ``child_offsets[v]:child_offsets[v + 1]``), and ``level_offsets`` the
    per-level slab bounds (level ``l`` is ``level_offsets[l]:
    level_offsets[l + 1]``; node 0 is the root).  Returns the consistent
    weighted-least-squares estimate per node, bit-identical to running
    :func:`infer_tree` on the equivalent :class:`CountNode` graph.
    """
    noisy_counts = np.asarray(noisy_counts, dtype=float)
    variances = np.asarray(variances, dtype=float)
    child_offsets = np.asarray(child_offsets, dtype=np.int64)
    level_offsets = np.asarray(level_offsets, dtype=np.int64)
    n = noisy_counts.size
    if n == 0:
        raise ValueError("tree must have at least one node")
    n_children = child_offsets[1:] - child_offsets[:-1]
    is_leaf = n_children == 0
    measured = ~np.isnan(noisy_counts) & np.isfinite(variances)
    if not measured[is_leaf].all():
        raise ValueError("leaf nodes must carry a measurement")

    z = np.empty(n)
    z_variance = np.empty(n)
    z[is_leaf] = noisy_counts[is_leaf]
    z_variance[is_leaf] = variances[is_leaf]

    n_levels = level_offsets.size - 1
    internal_by_level: list[np.ndarray] = [
        np.flatnonzero(~is_leaf[level_offsets[l] : level_offsets[l + 1]])
        + level_offsets[l]
        for l in range(n_levels)
    ]

    # Upward pass, deepest internal level first: combine each parent's own
    # measurement with its children's z by inverse-variance weighting —
    # the same three-way case split as the reference's _combine.  The
    # per-level children sums are kept: the downward pass distributes
    # residuals against exactly these values (z is not modified between
    # the passes), so it never re-gathers them.
    sums_by_level: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for level in range(n_levels - 2, -1, -1):
        parents = internal_by_level[level]
        if parents.size == 0:
            continue
        children_sum, children_variance = _children_sums(
            (z, z_variance), child_offsets, n_children, parents
        )
        sums_by_level[level] = (children_sum, children_variance)
        own = noisy_counts[parents]
        own_variance = variances[parents]
        has_own = measured[parents]
        has_children = np.isfinite(children_variance)
        neither = ~has_own & ~has_children
        if neither.any():
            raise ValueError(
                "node has neither a measurement nor measured descendants; "
                "its count is unidentifiable"
            )
        combined = np.where(has_own, own, children_sum)
        combined_variance = np.where(has_own, own_variance, children_variance)
        both = has_own & has_children
        if both.any():
            weight_own = children_variance[both] / (
                own_variance[both] + children_variance[both]
            )
            combined[both] = (
                weight_own * own[both] + (1.0 - weight_own) * children_sum[both]
            )
            combined_variance[both] = (
                own_variance[both]
                * children_variance[both]
                / (own_variance[both] + children_variance[both])
            )
        z[parents] = combined
        z_variance[parents] = combined_variance

    # Downward pass, root first: each parent's residual against its
    # children's z-sum is distributed proportionally to z-variances
    # (equal shares when the variance sum is zero, like the reference).
    inferred = np.empty(n)
    inferred[0] = z[0]
    for level in range(n_levels - 1):
        parents = internal_by_level[level]
        if parents.size == 0:
            continue
        z_sum, variance_sum = sums_by_level[level]
        residual = inferred[parents] - z_sum
        fan_out = n_children[parents]
        # Children of level-l parents are exactly the level-(l+1) slab, in
        # order (leaves contribute empty ranges), so the repeat lines up.
        c_lo, c_hi = level_offsets[level + 1], level_offsets[level + 2]
        residual_rep = np.repeat(residual, fan_out)
        variance_sum_rep = np.repeat(variance_sum, fan_out)
        fan_out_rep = np.repeat(fan_out, fan_out)
        z_child = z[c_lo:c_hi]
        positive = variance_sum_rep > 0
        share = np.where(
            positive,
            z_variance[c_lo:c_hi] / np.where(positive, variance_sum_rep, 1.0),
            1.0 / fan_out_rep,
        )
        inferred[c_lo:c_hi] = z_child + share * residual_rep
    return inferred
