"""Constrained inference for hierarchical noisy counts (Hay et al., VLDB 2010).

A hierarchy measures each region at several levels: a node's true count
equals the sum of its children's true counts, but the *noisy* counts are
mutually inconsistent.  Constrained inference computes the least-squares
estimate that (a) is consistent on the tree and (b) has minimum variance
among linear unbiased estimators.

This module implements the general two-pass algorithm for arbitrary trees
and **heterogeneous noise variances** (needed because KD-hybrid allocates
budget geometrically across levels, so each level has a different variance):

* **Upward pass** — compute ``z[v]``, the best estimate of ``v``'s count
  using only measurements in ``v``'s subtree, by inverse-variance weighting
  of ``v``'s own measurement against the sum of its children's ``z`` values.
* **Downward pass** — set ``u[root] = z[root]`` and push each node's final
  estimate down, distributing the residual between a parent and its
  children proportionally to the children's ``z``-variances (which yields
  the exact weighted-least-squares solution on trees).

Nodes without a measurement of their own (``variance = inf``) are handled
naturally: their ``z`` is just the children's sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CountNode", "infer_tree"]


@dataclass
class CountNode:
    """A node in a hierarchy of noisy counts.

    Attributes
    ----------
    noisy_count:
        The node's own Laplace-noised measurement, or ``None`` when this
        node was not measured (e.g. internal KD nodes whose budget was spent
        elsewhere).
    variance:
        Variance of ``noisy_count`` (``2 / eps_v^2`` for the Laplace
        mechanism).  Ignored when ``noisy_count`` is ``None``.
    children:
        Sub-nodes whose true counts sum to this node's true count.
    inferred_count:
        Output slot: the consistent least-squares estimate, populated by
        :func:`infer_tree`.
    """

    noisy_count: float | None
    variance: float = math.inf
    children: list["CountNode"] = field(default_factory=list)
    inferred_count: float = 0.0

    # Internal two-pass state.
    _z: float = field(default=0.0, repr=False)
    _z_variance: float = field(default=math.inf, repr=False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return 1 + sum(child.subtree_size() for child in self.children)

    def leaves(self) -> list["CountNode"]:
        """All leaf nodes, in left-to-right order."""
        if self.is_leaf:
            return [self]
        collected: list[CountNode] = []
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                collected.append(node)
            else:
                stack.extend(reversed(node.children))
        return collected


def _combine(
    own_count: float | None,
    own_variance: float,
    children_sum: float,
    children_variance: float,
) -> tuple[float, float]:
    """Inverse-variance combination of a node's two count estimates."""
    has_own = own_count is not None and math.isfinite(own_variance)
    has_children = math.isfinite(children_variance)
    if has_own and has_children:
        weight_own = children_variance / (own_variance + children_variance)
        combined = weight_own * own_count + (1.0 - weight_own) * children_sum
        variance = own_variance * children_variance / (own_variance + children_variance)
        return combined, variance
    if has_own:
        return float(own_count), own_variance
    if has_children:
        return children_sum, children_variance
    raise ValueError(
        "node has neither a measurement nor measured descendants; "
        "its count is unidentifiable"
    )


def _upward(node: CountNode) -> None:
    """Post-order pass computing subtree-only estimates z and their variances."""
    stack: list[tuple[CountNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if current.is_leaf:
            if current.noisy_count is None or not math.isfinite(current.variance):
                raise ValueError("leaf nodes must carry a measurement")
            current._z = float(current.noisy_count)
            current._z_variance = current.variance
            continue
        if not expanded:
            stack.append((current, True))
            for child in current.children:
                stack.append((child, False))
            continue
        children_sum = sum(child._z for child in current.children)
        children_variance = sum(child._z_variance for child in current.children)
        current._z, current._z_variance = _combine(
            current.noisy_count, current.variance, children_sum, children_variance
        )


def _downward(root: CountNode) -> None:
    """Pre-order pass distributing residuals from parents to children."""
    root.inferred_count = root._z
    stack = [root]
    while stack:
        parent = stack.pop()
        if parent.is_leaf:
            continue
        children = parent.children
        z_sum = sum(child._z for child in children)
        variance_sum = sum(child._z_variance for child in children)
        residual = parent.inferred_count - z_sum
        for child in children:
            share = child._z_variance / variance_sum if variance_sum > 0 else (
                1.0 / len(children)
            )
            child.inferred_count = child._z + share * residual
            stack.append(child)


def infer_tree(root: CountNode) -> None:
    """Run constrained inference in place on the tree rooted at ``root``.

    After the call every node's :attr:`CountNode.inferred_count` holds the
    consistent weighted-least-squares estimate: each parent's inferred count
    equals the sum of its children's, and leaves have no more variance than
    their raw measurements.
    """
    _upward(root)
    _downward(root)
