"""Trivial baselines used for calibration and sanity checks.

* :class:`NoisyTotalBuilder` — the degenerate ``1 x 1`` grid: release a
  single noisy total and answer every query by area scaling.  This is the
  paper's "extreme c" reference point: optimal for perfectly uniform data,
  terrible otherwise.
* :class:`ExactGridBuilder` — a *non-private* exact grid histogram.  It
  isolates pure non-uniformity error (zero noise error), which the tests
  and ablation benches use to validate the error model.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.grid import GridLayout
from repro.core.synopsis import SynopsisBuilder
from repro.core.uniform_grid import UniformGridBuilder, UniformGridSynopsis
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng

__all__ = ["NoisyTotalBuilder", "ExactGridBuilder"]


class NoisyTotalBuilder(UniformGridBuilder):
    """The 1 x 1 grid: a single noisy count plus the uniformity assumption."""

    name = "NoisyTotal"

    def __init__(self):
        super().__init__(grid_size=1)

    def label(self) -> str:
        return "U1"


class ExactGridBuilder(SynopsisBuilder):
    """A non-private exact histogram (noise error = 0).

    **Not differentially private** — for analysis only.  The ``epsilon``
    argument is recorded but no noise is added and no budget is spent.
    """

    name = "ExactGrid"

    def __init__(self, grid_size: int):
        if grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {grid_size}")
        self.grid_size = grid_size

    def label(self) -> str:
        return f"Exact{self.grid_size}"

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> UniformGridSynopsis:
        ensure_rng(rng)
        layout = GridLayout(dataset.domain, self.grid_size)
        exact = layout.histogram(dataset.points)
        return UniformGridSynopsis(dataset.domain, epsilon, layout, exact)
