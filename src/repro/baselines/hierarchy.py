"""Grid hierarchies ``H_{b,d}`` — the paper's Figure 3 baseline.

``H_{b,d}`` builds ``d`` nested equi-width grids over the domain, each
refining the previous by a ``b x b`` branching factor: level sizes are
``m / b^(d-1), ..., m / b, m`` where ``m`` is the leaf grid size.  The
budget is split uniformly across levels, each level's histogram is released
with Laplace noise (one parallel-composition spend per level), and
constrained inference reconciles the levels.

After inference the hierarchy is exactly consistent, so queries can be
answered from the leaf grid alone (summing leaves reproduces every interior
count); the leaf grid is shared with UG's query machinery.

This implementation is array-based rather than node-based: with uniform
branching and one measurement per node at every level, the two inference
passes reduce to per-level scalar-weight updates on count matrices, which
is orders of magnitude faster than a million-node object tree.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D
from repro.core.grid import GridLayout
from repro.core.guidelines import DEFAULT_C, guideline1_grid_size
from repro.core.synopsis import SynopsisBuilder
from repro.core.uniform_grid import UniformGridSynopsis
from repro.privacy.budget import PrivacyBudget
from repro.privacy.composition import uniform_allocation
from repro.privacy.mechanisms import ensure_rng, laplace_scale

__all__ = [
    "HierarchicalGridBuilder",
    "HierarchicalGridSynopsis",
    "block_sum",
    "block_repeat",
    "hierarchy_inference",
]


def block_sum(matrix: np.ndarray, factor: int) -> np.ndarray:
    """Sum non-overlapping ``factor x factor`` blocks of a 2-D array.

    The array's dimensions must be divisible by ``factor``.
    """
    matrix = np.asarray(matrix, dtype=float)
    rows, cols = matrix.shape
    if rows % factor or cols % factor:
        raise ValueError(
            f"shape {matrix.shape} not divisible by block factor {factor}"
        )
    return (
        matrix.reshape(rows // factor, factor, cols // factor, factor)
        .sum(axis=(1, 3))
    )


def block_repeat(matrix: np.ndarray, factor: int) -> np.ndarray:
    """Expand each entry into a ``factor x factor`` block (inverse shape of block_sum)."""
    return np.repeat(np.repeat(matrix, factor, axis=0), factor, axis=1)


def hierarchy_inference(
    noisy_levels: list[np.ndarray],
    variances: list[float],
    branching: int,
) -> list[np.ndarray]:
    """Constrained inference over a stack of nested grid histograms.

    ``noisy_levels[0]`` is the coarsest grid, each subsequent level refines
    by ``branching`` per axis.  ``variances[l]`` is the per-cell noise
    variance at level ``l``.  Returns the consistent weighted-least-squares
    estimates level by level (the array form of Hay et al.'s two passes;
    weights are scalar per level because every node at a level shares the
    same variance).
    """
    if len(noisy_levels) != len(variances):
        raise ValueError("one variance per level required")
    depth = len(noisy_levels)
    if depth == 0:
        raise ValueError("at least one level required")
    k = branching * branching  # children per node

    # Upward pass: z[l] = best estimate from level l's own measurement and
    # the (already combined) levels below it.
    z_levels: list[np.ndarray] = [None] * depth  # type: ignore[list-item]
    z_variances: list[float] = [0.0] * depth
    z_levels[depth - 1] = np.asarray(noisy_levels[depth - 1], dtype=float)
    z_variances[depth - 1] = variances[depth - 1]
    for level in range(depth - 2, -1, -1):
        child_sum = block_sum(z_levels[level + 1], branching)
        child_variance = k * z_variances[level + 1]
        own_variance = variances[level]
        weight_own = child_variance / (own_variance + child_variance)
        z_levels[level] = (
            weight_own * np.asarray(noisy_levels[level], dtype=float)
            + (1.0 - weight_own) * child_sum
        )
        z_variances[level] = own_variance * child_variance / (
            own_variance + child_variance
        )

    # Downward pass: distribute each parent's residual equally among its
    # children (equal z-variances within a level make the shares uniform).
    inferred: list[np.ndarray] = [None] * depth  # type: ignore[list-item]
    inferred[0] = z_levels[0]
    for level in range(1, depth):
        parent_residual = inferred[level - 1] - block_sum(z_levels[level], branching)
        inferred[level] = z_levels[level] + block_repeat(parent_residual, branching) / k
    return inferred


class HierarchicalGridSynopsis(UniformGridSynopsis):
    """The released state of ``H_{b,d}``: the full level stack, flat.

    The inferred leaf grid (held by the :class:`UniformGridSynopsis`
    base) answers queries through the shared prefix-sum engine — after
    constrained inference the hierarchy is exactly consistent, so the
    leaves lose nothing.  The release additionally keeps the *raw* level
    stack in CSR form — per-level sizes, one flat measurement array with
    level offsets, one variance per level — so the measurements survive
    serialization, inference is re-runnable (:meth:`infer_leaf_counts`),
    and the stack can be lowered onto the generic tree kernel
    (:meth:`to_tree_arrays`) where its uniform fan-out tree fits.
    """

    def __init__(
        self,
        domain: Domain2D,
        epsilon: float,
        layout: GridLayout,
        leaf_counts: np.ndarray,
        branching: int,
        level_sizes: list[int],
        measurements: np.ndarray,
        level_variances: np.ndarray,
    ):
        super().__init__(domain, epsilon, layout, leaf_counts)
        branching = int(branching)
        level_sizes = [int(size) for size in level_sizes]
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        if not level_sizes:
            raise ValueError("at least one level required")
        for coarse, fine in zip(level_sizes, level_sizes[1:]):
            if fine != coarse * branching:
                raise ValueError(
                    f"level sizes {level_sizes} do not refine by {branching}"
                )
        if (level_sizes[-1], level_sizes[-1]) != layout.shape:
            raise ValueError(
                f"finest level {level_sizes[-1]} does not match leaf grid "
                f"{layout.shape}"
            )
        offsets = np.zeros(len(level_sizes) + 1, dtype=np.int64)
        np.cumsum([size * size for size in level_sizes], out=offsets[1:])
        measurements = np.asarray(measurements, dtype=float)
        if measurements.shape != (offsets[-1],):
            raise ValueError(
                f"measurements shape {measurements.shape} != ({offsets[-1]},)"
            )
        level_variances = np.asarray(level_variances, dtype=float)
        if level_variances.shape != (len(level_sizes),):
            raise ValueError("one variance per level required")
        self._branching = branching
        self._level_sizes = level_sizes
        self._level_offsets = offsets
        self._measurements = measurements
        self._level_variances = level_variances

    @property
    def branching(self) -> int:
        return self._branching

    @property
    def depth(self) -> int:
        return len(self._level_sizes)

    @property
    def level_sizes(self) -> list[int]:
        """Grid sizes, coarsest to finest."""
        return list(self._level_sizes)

    @property
    def level_offsets(self) -> np.ndarray:
        """CSR bounds: level ``l`` occupies ``measurements[off[l]:off[l+1]]``."""
        return self._level_offsets

    @property
    def measurements(self) -> np.ndarray:
        """All raw noisy level histograms, flattened coarsest-first."""
        return self._measurements

    @property
    def level_variances(self) -> np.ndarray:
        """Per-cell measurement variance of each level."""
        return self._level_variances

    def level_measurements(self, level: int) -> np.ndarray:
        """The raw noisy ``s x s`` histogram of one level (a view)."""
        size = self._level_sizes[level]
        lo, hi = self._level_offsets[level], self._level_offsets[level + 1]
        return self._measurements[lo:hi].reshape(size, size)

    def infer_leaf_counts(self) -> np.ndarray:
        """Re-run constrained inference over the stored measurement stack.

        Bit-identical to the counts the builder released (same inputs
        through the same :func:`hierarchy_inference`); serialization
        round-trip tests lean on this.
        """
        if self.depth == 1:
            return self.level_measurements(0).copy()
        noisy_levels = [self.level_measurements(level) for level in range(self.depth)]
        inferred = hierarchy_inference(
            noisy_levels, [float(v) for v in self._level_variances], self._branching
        )
        return inferred[-1]

    def tree_level_orders(self) -> list[np.ndarray]:
        """Per-level record orders used by :meth:`to_tree_arrays`.

        The tree layout requires siblings contiguous under their parent,
        so each level is emitted in hierarchical order: children grouped
        by their parent's record position, each ``b x b`` block row-major
        inside its group.  ``orders[l][q]`` is the row-major flat grid
        index (``row * size + col``) of the cell at record position ``q``
        within level ``l`` — so a per-level tree slab maps back to the
        grid with ``grid.ravel()[orders[l]] = slab``.
        """
        b = self._branching
        orders = [np.arange(self._level_sizes[0] ** 2, dtype=np.int64)]
        block = np.arange(b * b, dtype=np.int64)
        d_row, d_col = block // b, block % b
        for level in range(1, self.depth):
            coarser = self._level_sizes[level - 1]
            size = self._level_sizes[level]
            parent_row = orders[level - 1] // coarser
            parent_col = orders[level - 1] % coarser
            row = (parent_row[:, None] * b + d_row[None, :]).ravel()
            col = (parent_col[:, None] * b + d_col[None, :]).ravel()
            orders.append(row * size + col)
        return orders

    def to_tree_arrays(self):
        """Lower the level stack onto the generic flat tree kernel.

        Returns a :class:`~repro.baselines.tree.TreeArrays` whose root is
        a *virtual* unmeasured node (NaN measurement, infinite variance)
        covering the domain, with the coarsest grid as its children and
        each finer cell a child of the cell it refines.  Within a level,
        nodes follow :meth:`tree_level_orders` (siblings contiguous).
        Running :func:`~repro.baselines.tree.apply_tree_inference_arrays`
        on it reproduces :func:`hierarchy_inference` (up to float
        association: the tree kernel gathers child sums sequentially
        while ``block_sum`` reduces with pairwise axis sums).
        """
        from repro.baselines.tree import TreeArrays

        bounds = self.domain.bounds
        b = self._branching
        orders = self.tree_level_orders()
        total = 1 + int(self._level_offsets[-1])
        rects = np.empty((total, 4))
        depths = np.empty(total, dtype=np.int64)
        parents = np.empty(total, dtype=np.int64)
        noisy = np.empty(total)
        variances = np.empty(total)
        rects[0] = (bounds.x_lo, bounds.y_lo, bounds.x_hi, bounds.y_hi)
        depths[0], parents[0] = 0, -1
        noisy[0], variances[0] = np.nan, np.inf

        for level, size in enumerate(self._level_sizes):
            lo = 1 + int(self._level_offsets[level])
            hi = 1 + int(self._level_offsets[level + 1])
            order = orders[level]
            row, col = order // size, order % size
            # Cell (row, col) spans row-major axis-0 = x, axis-1 = y,
            # matching GridLayout's histogram orientation.
            rects[lo:hi, 0] = bounds.x_lo + self.domain.width * row / size
            rects[lo:hi, 2] = bounds.x_lo + self.domain.width * (row + 1) / size
            rects[lo:hi, 1] = bounds.y_lo + self.domain.height * col / size
            rects[lo:hi, 3] = bounds.y_lo + self.domain.height * (col + 1) / size
            depths[lo:hi] = level + 1
            noisy[lo:hi] = self._measurements[lo - 1 : hi - 1][order]
            variances[lo:hi] = self._level_variances[level]
            if level == 0:
                parents[lo:hi] = 0
            else:
                # Hierarchical order means children of the parent at
                # record position q fill positions q*b^2 .. (q+1)*b^2 - 1.
                n_parents = self._level_sizes[level - 1] ** 2
                parents[lo:hi] = 1 + int(self._level_offsets[level - 1]) + (
                    np.repeat(np.arange(n_parents, dtype=np.int64), b * b)
                )
        return TreeArrays.from_records(rects, depths, parents, noisy, variances)


class HierarchicalGridBuilder(SynopsisBuilder):
    """Builds ``H_{b,d}``: a ``d``-level hierarchy over an ``m x m`` leaf grid.

    Parameters
    ----------
    leaf_grid_size:
        The finest grid size ``m``; must be divisible by
        ``branching^(depth-1)``.  ``None`` applies Guideline 1 and rounds
        up to the next multiple of ``branching^(depth-1)`` (needed by the
        zero-argument service factory).
    branching:
        Per-axis branching factor ``b`` between consecutive levels.
    depth:
        Number of levels ``d`` (``depth = 1`` degenerates to UG at ``m``).
    """

    name = "Hierarchy"

    def __init__(
        self,
        leaf_grid_size: int | None = None,
        branching: int = 2,
        depth: int = 2,
        c: float = DEFAULT_C,
    ):
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if leaf_grid_size is not None:
            if leaf_grid_size < 1:
                raise ValueError(
                    f"leaf_grid_size must be >= 1, got {leaf_grid_size}"
                )
            if leaf_grid_size % (branching ** (depth - 1)):
                raise ValueError(
                    f"leaf grid {leaf_grid_size} not divisible by "
                    f"branching^(depth-1) = {branching ** (depth - 1)}"
                )
        self.leaf_grid_size = leaf_grid_size
        self.branching = branching
        self.depth = depth
        self.c = c

    def label(self) -> str:
        return f"H{self.branching},{self.depth}"

    def _resolve_leaf_size(self, dataset: GeoDataset, epsilon: float) -> int:
        if self.leaf_grid_size is not None:
            return self.leaf_grid_size
        guess = guideline1_grid_size(dataset.size, epsilon, self.c)
        coarsest = self.branching ** (self.depth - 1)
        return max(coarsest, -(-guess // coarsest) * coarsest)

    def level_sizes(self, leaf_grid_size: int | None = None) -> list[int]:
        """Grid sizes from coarsest to finest, e.g. H(2,3) over 360: [90, 180, 360]."""
        m = self.leaf_grid_size if leaf_grid_size is None else leaf_grid_size
        if m is None:
            raise ValueError(
                "leaf grid size is data-dependent (Guideline 1); pass it in"
            )
        return [
            m // (self.branching ** (self.depth - 1 - level))
            for level in range(self.depth)
        ]

    def _measure_levels(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget,
        leaf_grid_size: int,
    ) -> tuple[GridLayout, list[np.ndarray], list[float]]:
        """The shared measurement stage: one noisy histogram per level.

        ``fit`` and ``fit_reference`` both run exactly this sequence, so
        they consume the same noise stream and release bit-identical
        counts.
        """
        leaf_layout = GridLayout(dataset.domain, leaf_grid_size)
        exact_leaf = leaf_layout.histogram(dataset.points)

        level_epsilons = uniform_allocation(epsilon, self.depth)
        sizes = self.level_sizes(leaf_grid_size)

        noisy_levels: list[np.ndarray] = []
        variances: list[float] = []
        for level, (size, level_eps) in enumerate(zip(sizes, level_epsilons)):
            budget.spend(level_eps, f"level {level} counts (size {size})")
            factor = leaf_grid_size // size
            exact = block_sum(exact_leaf, factor) if factor > 1 else exact_leaf
            scale = laplace_scale(1.0, level_eps)
            noisy_levels.append(exact + rng.laplace(0.0, scale, size=exact.shape))
            variances.append(2.0 * scale**2)
        return leaf_layout, noisy_levels, variances

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> HierarchicalGridSynopsis:
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)
        leaf_grid_size = self._resolve_leaf_size(dataset, epsilon)

        leaf_layout, noisy_levels, variances = self._measure_levels(
            dataset, epsilon, rng, budget, leaf_grid_size
        )

        if self.depth == 1:
            leaf_counts = noisy_levels[0]
        else:
            inferred = hierarchy_inference(noisy_levels, variances, self.branching)
            leaf_counts = inferred[-1]

        # Consistency means leaf sums reproduce every interior estimate,
        # so queries run off the leaf grid alone; the raw stack rides
        # along for serialization and the tree-kernel bridge.
        return HierarchicalGridSynopsis(
            dataset.domain,
            epsilon,
            leaf_layout,
            leaf_counts,
            self.branching,
            self.level_sizes(leaf_grid_size),
            np.concatenate([level.ravel() for level in noisy_levels]),
            np.asarray(variances),
        )

    def fit_reference(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> UniformGridSynopsis:
        """The retained leaf-grid-only reference build.

        Identical measurement and inference sequence as :meth:`fit`, but
        releases only the inferred leaf grid as a plain
        :class:`UniformGridSynopsis`; the property suite pins
        :meth:`fit`'s counts bit-identical to these.
        """
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)
        leaf_grid_size = self._resolve_leaf_size(dataset, epsilon)

        leaf_layout, noisy_levels, variances = self._measure_levels(
            dataset, epsilon, rng, budget, leaf_grid_size
        )

        if self.depth == 1:
            leaf_counts = noisy_levels[0]
        else:
            inferred = hierarchy_inference(noisy_levels, variances, self.branching)
            leaf_counts = inferred[-1]

        return UniformGridSynopsis(dataset.domain, epsilon, leaf_layout, leaf_counts)


def _register_engine() -> None:
    # The subclass would inherit UniformGridSynopsis's registration via
    # the MRO walk; registering explicitly documents that the hierarchy
    # serves queries from its inferred leaf grid.
    from repro.queries.engine import (
        BatchQueryEngine,
        register_engine,
        register_engine_sealer,
    )

    register_engine(
        HierarchicalGridSynopsis,
        lambda synopsis: BatchQueryEngine(synopsis.layout, synopsis.counts),
    )
    register_engine_sealer(
        HierarchicalGridSynopsis,
        lambda synopsis: BatchQueryEngine.precompute(
            synopsis.layout, synopsis.counts
        ),
        lambda synopsis, slabs: BatchQueryEngine.from_slabs(
            synopsis.layout, slabs
        ),
    )


_register_engine()
