"""Grid hierarchies ``H_{b,d}`` — the paper's Figure 3 baseline.

``H_{b,d}`` builds ``d`` nested equi-width grids over the domain, each
refining the previous by a ``b x b`` branching factor: level sizes are
``m / b^(d-1), ..., m / b, m`` where ``m`` is the leaf grid size.  The
budget is split uniformly across levels, each level's histogram is released
with Laplace noise (one parallel-composition spend per level), and
constrained inference reconciles the levels.

After inference the hierarchy is exactly consistent, so queries can be
answered from the leaf grid alone (summing leaves reproduces every interior
count); the leaf grid is shared with UG's query machinery.

This implementation is array-based rather than node-based: with uniform
branching and one measurement per node at every level, the two inference
passes reduce to per-level scalar-weight updates on count matrices, which
is orders of magnitude faster than a million-node object tree.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.grid import GridLayout
from repro.core.synopsis import SynopsisBuilder
from repro.core.uniform_grid import UniformGridSynopsis
from repro.privacy.budget import PrivacyBudget
from repro.privacy.composition import uniform_allocation
from repro.privacy.mechanisms import ensure_rng, laplace_scale

__all__ = ["HierarchicalGridBuilder", "block_sum", "block_repeat", "hierarchy_inference"]


def block_sum(matrix: np.ndarray, factor: int) -> np.ndarray:
    """Sum non-overlapping ``factor x factor`` blocks of a 2-D array.

    The array's dimensions must be divisible by ``factor``.
    """
    matrix = np.asarray(matrix, dtype=float)
    rows, cols = matrix.shape
    if rows % factor or cols % factor:
        raise ValueError(
            f"shape {matrix.shape} not divisible by block factor {factor}"
        )
    return (
        matrix.reshape(rows // factor, factor, cols // factor, factor)
        .sum(axis=(1, 3))
    )


def block_repeat(matrix: np.ndarray, factor: int) -> np.ndarray:
    """Expand each entry into a ``factor x factor`` block (inverse shape of block_sum)."""
    return np.repeat(np.repeat(matrix, factor, axis=0), factor, axis=1)


def hierarchy_inference(
    noisy_levels: list[np.ndarray],
    variances: list[float],
    branching: int,
) -> list[np.ndarray]:
    """Constrained inference over a stack of nested grid histograms.

    ``noisy_levels[0]`` is the coarsest grid, each subsequent level refines
    by ``branching`` per axis.  ``variances[l]`` is the per-cell noise
    variance at level ``l``.  Returns the consistent weighted-least-squares
    estimates level by level (the array form of Hay et al.'s two passes;
    weights are scalar per level because every node at a level shares the
    same variance).
    """
    if len(noisy_levels) != len(variances):
        raise ValueError("one variance per level required")
    depth = len(noisy_levels)
    if depth == 0:
        raise ValueError("at least one level required")
    k = branching * branching  # children per node

    # Upward pass: z[l] = best estimate from level l's own measurement and
    # the (already combined) levels below it.
    z_levels: list[np.ndarray] = [None] * depth  # type: ignore[list-item]
    z_variances: list[float] = [0.0] * depth
    z_levels[depth - 1] = np.asarray(noisy_levels[depth - 1], dtype=float)
    z_variances[depth - 1] = variances[depth - 1]
    for level in range(depth - 2, -1, -1):
        child_sum = block_sum(z_levels[level + 1], branching)
        child_variance = k * z_variances[level + 1]
        own_variance = variances[level]
        weight_own = child_variance / (own_variance + child_variance)
        z_levels[level] = (
            weight_own * np.asarray(noisy_levels[level], dtype=float)
            + (1.0 - weight_own) * child_sum
        )
        z_variances[level] = own_variance * child_variance / (
            own_variance + child_variance
        )

    # Downward pass: distribute each parent's residual equally among its
    # children (equal z-variances within a level make the shares uniform).
    inferred: list[np.ndarray] = [None] * depth  # type: ignore[list-item]
    inferred[0] = z_levels[0]
    for level in range(1, depth):
        parent_residual = inferred[level - 1] - block_sum(z_levels[level], branching)
        inferred[level] = z_levels[level] + block_repeat(parent_residual, branching) / k
    return inferred


class HierarchicalGridBuilder(SynopsisBuilder):
    """Builds ``H_{b,d}``: a ``d``-level hierarchy over an ``m x m`` leaf grid.

    Parameters
    ----------
    leaf_grid_size:
        The finest grid size ``m``; must be divisible by
        ``branching^(depth-1)``.
    branching:
        Per-axis branching factor ``b`` between consecutive levels.
    depth:
        Number of levels ``d`` (``depth = 1`` degenerates to UG at ``m``).
    """

    name = "Hierarchy"

    def __init__(self, leaf_grid_size: int, branching: int = 2, depth: int = 2):
        if leaf_grid_size < 1:
            raise ValueError(f"leaf_grid_size must be >= 1, got {leaf_grid_size}")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if leaf_grid_size % (branching ** (depth - 1)):
            raise ValueError(
                f"leaf grid {leaf_grid_size} not divisible by "
                f"branching^(depth-1) = {branching ** (depth - 1)}"
            )
        self.leaf_grid_size = leaf_grid_size
        self.branching = branching
        self.depth = depth

    def label(self) -> str:
        return f"H{self.branching},{self.depth}"

    def level_sizes(self) -> list[int]:
        """Grid sizes from coarsest to finest, e.g. H(2,3) over 360: [90, 180, 360]."""
        return [
            self.leaf_grid_size // (self.branching ** (self.depth - 1 - level))
            for level in range(self.depth)
        ]

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> UniformGridSynopsis:
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)

        leaf_layout = GridLayout(dataset.domain, self.leaf_grid_size)
        exact_leaf = leaf_layout.histogram(dataset.points)

        level_epsilons = uniform_allocation(epsilon, self.depth)
        sizes = self.level_sizes()

        noisy_levels: list[np.ndarray] = []
        variances: list[float] = []
        for level, (size, level_eps) in enumerate(zip(sizes, level_epsilons)):
            budget.spend(level_eps, f"level {level} counts (size {size})")
            factor = self.leaf_grid_size // size
            exact = block_sum(exact_leaf, factor) if factor > 1 else exact_leaf
            scale = laplace_scale(1.0, level_eps)
            noisy_levels.append(exact + rng.laplace(0.0, scale, size=exact.shape))
            variances.append(2.0 * scale**2)

        if self.depth == 1:
            leaf_counts = noisy_levels[0]
        else:
            inferred = hierarchy_inference(noisy_levels, variances, self.branching)
            leaf_counts = inferred[-1]

        # Consistency means leaf sums reproduce every interior estimate, so
        # releasing the leaf grid alone loses nothing.
        return UniformGridSynopsis(dataset.domain, epsilon, leaf_layout, leaf_counts)
