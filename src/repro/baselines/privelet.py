"""The Privelet baseline (Xiao, Wang, Gehrke, TKDE 2011).

Privelet releases a histogram through a **Haar wavelet transform**: noise is
added to wavelet coefficients instead of raw cell counts, which makes the
noise in a range query partially cancel (a range of length L touches only
``O(log L)`` coefficients instead of ``O(L)`` cells).

For a 1-D frequency vector of length ``n = 2^h``:

* the *base* coefficient is the overall mean;
* the *detail* coefficient of a node covering ``s`` cells is
  ``(mean of left half - mean of right half) / 2``.

Adding one tuple changes the base coefficient by ``1/n`` and each detail
coefficient on its root-to-leaf path by ``1/s``.  Privelet assigns weight
``W(c) = s`` (subtree size) to each coefficient; the *generalised
sensitivity* is then ``sum(W * |delta|) = 1 + log2(n)`` and each
coefficient receives noise ``Lap(GS / (eps * W(c)))``.

Two-dimensional data uses the **standard decomposition**: transform every
row, then every column of the result.  Coefficient weights multiply and the
generalised sensitivity becomes ``(1 + log2 nx) * (1 + log2 ny)``.

Grids whose size is not a power of two are zero-padded (the padding cells
lie outside any real data, so sensitivity is unaffected) and cropped after
the inverse transform.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.grid import GridLayout
from repro.core.guidelines import DEFAULT_C, guideline1_grid_size
from repro.core.synopsis import SynopsisBuilder
from repro.core.uniform_grid import UniformGridSynopsis
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng

__all__ = [
    "PriveletBuilder",
    "haar_forward",
    "haar_inverse",
    "coefficient_weights",
    "generalised_sensitivity",
]


def _check_power_of_two(n: int) -> int:
    if n < 1 or (n & (n - 1)):
        raise ValueError(f"length must be a power of two, got {n}")
    return int(math.log2(n))


def haar_forward(vector: np.ndarray) -> np.ndarray:
    """Unnormalised Haar transform of a length ``2^h`` vector.

    Output layout: index 0 holds the base coefficient (overall mean);
    indices ``2^l .. 2^(l+1) - 1`` hold the detail coefficients of level
    ``l`` (level 0 = the root detail, covering the whole vector).
    """
    vector = np.asarray(vector, dtype=float)
    n = vector.size
    h = _check_power_of_two(n)
    coefficients = np.empty(n)
    averages = vector
    # Peel one resolution level per iteration, finest first.
    for level in range(h - 1, -1, -1):
        left = averages[0::2]
        right = averages[1::2]
        coefficients[2**level : 2 ** (level + 1)] = (left - right) / 2.0
        averages = (left + right) / 2.0
    coefficients[0] = averages[0]
    return coefficients


def haar_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_forward`."""
    coefficients = np.asarray(coefficients, dtype=float)
    n = coefficients.size
    h = _check_power_of_two(n)
    averages = np.array([coefficients[0]])
    for level in range(h):
        details = coefficients[2**level : 2 ** (level + 1)]
        expanded = np.empty(averages.size * 2)
        expanded[0::2] = averages + details
        expanded[1::2] = averages - details
        averages = expanded
    return averages


def coefficient_weights(n: int) -> np.ndarray:
    """Privelet weights ``W(c)``: subtree size per coefficient position.

    ``W = n`` for the base coefficient; a detail coefficient at level ``l``
    covers ``n / 2^l`` cells.
    """
    h = _check_power_of_two(n)
    weights = np.empty(n)
    weights[0] = n
    for level in range(h):
        weights[2**level : 2 ** (level + 1)] = n / (2**level)
    return weights


def generalised_sensitivity(n: int) -> float:
    """Generalised sensitivity ``1 + log2(n)`` of the weighted 1-D transform."""
    h = _check_power_of_two(n)
    return 1.0 + h


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


class PriveletBuilder(SynopsisBuilder):
    """Builds the ``W_m`` baseline: Privelet over an ``m x m`` grid.

    Parameters
    ----------
    grid_size:
        Leaf grid size ``m``; ``None`` applies Guideline 1 (the paper's
        ``W_m`` always pairs Privelet with an explicitly chosen grid, but
        the guideline default makes the builder usable standalone).
    """

    name = "Privelet"

    def __init__(self, grid_size: int | None = None, c: float = DEFAULT_C):
        if grid_size is not None and grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {grid_size}")
        self.grid_size = grid_size
        self.c = c

    def label(self) -> str:
        if self.grid_size is None:
            return "Privelet(auto)"
        return f"W{self.grid_size}"

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> UniformGridSynopsis:
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)

        m = self.grid_size
        if m is None:
            m = guideline1_grid_size(dataset.size, epsilon, self.c)

        layout = GridLayout(dataset.domain, m, m)
        exact = layout.histogram(dataset.points)

        padded = _next_power_of_two(m)
        matrix = np.zeros((padded, padded))
        matrix[:m, :m] = exact

        # Standard decomposition: rows then columns.
        coefficients = np.apply_along_axis(haar_forward, 1, matrix)
        coefficients = np.apply_along_axis(haar_forward, 0, coefficients)

        weights_1d = coefficient_weights(padded)
        weight_matrix = np.outer(weights_1d, weights_1d)
        sensitivity_2d = generalised_sensitivity(padded) ** 2

        budget.spend(epsilon, "wavelet coefficients")
        scales = sensitivity_2d / (epsilon * weight_matrix)
        noisy = coefficients + rng.laplace(0.0, 1.0, size=coefficients.shape) * scales

        reconstructed = np.apply_along_axis(haar_inverse, 0, noisy)
        reconstructed = np.apply_along_axis(haar_inverse, 1, reconstructed)
        counts = reconstructed[:m, :m]

        return UniformGridSynopsis(dataset.domain, epsilon, layout, counts)
