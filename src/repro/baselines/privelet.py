"""The Privelet baseline (Xiao, Wang, Gehrke, TKDE 2011).

Privelet releases a histogram through a **Haar wavelet transform**: noise is
added to wavelet coefficients instead of raw cell counts, which makes the
noise in a range query partially cancel (a range of length L touches only
``O(log L)`` coefficients instead of ``O(L)`` cells).

For a 1-D frequency vector of length ``n = 2^h``:

* the *base* coefficient is the overall mean;
* the *detail* coefficient of a node covering ``s`` cells is
  ``(mean of left half - mean of right half) / 2``.

Adding one tuple changes the base coefficient by ``1/n`` and each detail
coefficient on its root-to-leaf path by ``1/s``.  Privelet assigns weight
``W(c) = s`` (subtree size) to each coefficient; the *generalised
sensitivity* is then ``sum(W * |delta|) = 1 + log2(n)`` and each
coefficient receives noise ``Lap(GS / (eps * W(c)))``.

Two-dimensional data uses the **standard decomposition**: transform every
row, then every column of the result.  Coefficient weights multiply and the
generalised sensitivity becomes ``(1 + log2 nx) * (1 + log2 ny)``.

Grids whose size is not a power of two are zero-padded (the padding cells
lie outside any real data, so sensitivity is unaffected) and cropped after
the inverse transform.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.grid import GridLayout
from repro.core.guidelines import DEFAULT_C, guideline1_grid_size
from repro.core.synopsis import SynopsisBuilder
from repro.core.uniform_grid import UniformGridSynopsis
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng

__all__ = [
    "PriveletBuilder",
    "PriveletSynopsis",
    "haar_forward",
    "haar_inverse",
    "haar_forward_matrix",
    "haar_inverse_matrix",
    "reconstruct_counts",
    "coefficient_weights",
    "generalised_sensitivity",
]


def _check_power_of_two(n: int) -> int:
    if n < 1 or (n & (n - 1)):
        raise ValueError(f"length must be a power of two, got {n}")
    return int(math.log2(n))


def haar_forward(vector: np.ndarray) -> np.ndarray:
    """Unnormalised Haar transform of a length ``2^h`` vector.

    Output layout: index 0 holds the base coefficient (overall mean);
    indices ``2^l .. 2^(l+1) - 1`` hold the detail coefficients of level
    ``l`` (level 0 = the root detail, covering the whole vector).
    """
    vector = np.asarray(vector, dtype=float)
    n = vector.size
    h = _check_power_of_two(n)
    coefficients = np.empty(n)
    averages = vector
    # Peel one resolution level per iteration, finest first.
    for level in range(h - 1, -1, -1):
        left = averages[0::2]
        right = averages[1::2]
        coefficients[2**level : 2 ** (level + 1)] = (left - right) / 2.0
        averages = (left + right) / 2.0
    coefficients[0] = averages[0]
    return coefficients


def haar_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_forward`."""
    coefficients = np.asarray(coefficients, dtype=float)
    n = coefficients.size
    h = _check_power_of_two(n)
    averages = np.array([coefficients[0]])
    for level in range(h):
        details = coefficients[2**level : 2 ** (level + 1)]
        expanded = np.empty(averages.size * 2)
        expanded[0::2] = averages + details
        expanded[1::2] = averages - details
        averages = expanded
    return averages


def haar_forward_matrix(matrix: np.ndarray, axis: int) -> np.ndarray:
    """Vectorised :func:`haar_forward` along one axis of a 2-D array.

    Every lane runs the exact per-element arithmetic of the 1-D
    transform (the butterfly operations are elementwise), so the result
    is bit-identical to ``np.apply_along_axis(haar_forward, axis, m)``
    without the per-lane Python dispatch.
    """
    lanes = np.moveaxis(np.asarray(matrix, dtype=float), axis, -1)
    n = lanes.shape[-1]
    h = _check_power_of_two(n)
    coefficients = np.empty_like(lanes)
    averages = lanes
    for level in range(h - 1, -1, -1):
        left = averages[..., 0::2]
        right = averages[..., 1::2]
        coefficients[..., 2**level : 2 ** (level + 1)] = (left - right) / 2.0
        averages = (left + right) / 2.0
    coefficients[..., 0] = averages[..., 0]
    return np.moveaxis(coefficients, -1, axis)


def haar_inverse_matrix(matrix: np.ndarray, axis: int) -> np.ndarray:
    """Vectorised :func:`haar_inverse` along one axis of a 2-D array.

    Bit-identical per lane to the ``apply_along_axis`` form for the same
    reason as :func:`haar_forward_matrix`.
    """
    lanes = np.moveaxis(np.asarray(matrix, dtype=float), axis, -1)
    n = lanes.shape[-1]
    h = _check_power_of_two(n)
    averages = lanes[..., :1]
    for level in range(h):
        details = lanes[..., 2**level : 2 ** (level + 1)]
        expanded = np.empty(averages.shape[:-1] + (averages.shape[-1] * 2,))
        expanded[..., 0::2] = averages + details
        expanded[..., 1::2] = averages - details
        averages = expanded
    return np.moveaxis(averages, -1, axis)


def reconstruct_counts(coefficients: np.ndarray, m: int) -> np.ndarray:
    """Grid counts from a noisy 2-D coefficient matrix (crop to ``m x m``).

    The single reconstruction path shared by the builder and the
    serialization loader, so a release loaded from disk carries counts
    bit-identical to the ones the builder produced.
    """
    reconstructed = haar_inverse_matrix(coefficients, 0)
    reconstructed = haar_inverse_matrix(reconstructed, 1)
    return reconstructed[:m, :m]


def coefficient_weights(n: int) -> np.ndarray:
    """Privelet weights ``W(c)``: subtree size per coefficient position.

    ``W = n`` for the base coefficient; a detail coefficient at level ``l``
    covers ``n / 2^l`` cells.
    """
    h = _check_power_of_two(n)
    weights = np.empty(n)
    weights[0] = n
    for level in range(h):
        weights[2**level : 2 ** (level + 1)] = n / (2**level)
    return weights


def generalised_sensitivity(n: int) -> float:
    """Generalised sensitivity ``1 + log2(n)`` of the weighted 1-D transform."""
    h = _check_power_of_two(n)
    return 1.0 + h


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


class PriveletSynopsis(UniformGridSynopsis):
    """The released state of Privelet: noisy Haar coefficients plus the
    reconstructed grid.

    The reconstructed ``m x m`` counts (held by the
    :class:`UniformGridSynopsis` base) keep every grid consumer working —
    synthetic points, post-hoc analysis, serialization of the coarse
    view.  The ``p x p`` coefficient matrix is the *primary* release: the
    registered :class:`~repro.queries.engine.WaveletRangeEngine` answers
    ranges straight from it in ``O(log^2 p)`` gathers per query, and the
    scalar :meth:`answer` routes through a single-row engine call so the
    scalar and batch paths are bit-identical by construction.
    """

    def __init__(
        self,
        domain,
        epsilon: float,
        layout: GridLayout,
        counts: np.ndarray,
        coefficients: np.ndarray,
    ):
        super().__init__(domain, epsilon, layout, counts)
        coefficients = np.asarray(coefficients, dtype=float)
        if (
            coefficients.ndim != 2
            or coefficients.shape[0] != coefficients.shape[1]
        ):
            raise ValueError(
                f"coefficients must be square, got {coefficients.shape}"
            )
        _check_power_of_two(coefficients.shape[0])
        if coefficients.shape[0] < max(layout.shape):
            raise ValueError(
                f"coefficient size {coefficients.shape[0]} smaller than "
                f"grid {layout.shape}"
            )
        self._coefficients = coefficients

    @property
    def coefficients(self) -> np.ndarray:
        """The ``p x p`` noisy Haar coefficient matrix (padded grid)."""
        return self._coefficients

    @property
    def padded_size(self) -> int:
        """``p``: the power-of-two side of the padded coefficient grid."""
        return int(self._coefficients.shape[0])

    def answer(self, rect) -> float:
        # One-row batch through the registered wavelet engine: the
        # scalar path and answer_many are then bit-identical (numpy's
        # elementwise ops do not depend on batch size).
        return float(self._batch_engine().answer_batch([rect])[0])


class PriveletBuilder(SynopsisBuilder):
    """Builds the ``W_m`` baseline: Privelet over an ``m x m`` grid.

    Parameters
    ----------
    grid_size:
        Leaf grid size ``m``; ``None`` applies Guideline 1 (the paper's
        ``W_m`` always pairs Privelet with an explicitly chosen grid, but
        the guideline default makes the builder usable standalone).
    """

    name = "Privelet"

    def __init__(self, grid_size: int | None = None, c: float = DEFAULT_C):
        if grid_size is not None and grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {grid_size}")
        self.grid_size = grid_size
        self.c = c

    def label(self) -> str:
        if self.grid_size is None:
            return "Privelet(auto)"
        return f"W{self.grid_size}"

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> PriveletSynopsis:
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)

        m = self.grid_size
        if m is None:
            m = guideline1_grid_size(dataset.size, epsilon, self.c)

        layout = GridLayout(dataset.domain, m, m)
        exact = layout.histogram(dataset.points)

        padded = _next_power_of_two(m)
        matrix = np.zeros((padded, padded))
        matrix[:m, :m] = exact

        # Standard decomposition: rows then columns.  The vectorised
        # transforms are bit-identical per lane to the apply_along_axis
        # reference (see fit_reference), so the noise stream consumes
        # the same draws against the same coefficients.
        coefficients = haar_forward_matrix(matrix, 1)
        coefficients = haar_forward_matrix(coefficients, 0)

        weights_1d = coefficient_weights(padded)
        weight_matrix = np.outer(weights_1d, weights_1d)
        sensitivity_2d = generalised_sensitivity(padded) ** 2

        budget.spend(epsilon, "wavelet coefficients")
        scales = sensitivity_2d / (epsilon * weight_matrix)
        noisy = coefficients + rng.laplace(0.0, 1.0, size=coefficients.shape) * scales

        counts = reconstruct_counts(noisy, m)
        return PriveletSynopsis(dataset.domain, epsilon, layout, counts, noisy)

    def fit_reference(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> UniformGridSynopsis:
        """The retained per-lane reference build.

        Transforms with ``np.apply_along_axis`` over the 1-D routines and
        releases a plain grid synopsis; :meth:`fit` must release
        bit-identical counts (pinned by the property suite).
        """
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)

        m = self.grid_size
        if m is None:
            m = guideline1_grid_size(dataset.size, epsilon, self.c)

        layout = GridLayout(dataset.domain, m, m)
        exact = layout.histogram(dataset.points)

        padded = _next_power_of_two(m)
        matrix = np.zeros((padded, padded))
        matrix[:m, :m] = exact

        coefficients = np.apply_along_axis(haar_forward, 1, matrix)
        coefficients = np.apply_along_axis(haar_forward, 0, coefficients)

        weights_1d = coefficient_weights(padded)
        weight_matrix = np.outer(weights_1d, weights_1d)
        sensitivity_2d = generalised_sensitivity(padded) ** 2

        budget.spend(epsilon, "wavelet coefficients")
        scales = sensitivity_2d / (epsilon * weight_matrix)
        noisy = coefficients + rng.laplace(0.0, 1.0, size=coefficients.shape) * scales

        reconstructed = np.apply_along_axis(haar_inverse, 0, noisy)
        reconstructed = np.apply_along_axis(haar_inverse, 1, reconstructed)
        counts = reconstructed[:m, :m]

        return UniformGridSynopsis(dataset.domain, epsilon, layout, counts)


def _register_engine() -> None:
    # Registered here (not in queries.engine) so the engine registry
    # never has to import baseline modules.
    from repro.queries.engine import (
        WaveletRangeEngine,
        register_engine,
        register_engine_sealer,
    )

    register_engine(
        PriveletSynopsis,
        lambda synopsis: WaveletRangeEngine(
            synopsis.layout, synopsis.coefficients
        ),
    )
    register_engine_sealer(
        PriveletSynopsis,
        lambda synopsis: WaveletRangeEngine.precompute(
            synopsis.layout, synopsis.coefficients
        ),
        lambda synopsis, slabs: WaveletRangeEngine.from_slabs(
            synopsis.layout, synopsis.coefficients, slabs
        ),
    )


_register_engine()
