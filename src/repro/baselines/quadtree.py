"""Private quadtree baseline.

A quadtree recursively splits every region into its four midpoint quadrants
(no privacy budget is needed to choose split points, unlike KD-trees).
Cormode et al. use it as a component of KD-hybrid; we also expose it as a
standalone baseline with optional geometric budget allocation and
constrained inference so the experiments can isolate the contribution of
each ingredient.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.kd_tree import KDTreeBuilder
from repro.baselines.tree import TreeSynopsis
from repro.core.dataset import GeoDataset
from repro.privacy.budget import PrivacyBudget

__all__ = ["QuadtreeBuilder"]


class QuadtreeBuilder(KDTreeBuilder):
    """A pure quadtree: every level splits at region midpoints.

    Parameters
    ----------
    depth:
        Number of split levels; the leaf grid is ``2^depth x 2^depth``.
    geometric_budget:
        Allocate more count budget to deeper levels (ratio ``2^(1/3)``).
    constrained_inference:
        Apply Hay-et-al inference over the released tree.
    min_split_count:
        Stop splitting regions whose noisy count falls below the threshold.
    """

    name = "Quadtree"

    def __init__(
        self,
        depth: int = 8,
        geometric_budget: bool = True,
        constrained_inference: bool = True,
        min_split_count: float = 16.0,
    ):
        super().__init__(
            depth=depth,
            quadtree_levels=depth,
            median_fraction=0.0,
            geometric_budget=geometric_budget,
            constrained_inference=constrained_inference,
            min_split_count=min_split_count,
        )

    def label(self) -> str:
        return f"Quad{self.depth}"

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> TreeSynopsis:
        # All levels are quadrant splits; delegate to the KD machinery with
        # quadtree_levels == depth, which never spends median budget.
        return super().fit(dataset, epsilon, rng, budget=budget)
