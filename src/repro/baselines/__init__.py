"""Baselines: the methods the paper compares UG/AG against."""

from repro.baselines.constrained_inference import (
    CountNode,
    infer_level_order,
    infer_tree,
)
from repro.baselines.flat import ExactGridBuilder, NoisyTotalBuilder
from repro.baselines.hierarchy import HierarchicalGridBuilder
from repro.baselines.kd_tree import KDHybridBuilder, KDStandardBuilder, KDTreeBuilder
from repro.baselines.privelet import PriveletBuilder
from repro.baselines.quadtree import QuadtreeBuilder
from repro.baselines.tree import SpatialNode, TreeArrays, TreeSynopsis

__all__ = [
    "CountNode",
    "ExactGridBuilder",
    "HierarchicalGridBuilder",
    "KDHybridBuilder",
    "KDStandardBuilder",
    "KDTreeBuilder",
    "NoisyTotalBuilder",
    "PriveletBuilder",
    "QuadtreeBuilder",
    "SpatialNode",
    "TreeArrays",
    "TreeSynopsis",
    "infer_level_order",
    "infer_tree",
]
