"""Generic spatial-decomposition tree synopsis.

The KD-tree and quadtree baselines all release the same kind of object: a
tree of rectangular regions with a (noisy) count attached to each node,
where children partition their parent's region.  This module provides that
shared substrate:

* :class:`SpatialNode` — a region node holding released counts.
* :class:`TreeSynopsis` — answers rectangle queries by descending the tree:
  regions fully inside the query contribute their whole count, disjoint
  regions contribute nothing, and partially covered *leaves* fall back to
  the uniformity assumption (Section II-B of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.constrained_inference import CountNode, infer_tree
from repro.core.geometry import Domain2D, Rect
from repro.core.synopsis import Synopsis

__all__ = ["SpatialNode", "TreeSynopsis", "apply_tree_inference"]


@dataclass
class SpatialNode:
    """A node of a spatial decomposition: a region plus released counts.

    ``count`` is the estimate used at query time (after constrained
    inference when the method applies it); ``noisy_count`` / ``variance``
    keep the raw measurement so inference can be (re-)run.
    """

    rect: Rect
    noisy_count: float | None = None
    variance: float = float("inf")
    count: float = 0.0
    depth: int = 0
    children: list["SpatialNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def node_count(self) -> int:
        """Number of nodes in this subtree."""
        return 1 + sum(child.node_count() for child in self.children)

    def leaf_count(self) -> int:
        """Number of leaves in this subtree."""
        if self.is_leaf:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def height(self) -> int:
        """Length of the longest root-to-leaf path (leaf = 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.height() for child in self.children)

    def iter_nodes(self):
        """Yield all nodes in the subtree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_leaves(self):
        """Yield all leaves in the subtree."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node


def apply_tree_inference(root: SpatialNode) -> None:
    """Run Hay-et-al constrained inference over a spatial tree in place.

    Builds the parallel :class:`~repro.baselines.constrained_inference.
    CountNode` structure, solves it, and writes the consistent estimates
    back into each node's ``count``.
    """
    mapping: dict[int, SpatialNode] = {}

    def convert(node: SpatialNode) -> CountNode:
        count_node = CountNode(
            noisy_count=node.noisy_count,
            variance=node.variance,
            children=[convert(child) for child in node.children],
        )
        mapping[id(count_node)] = node
        return count_node

    count_root = convert(root)
    infer_tree(count_root)

    stack = [count_root]
    while stack:
        count_node = stack.pop()
        mapping[id(count_node)].count = count_node.inferred_count
        stack.extend(count_node.children)


class TreeSynopsis(Synopsis):
    """A released spatial decomposition answering queries top-down."""

    def __init__(self, domain: Domain2D, epsilon: float, root: SpatialNode):
        super().__init__(domain, epsilon)
        self._root = root

    @property
    def root(self) -> SpatialNode:
        return self._root

    def node_count(self) -> int:
        return self._root.node_count()

    def leaf_count(self) -> int:
        return self._root.leaf_count()

    def height(self) -> int:
        return self._root.height()

    def answer(self, rect: Rect) -> float:
        return self._answer_node(self._root, rect)

    def _answer_node(self, node: SpatialNode, rect: Rect) -> float:
        region = node.rect
        if not region.intersects(rect):
            return 0.0
        if rect.contains_rect(region):
            return node.count
        if node.is_leaf:
            return node.count * region.overlap_fraction(rect)
        total = 0.0
        for child in node.children:
            total += self._answer_node(child, rect)
        return total

    def synthetic_points(self, rng: np.random.Generator) -> np.ndarray:
        """Sample points uniformly within each leaf region by its count."""
        clouds = []
        for leaf in self._root.iter_leaves():
            n = int(max(0, round(leaf.count)))
            if n == 0:
                continue
            xs = rng.uniform(leaf.rect.x_lo, leaf.rect.x_hi, size=n)
            ys = rng.uniform(leaf.rect.y_lo, leaf.rect.y_hi, size=n)
            clouds.append(np.column_stack([xs, ys]))
        if not clouds:
            return np.empty((0, 2))
        return np.vstack(clouds)
