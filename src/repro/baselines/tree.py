"""Generic spatial-decomposition tree synopsis.

The KD-tree and quadtree baselines all release the same kind of object: a
tree of rectangular regions with a (noisy) count attached to each node,
where children partition their parent's region.  This module provides that
shared substrate in two layouts:

* :class:`TreeArrays` — the flat production layout: per-node rect
  coordinates, depths, CSR child offsets, noisy counts, variances, and
  post-inference counts, stored in **BFS level order** so each tree level
  is a contiguous slab (``level_offsets``).  Everything hot — builders,
  constrained inference, the batch query engine, serialization — operates
  on these arrays without materialising a node object anywhere.
* :class:`SpatialNode` — the recursive reference layout, one object per
  region.  Kept for the scalar reference paths (``fit_reference``,
  ``TreeSynopsis.answer``) that the equivalence tests pin the flat
  kernels against, and for exploratory code that wants to walk a tree.

:class:`TreeSynopsis` answers rectangle queries by descending the tree:
regions fully inside the query contribute their whole count, disjoint
regions contribute nothing, and partially covered *leaves* fall back to
the uniformity assumption (Section II-B of the paper).  Its scalar
``answer`` is the recursive reference; batches go through the flat
:class:`~repro.queries.engine.FlatTreeEngine`.

BFS level order, concretely: node 0 is the root, children of node ``v``
are the contiguous index range ``child_offsets[v]:child_offsets[v + 1]``,
siblings keep their split order, and level ``l`` occupies
``level_offsets[l]:level_offsets[l + 1]``.  Children of the level-``l``
nodes are exactly the level-``l+1`` slab, in order — which is what lets
constrained inference and the query engine walk whole levels with
``repeat``/``arange`` arithmetic instead of per-node recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.constrained_inference import (
    CountNode,
    infer_level_order,
    infer_tree,
)
from repro.core.geometry import Domain2D, Rect
from repro.core.synopsis import Synopsis

__all__ = [
    "SpatialNode",
    "TreeArrays",
    "TreeSynopsis",
    "apply_tree_inference",
    "apply_tree_inference_arrays",
]


@dataclass
class SpatialNode:
    """A node of a spatial decomposition: a region plus released counts.

    ``count`` is the estimate used at query time (after constrained
    inference when the method applies it); ``noisy_count`` / ``variance``
    keep the raw measurement so inference can be (re-)run.
    """

    rect: Rect
    noisy_count: float | None = None
    variance: float = float("inf")
    count: float = 0.0
    depth: int = 0
    children: list["SpatialNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def node_count(self) -> int:
        """Number of nodes in this subtree."""
        return 1 + sum(child.node_count() for child in self.children)

    def leaf_count(self) -> int:
        """Number of leaves in this subtree."""
        if self.is_leaf:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def height(self) -> int:
        """Length of the longest root-to-leaf path (leaf = 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.height() for child in self.children)

    def iter_nodes(self):
        """Yield all nodes in the subtree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_leaves(self):
        """Yield all leaves in the subtree."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node


@dataclass
class TreeArrays:
    """A spatial count tree as flat arrays in BFS level order.

    Attributes
    ----------
    rects:
        ``(n, 4)`` float rows of ``(x_lo, y_lo, x_hi, y_hi)`` per node.
    depths:
        ``(n,)`` BFS level of each node (root = 0); non-decreasing.
    child_offsets:
        ``(n + 1,)`` CSR offsets: children of node ``v`` are the nodes
        ``child_offsets[v]:child_offsets[v + 1]``.  Equal bounds mean a
        leaf.
    noisy_counts:
        ``(n,)`` raw measurements; ``NaN`` marks an unmeasured node.
    variances:
        ``(n,)`` measurement variances (``inf`` for unmeasured nodes).
    counts:
        ``(n,)`` query-time estimates (post-inference when applied).
    level_offsets:
        ``(height + 2,)`` slab bounds: level ``l`` is the index range
        ``level_offsets[l]:level_offsets[l + 1]``.
    """

    rects: np.ndarray
    depths: np.ndarray
    child_offsets: np.ndarray
    noisy_counts: np.ndarray
    variances: np.ndarray
    counts: np.ndarray
    level_offsets: np.ndarray

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _assemble_offsets(
        depths: np.ndarray, fan_out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR child offsets + level slab bounds from level-order metadata.

        In BFS level order the children of nodes 0..n-1 fill indices
        1..n-1 consecutively, so node ``v``'s children start at ``1 +
        sum(fan_out[:v])``; level slabs fall out of the sorted depths.
        """
        n = depths.size
        child_offsets = np.empty(n + 1, dtype=np.int64)
        child_offsets[0] = 1
        np.cumsum(fan_out, out=child_offsets[1:])
        child_offsets[1:] += 1
        n_levels = int(depths[-1]) + 1
        level_offsets = np.searchsorted(
            depths, np.arange(n_levels + 1), side="left"
        ).astype(np.int64)
        return child_offsets, level_offsets

    @classmethod
    def from_records(
        cls,
        rects: np.ndarray,
        depths: np.ndarray,
        parents: np.ndarray,
        noisy_counts: np.ndarray,
        variances: np.ndarray,
        counts: np.ndarray | None = None,
    ) -> "TreeArrays":
        """Assemble level-order arrays from parent-pointer records.

        The records may arrive in any order in which every node's parent
        precedes it and siblings appear in split order (DFS pre-order and
        BFS both qualify); ``parents[v]`` is the record index of ``v``'s
        parent (-1 for the root).  A stable sort by depth produces BFS
        level order — within one level, two nodes compare like their
        parents, so children of consecutive parents land contiguously.
        """
        rects = np.asarray(rects, dtype=float).reshape(-1, 4)
        depths = np.asarray(depths, dtype=np.int64)
        parents = np.asarray(parents, dtype=np.int64)
        noisy_counts = np.asarray(noisy_counts, dtype=float)
        variances = np.asarray(variances, dtype=float)
        n = depths.size
        if n == 0:
            raise ValueError("tree must have at least one node")
        order = np.argsort(depths, kind="stable")
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n)
        new_depths = depths[order]
        new_parents = np.where(parents[order] >= 0, rank[parents[order]], -1)
        fan_out = np.bincount(new_parents[1:], minlength=n) if n > 1 else (
            np.zeros(n, dtype=np.int64)
        )
        child_offsets, level_offsets = cls._assemble_offsets(new_depths, fan_out)
        counts_in = (
            noisy_counts if counts is None else np.asarray(counts, dtype=float)
        )
        return cls(
            rects=np.ascontiguousarray(rects[order]),
            depths=new_depths,
            child_offsets=child_offsets,
            noisy_counts=noisy_counts[order].copy(),
            variances=variances[order].copy(),
            counts=counts_in[order].copy(),
            level_offsets=level_offsets,
        )

    @classmethod
    def from_root(cls, root: SpatialNode) -> "TreeArrays":
        """Flatten a :class:`SpatialNode` graph (BFS, siblings in order)."""
        nodes: list[SpatialNode] = [root]
        depths: list[int] = [0]
        index = 0
        while index < len(nodes):  # the list grows while iterating: a BFS queue
            for child in nodes[index].children:
                nodes.append(child)
                depths.append(depths[index] + 1)
            index += 1
        rects = np.array([node.rect.as_tuple() for node in nodes], dtype=float)
        noisy = np.array(
            [
                np.nan if node.noisy_count is None else float(node.noisy_count)
                for node in nodes
            ]
        )
        variances = np.array([float(node.variance) for node in nodes])
        counts = np.array([float(node.count) for node in nodes])
        depths_arr = np.asarray(depths, dtype=np.int64)
        fan_out = np.array([len(node.children) for node in nodes], dtype=np.int64)
        child_offsets, level_offsets = cls._assemble_offsets(depths_arr, fan_out)
        return cls(
            rects=rects,
            depths=depths_arr,
            child_offsets=child_offsets,
            noisy_counts=noisy,
            variances=variances,
            counts=counts,
            level_offsets=level_offsets,
        )

    def to_root(self) -> SpatialNode:
        """Materialise the equivalent :class:`SpatialNode` object graph."""
        nodes = [
            SpatialNode(
                rect=Rect(*self.rects[v]),
                noisy_count=(
                    None if np.isnan(self.noisy_counts[v])
                    else float(self.noisy_counts[v])
                ),
                variance=float(self.variances[v]),
                count=float(self.counts[v]),
                depth=int(self.depths[v]),
            )
            for v in range(self.n_nodes)
        ]
        for v, node in enumerate(nodes):
            lo, hi = self.child_offsets[v], self.child_offsets[v + 1]
            node.children = nodes[lo:hi]
        return nodes[0]

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.depths.size)

    @property
    def n_levels(self) -> int:
        return int(self.level_offsets.size - 1)

    @property
    def leaf_mask(self) -> np.ndarray:
        """Boolean per-node mask of leaves (empty child range)."""
        return self.child_offsets[1:] == self.child_offsets[:-1]

    def node_count(self) -> int:
        return self.n_nodes

    def leaf_count(self) -> int:
        return int(self.leaf_mask.sum())

    def height(self) -> int:
        """Length of the longest root-to-leaf path (single node = 0)."""
        return self.n_levels - 1

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the released arrays."""
        return sum(
            array.nbytes
            for array in (
                self.rects, self.depths, self.child_offsets,
                self.noisy_counts, self.variances, self.counts,
                self.level_offsets,
            )
        )

    def validate(self) -> None:
        """Check the level-order invariants; raises ``ValueError`` on breakage.

        Used by tests and by unpacking untrusted archives — the hot paths
        assume these invariants rather than re-checking them.
        """
        n = self.n_nodes
        if self.rects.shape != (n, 4):
            raise ValueError(f"rects shape {self.rects.shape} != ({n}, 4)")
        if self.child_offsets.shape != (n + 1,):
            raise ValueError("child_offsets must have n + 1 entries")
        if n and (self.child_offsets[0] != 1 or self.child_offsets[-1] != n):
            raise ValueError("child offsets must span nodes 1..n")
        if np.any(np.diff(self.child_offsets) < 0):
            raise ValueError("child_offsets must be non-decreasing")
        if np.any(np.diff(self.depths) < 0):
            raise ValueError("depths must be non-decreasing (BFS level order)")
        if self.level_offsets[0] != 0 or self.level_offsets[-1] != n:
            raise ValueError("level_offsets must span 0..n")
        for level in range(self.n_levels):
            lo, hi = self.level_offsets[level], self.level_offsets[level + 1]
            if not np.all(self.depths[lo:hi] == level):
                raise ValueError(f"level slab {level} holds wrong depths")
        # Children of each node must sit one level deeper, contiguously.
        starts = self.child_offsets[:-1]
        ends = self.child_offsets[1:]
        parents = np.repeat(np.arange(n), ends - starts)
        children = np.arange(1, n) if n > 1 else np.empty(0, dtype=np.int64)
        if parents.size != children.size:
            raise ValueError("child ranges must cover nodes 1..n exactly once")
        if n > 1 and not np.all(self.depths[children] == self.depths[parents] + 1):
            raise ValueError("children must be exactly one level below parents")


def apply_tree_inference(root: SpatialNode) -> None:
    """Run Hay-et-al constrained inference over a spatial tree in place.

    The recursive reference: builds the parallel :class:`~repro.baselines.
    constrained_inference.CountNode` structure, solves it, and writes the
    consistent estimates back into each node's ``count``.  The production
    path is :func:`apply_tree_inference_arrays`.
    """
    mapping: dict[int, SpatialNode] = {}

    def convert(node: SpatialNode) -> CountNode:
        count_node = CountNode(
            noisy_count=node.noisy_count,
            variance=node.variance,
            children=[convert(child) for child in node.children],
        )
        mapping[id(count_node)] = node
        return count_node

    count_root = convert(root)
    infer_tree(count_root)

    stack = [count_root]
    while stack:
        count_node = stack.pop()
        mapping[id(count_node)].count = count_node.inferred_count
        stack.extend(count_node.children)


def apply_tree_inference_arrays(tree: TreeArrays) -> None:
    """Run constrained inference in place on a flat level-order tree.

    Writes the consistent estimates into ``tree.counts``; bit-identical
    to :func:`apply_tree_inference` on the equivalent object graph (see
    :func:`~repro.baselines.constrained_inference.infer_level_order`).
    The write updates the existing ``counts`` buffer rather than
    rebinding it, so engines already built over these arrays (which
    reference the buffer) see the refreshed estimates.
    """
    tree.counts[:] = infer_level_order(
        tree.noisy_counts, tree.variances, tree.child_offsets, tree.level_offsets
    )


class TreeSynopsis(Synopsis):
    """A released spatial decomposition answering queries top-down.

    The released state is a :class:`TreeArrays`; a :class:`SpatialNode`
    root is also accepted and converted.  The object graph is only
    materialised on demand (:attr:`root`) for the scalar reference path
    and tree-walking callers — batches never touch it.
    """

    def __init__(
        self,
        domain: Domain2D,
        epsilon: float,
        tree: "TreeArrays | SpatialNode",
    ):
        super().__init__(domain, epsilon)
        if isinstance(tree, TreeArrays):
            self._arrays = tree
            self._root: SpatialNode | None = None
        elif isinstance(tree, SpatialNode):
            self._arrays = TreeArrays.from_root(tree)
            self._root = tree
        else:
            raise TypeError(
                f"tree must be TreeArrays or SpatialNode, got {type(tree).__name__}"
            )
        self._engine = None  # lazy FlatTreeEngine for answer_many

    @property
    def arrays(self) -> TreeArrays:
        """The flat released state (what engines and serialisation read)."""
        return self._arrays

    @property
    def root(self) -> SpatialNode:
        """The object-graph view, materialised from the arrays on demand.

        A read-only snapshot: the arrays are the released state, and
        mutating the returned nodes does not write back to them (nor to
        engines, serialization, or ``answer_many``).
        """
        if self._root is None:
            self._root = self._arrays.to_root()
        return self._root

    def node_count(self) -> int:
        return self._arrays.node_count()

    def leaf_count(self) -> int:
        return self._arrays.leaf_count()

    def height(self) -> int:
        return self._arrays.height()

    def answer(self, rect: Rect) -> float:
        return self._answer_node(self.root, rect)

    def _answer_node(self, node: SpatialNode, rect: Rect) -> float:
        region = node.rect
        if not region.intersects(rect):
            return 0.0
        if rect.contains_rect(region):
            return node.count
        if node.is_leaf:
            return node.count * region.overlap_fraction(rect)
        total = 0.0
        for child in node.children:
            total += self._answer_node(child, rect)
        return total

    def answer_many(self, rects: "list[Rect] | np.ndarray") -> np.ndarray:
        """Batch answering via the flat level-order engine (see
        :class:`~repro.queries.engine.FlatTreeEngine`); equal to the
        scalar descent up to floating-point rounding.  Accepts a list of
        :class:`Rect`, a list of 4-number rows, or an ``(n, 4)`` array."""
        if self._engine is None:
            from repro.queries.engine import make_engine

            self._engine = make_engine(self)
        return self._engine.answer_batch(rects)

    def drift_cells(self, max_cells: int = 1024) -> np.ndarray:
        """The leaf rectangles — the tree's finest released partition.

        A kdq-style build-vs-fill comparison bins new points into the
        cells the *build* produced; for a spatial count tree those are
        exactly the leaves.  Falls back to the default equi-width cover
        when the tree has more leaves than ``max_cells`` (the fill
        histogram must stay cheap per ingest batch).
        """
        leaves = np.flatnonzero(self._arrays.leaf_mask)
        if leaves.size == 0 or leaves.size > max_cells:
            return super().drift_cells(max_cells)
        return np.array(self._arrays.rects[leaves], dtype=float)

    def synthetic_points(self, rng: np.random.Generator) -> np.ndarray:
        """Sample points uniformly within each leaf region by its count."""
        arrays = self._arrays
        leaves = np.flatnonzero(arrays.leaf_mask)
        sizes = np.maximum(0, np.round(arrays.counts[leaves])).astype(np.int64)
        keep = sizes > 0
        leaves, sizes = leaves[keep], sizes[keep]
        if leaves.size == 0:
            return np.empty((0, 2))
        boxes = np.repeat(arrays.rects[leaves], sizes, axis=0)
        total = int(sizes.sum())
        xs = rng.uniform(boxes[:, 0], boxes[:, 2], size=total)
        ys = rng.uniform(boxes[:, 1], boxes[:, 3], size=total)
        return np.column_stack([xs, ys])


def _register_engine() -> None:
    # Self-registration keeps queries.engine's make_engine registry in
    # sync without that module having to know about tree synopses.
    from repro.queries.engine import (
        FlatTreeEngine,
        register_engine,
        register_engine_sealer,
    )

    register_engine(TreeSynopsis, FlatTreeEngine)
    register_engine_sealer(
        TreeSynopsis,
        FlatTreeEngine.precompute,
        FlatTreeEngine.from_slabs,
    )


_register_engine()
