"""Dataset transforms: spatial operations on :class:`GeoDataset`.

Experiment pipelines routinely reshape datasets before fitting — crop to
a region of interest, merge sources, rebalance density, or project into
the unit square.  These helpers keep those operations out of experiment
scripts and under test.

All transforms are pure: they return new datasets and never mutate input.
None of them are differentially private — they run on the curator's side
*before* a synopsis is fitted.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.privacy.mechanisms import ensure_rng

__all__ = [
    "crop",
    "merge",
    "normalise_to_unit",
    "jitter",
    "thin",
    "mirror_x",
    "rotate90",
    "split_by_line",
]


def crop(dataset: GeoDataset, region: Rect, name: str | None = None) -> GeoDataset:
    """Keep only the points inside ``region``; the region becomes the domain."""
    return dataset.subset(region, name=name or f"{dataset.name}-crop")


def merge(datasets: list[GeoDataset], name: str = "merged") -> GeoDataset:
    """Union of point sets; the domain is the bounding box of all domains."""
    if not datasets:
        raise ValueError("merge requires at least one dataset")
    x_lo = min(d.domain.bounds.x_lo for d in datasets)
    y_lo = min(d.domain.bounds.y_lo for d in datasets)
    x_hi = max(d.domain.bounds.x_hi for d in datasets)
    y_hi = max(d.domain.bounds.y_hi for d in datasets)
    domain = Domain2D(x_lo, y_lo, x_hi, y_hi)
    points = np.vstack([d.points for d in datasets])
    return GeoDataset(points, domain, name=name)


def normalise_to_unit(dataset: GeoDataset) -> GeoDataset:
    """Affinely map the dataset into the unit square."""
    unit_points = dataset.domain.normalise(dataset.points)
    return GeoDataset(
        np.clip(unit_points, 0.0, 1.0), Domain2D.unit(),
        name=f"{dataset.name}-unit",
    )


def jitter(
    dataset: GeoDataset,
    sigma: float,
    rng: np.random.Generator | int | None,
) -> GeoDataset:
    """Add Gaussian positional noise (clipped back into the domain).

    Useful for de-duplicating lattice-like data before experiments that
    are sensitive to ties.  Not a privacy mechanism.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = ensure_rng(rng)
    noisy = dataset.points + rng.normal(0.0, sigma, size=dataset.points.shape)
    return GeoDataset(
        dataset.domain.clip_points(noisy), dataset.domain,
        name=f"{dataset.name}-jitter",
    )


def thin(
    dataset: GeoDataset,
    fraction: float,
    rng: np.random.Generator | int | None,
) -> GeoDataset:
    """Keep each point independently with the given probability."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = ensure_rng(rng)
    mask = rng.random(dataset.size) < fraction
    return GeoDataset(
        dataset.points[mask], dataset.domain, name=f"{dataset.name}-thin"
    )


def mirror_x(dataset: GeoDataset) -> GeoDataset:
    """Reflect the dataset across the domain's vertical midline."""
    bounds = dataset.domain.bounds
    mirrored = dataset.points.copy()
    mirrored[:, 0] = bounds.x_lo + bounds.x_hi - mirrored[:, 0]
    return GeoDataset(mirrored, dataset.domain, name=f"{dataset.name}-mirror")


def rotate90(dataset: GeoDataset) -> GeoDataset:
    """Rotate 90 degrees counter-clockwise; the domain rotates with it.

    A point ``(x, y)`` maps to ``(-y, x)`` about the domain centre, and
    the new domain swaps width and height.
    """
    bounds = dataset.domain.bounds
    cx, cy = bounds.center
    dx = dataset.points[:, 0] - cx
    dy = dataset.points[:, 1] - cy
    rotated = np.column_stack([cx - dy, cy + dx])
    half_w = bounds.height / 2.0  # new half-width is old half-height
    half_h = bounds.width / 2.0
    new_domain = Domain2D(cx - half_w, cy - half_h, cx + half_w, cy + half_h)
    return GeoDataset(
        new_domain.clip_points(rotated), new_domain,
        name=f"{dataset.name}-rot90",
    )


def split_by_line(
    dataset: GeoDataset, x_split: float
) -> tuple[GeoDataset, GeoDataset]:
    """Partition the dataset at a vertical line into (left, right).

    Points exactly on the line go left.  Each part keeps a domain that is
    its side of the original.
    """
    bounds = dataset.domain.bounds
    if not bounds.x_lo < x_split < bounds.x_hi:
        raise ValueError(
            f"x_split {x_split} must be strictly inside [{bounds.x_lo}, "
            f"{bounds.x_hi}]"
        )
    left_mask = dataset.xs <= x_split
    left = GeoDataset(
        dataset.points[left_mask],
        Domain2D(bounds.x_lo, bounds.y_lo, x_split, bounds.y_hi),
        name=f"{dataset.name}-left",
    )
    right = GeoDataset(
        dataset.points[~left_mask],
        Domain2D(x_split, bounds.y_lo, bounds.x_hi, bounds.y_hi),
        name=f"{dataset.name}-right",
    )
    return left, right
