"""Dataset registry: Table II's datasets with their workload parameters.

Each :class:`DatasetSpec` records a dataset's generator, its domain, the
query-size ladder (``q6`` from Table II; ``q1 = q6 / 32`` per axis), and
both the paper's original point count and the scaled default this
reproduction uses (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.dataset import GeoDataset
from repro.datasets import synthetic
from repro.queries.workload import QueryWorkload

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "get_spec", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry for one of the paper's evaluation datasets."""

    name: str
    generator: Callable[..., GeoDataset]
    paper_n: int
    default_n: int
    q6_width: float
    q6_height: float
    description: str

    def make(
        self, n: int | None = None, rng: np.random.Generator | int | None = None
    ) -> GeoDataset:
        """Generate the dataset with ``n`` points (default: scaled size)."""
        return self.generator(n if n is not None else self.default_n, rng)

    def workload(
        self,
        dataset: GeoDataset,
        rng: np.random.Generator | int | None,
        queries_per_size: int = 200,
    ) -> QueryWorkload:
        """The paper's q1..q6 workload for this dataset."""
        return QueryWorkload.generate(
            dataset,
            self.q6_width,
            self.q6_height,
            rng,
            queries_per_size=queries_per_size,
        )


DATASETS: dict[str, DatasetSpec] = {
    "road": DatasetSpec(
        name="road",
        generator=synthetic.make_road,
        paper_n=1_600_000,
        default_n=400_000,
        q6_width=16.0,
        q6_height=16.0,
        description="TIGER road intersections, WA + NM (synthetic analogue)",
    ),
    "checkin": DatasetSpec(
        name="checkin",
        generator=synthetic.make_checkin,
        paper_n=1_000_000,
        default_n=250_000,
        q6_width=192.0,
        q6_height=96.0,
        description="Gowalla check-ins, world-wide (synthetic analogue)",
    ),
    "landmark": DatasetSpec(
        name="landmark",
        generator=synthetic.make_landmark,
        paper_n=870_000,
        default_n=225_000,
        q6_width=40.0,
        q6_height=20.0,
        description="TIGER landmarks, continental US (synthetic analogue)",
    ),
    "storage": DatasetSpec(
        name="storage",
        generator=synthetic.make_storage,
        paper_n=9_000,
        default_n=9_000,
        q6_width=40.0,
        q6_height=20.0,
        description="US storage facilities (synthetic analogue)",
    ),
}


def dataset_names() -> list[str]:
    """Names of the four registered datasets, in the paper's order."""
    return list(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name; raises ``KeyError`` with suggestions."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None


def load_dataset(
    name: str,
    n: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> GeoDataset:
    """Generate a registered dataset by name."""
    return get_spec(name).make(n=n, rng=rng)
