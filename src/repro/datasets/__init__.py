"""Datasets: synthetic analogues of the paper's four evaluation datasets."""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_dataset,
)
from repro.datasets.synthetic import (
    make_checkin,
    make_gaussian_mixture,
    make_landmark,
    make_road,
    make_storage,
    make_uniform,
)
from repro.datasets.transforms import (
    crop,
    jitter,
    merge,
    mirror_x,
    normalise_to_unit,
    rotate90,
    split_by_line,
    thin,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "crop",
    "dataset_names",
    "get_spec",
    "jitter",
    "load_dataset",
    "merge",
    "mirror_x",
    "normalise_to_unit",
    "rotate90",
    "split_by_line",
    "thin",
    "make_checkin",
    "make_gaussian_mixture",
    "make_landmark",
    "make_road",
    "make_storage",
    "make_uniform",
]
