"""Synthetic analogues of the paper's four evaluation datasets.

The paper evaluates on four real point sets (Section V-A, Figure 1,
Table II): *road* (TIGER road intersections in WA + NM), *checkin*
(Gowalla check-ins world-wide), *landmark* (TIGER landmarks, continental
US) and *storage* (US storage facilities).  The raw files are not
redistributable/offline-fetchable, so this module generates point clouds
with the same domain geometry and the same density *structure* — the only
dataset properties the algorithms and the paper's error analysis depend
on:

* **road** — two dense, internally near-uniform regions (road grids are
  locally lattice-like) separated by a large blank area.  The paper calls
  out this dataset's "unusually high uniformity", which is what makes
  Guideline 1 over-estimate its best relative-error grid size; the lattice
  construction reproduces that.
* **checkin** — heavily skewed world-wide clusters ("vaguely a world map"):
  power-law city weights inside continent boxes, empty oceans.
* **landmark** — US-population-like density: many city clusters of varying
  scale plus a diffuse rural background.
* **storage** — the same spatial process as landmark at N ~ 9,000, the
  small-data regime of Table II.

Every generator takes an explicit point count and RNG, so experiments can
scale N down for speed while keeping the distributions fixed.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.privacy.mechanisms import ensure_rng

__all__ = [
    "make_road",
    "make_checkin",
    "make_landmark",
    "make_storage",
    "make_uniform",
    "make_gaussian_mixture",
]

# Domain geometry copied from Table II ("domain size" column).
ROAD_DOMAIN = Domain2D(-125.0, 30.0, -100.0, 50.0)  # 25 x 20
CHECKIN_DOMAIN = Domain2D(-180.0, -90.0, 180.0, 60.0)  # 360 x 150
LANDMARK_DOMAIN = Domain2D(-130.0, 15.0, -70.0, 55.0)  # 60 x 40
STORAGE_DOMAIN = LANDMARK_DOMAIN


def _sample_in_rect(rect: Rect, n: int, rng: np.random.Generator) -> np.ndarray:
    xs = rng.uniform(rect.x_lo, rect.x_hi, size=n)
    ys = rng.uniform(rect.y_lo, rect.y_hi, size=n)
    return np.column_stack([xs, ys])


def _lattice_points(
    rect: Rect, n: int, spacing: float, jitter: float, rng: np.random.Generator
) -> np.ndarray:
    """Points snapped to a jittered lattice — a road-network-like texture.

    Every point sits near an integer multiple of ``spacing`` in x or in y
    (roads run along both axes), giving locally uniform coverage with
    fine-scale structure.
    """
    base = _sample_in_rect(rect, n, rng)
    snap_x = rng.random(n) < 0.5
    snapped = base.copy()
    snapped[snap_x, 0] = (
        np.round((base[snap_x, 0] - rect.x_lo) / spacing) * spacing + rect.x_lo
    )
    snapped[~snap_x, 1] = (
        np.round((base[~snap_x, 1] - rect.y_lo) / spacing) * spacing + rect.y_lo
    )
    snapped += rng.normal(0.0, jitter, size=snapped.shape)
    snapped[:, 0] = np.clip(snapped[:, 0], rect.x_lo, rect.x_hi)
    snapped[:, 1] = np.clip(snapped[:, 1], rect.y_lo, rect.y_hi)
    return snapped


def _cluster_points(
    centers: np.ndarray,
    weights: np.ndarray,
    sigmas: np.ndarray,
    n: int,
    domain: Domain2D,
    rng: np.random.Generator,
) -> np.ndarray:
    """Gaussian-mixture sample clipped into the domain."""
    weights = np.asarray(weights, dtype=float)
    probabilities = weights / weights.sum()
    assignment = rng.choice(centers.shape[0], size=n, p=probabilities)
    sigma = np.asarray(sigmas, dtype=float)[assignment]
    points = centers[assignment] + rng.normal(size=(n, 2)) * sigma[:, None]
    return domain.clip_points(points)


def _power_law_weights(k: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like cluster weights: rank^(-exponent), randomly perturbed."""
    ranks = np.arange(1, k + 1, dtype=float)
    weights = ranks**-exponent
    return weights * rng.uniform(0.5, 1.5, size=k)


def make_uniform(
    n: int,
    rng: np.random.Generator | int | None = None,
    domain: Domain2D | None = None,
) -> GeoDataset:
    """A completely uniform dataset (the paper's "extreme c" discussion)."""
    rng = ensure_rng(rng)
    domain = domain or Domain2D.unit()
    return GeoDataset(_sample_in_rect(domain.bounds, n, rng), domain, name="uniform")


def make_gaussian_mixture(
    n: int,
    n_clusters: int,
    rng: np.random.Generator | int | None = None,
    domain: Domain2D | None = None,
    exponent: float = 1.0,
    sigma_range: tuple[float, float] = (0.01, 0.05),
) -> GeoDataset:
    """A generic skewed dataset: power-law-weighted Gaussian clusters.

    Useful for property-based tests and dimension sweeps where the four
    named datasets are overkill.  Sigmas are relative to the domain width.
    """
    rng = ensure_rng(rng)
    domain = domain or Domain2D.unit()
    bounds = domain.bounds
    centers = _sample_in_rect(bounds, n_clusters, rng)
    weights = _power_law_weights(n_clusters, exponent, rng)
    sigmas = rng.uniform(*sigma_range, size=n_clusters) * domain.width
    points = _cluster_points(centers, weights, sigmas, n, domain, rng)
    return GeoDataset(points, domain, name=f"mixture{n_clusters}")


def make_road(
    n: int = 400_000, rng: np.random.Generator | int | None = None
) -> GeoDataset:
    """Road-intersection analogue: two dense lattice regions, large blanks.

    Washington-like region in the north-west, New-Mexico-like region in the
    south, nothing in between — reproducing Figure 1(a)'s structure.
    """
    rng = ensure_rng(rng)
    washington = Rect(-124.6, 45.6, -117.0, 49.0)
    new_mexico = Rect(-109.0, 31.4, -103.0, 37.0)

    n_wa = int(n * 0.55)
    n_nm_lattice = int((n - n_wa) * 0.85)
    n_nm_cities = n - n_wa - n_nm_lattice

    parts = [
        _lattice_points(washington, n_wa, spacing=0.05, jitter=0.004, rng=rng),
        _lattice_points(new_mexico, n_nm_lattice, spacing=0.05, jitter=0.004, rng=rng),
    ]
    if n_nm_cities:
        # A handful of city hot-spots (Albuquerque-like) inside New Mexico.
        cities = np.array([[-106.6, 35.1], [-106.3, 32.3], [-104.5, 36.7]])
        weights = np.array([0.6, 0.25, 0.15])
        sigmas = np.array([0.15, 0.12, 0.1])
        parts.append(
            _cluster_points(cities, weights, sigmas, n_nm_cities, ROAD_DOMAIN, rng)
        )
    points = ROAD_DOMAIN.clip_points(np.vstack(parts))
    return GeoDataset(points, ROAD_DOMAIN, name="road")


# Continent boxes (x_lo, y_lo, x_hi, y_hi, weight) — a crude world map.
_CONTINENTS = [
    (Rect(-125.0, 25.0, -65.0, 50.0), 0.30),  # North America
    (Rect(-115.0, 14.0, -85.0, 25.0), 0.04),  # Central America
    (Rect(-80.0, -55.0, -35.0, 10.0), 0.08),  # South America
    (Rect(-10.0, 36.0, 40.0, 60.0), 0.28),  # Europe
    (Rect(-17.0, -35.0, 50.0, 35.0), 0.05),  # Africa
    (Rect(60.0, 5.0, 140.0, 55.0), 0.18),  # Asia
    (Rect(95.0, -10.0, 125.0, 8.0), 0.03),  # South-east Asia
    (Rect(113.0, -40.0, 154.0, -10.0), 0.04),  # Australia
]


def make_checkin(
    n: int = 250_000,
    rng: np.random.Generator | int | None = None,
    cities_per_continent: int = 40,
) -> GeoDataset:
    """Check-in analogue: power-law city clusters on a crude world map.

    Reproduces Figure 1(b)'s structure: developed regions are dense,
    oceans empty, and the per-city point counts are heavily skewed.
    """
    rng = ensure_rng(rng)
    centers = []
    weights = []
    sigmas = []
    for box, box_weight in _CONTINENTS:
        city_centers = _sample_in_rect(box, cities_per_continent, rng)
        city_weights = _power_law_weights(cities_per_continent, 1.2, rng)
        city_weights *= box_weight / city_weights.sum()
        centers.append(city_centers)
        weights.append(city_weights)
        sigmas.append(rng.uniform(0.3, 2.0, size=cities_per_continent))
    centers = np.vstack(centers)
    weights = np.concatenate(weights)
    sigmas = np.concatenate(sigmas)

    n_cluster = int(n * 0.97)
    points = _cluster_points(centers, weights, sigmas, n_cluster, CHECKIN_DOMAIN, rng)
    # A thin smear of rural/travelling check-ins across the continents.
    leftovers = []
    remaining = n - n_cluster
    boxes = [box for box, _ in _CONTINENTS]
    box_index = rng.choice(len(boxes), size=remaining)
    for k, box in enumerate(boxes):
        count = int(np.count_nonzero(box_index == k))
        if count:
            leftovers.append(_sample_in_rect(box, count, rng))
    if leftovers:
        points = np.vstack([points] + leftovers)
    return GeoDataset(CHECKIN_DOMAIN.clip_points(points), CHECKIN_DOMAIN, name="checkin")


def _us_landmark_points(
    n: int, rng: np.random.Generator, n_cities: int
) -> np.ndarray:
    """The shared landmark/storage spatial process (US-like density)."""
    mainland = Rect(-124.5, 25.5, -70.5, 49.0)
    # Eastern half is denser than the west, like US population.
    east = Rect(-95.0, 25.5, -70.5, 49.0)
    n_city_centers_east = int(n_cities * 0.65)
    centers = np.vstack(
        [
            _sample_in_rect(east, n_city_centers_east, rng),
            _sample_in_rect(mainland, n_cities - n_city_centers_east, rng),
        ]
    )
    weights = _power_law_weights(n_cities, 1.1, rng)
    sigmas = rng.uniform(0.08, 0.6, size=n_cities)

    n_cluster = int(n * 0.7)
    n_background = n - n_cluster
    cluster = _cluster_points(
        centers, weights, sigmas, n_cluster, LANDMARK_DOMAIN, rng
    )
    background = _sample_in_rect(mainland, n_background, rng)
    return np.vstack([cluster, background])


def make_landmark(
    n: int = 225_000,
    rng: np.random.Generator | int | None = None,
    n_cities: int = 150,
) -> GeoDataset:
    """Landmark analogue: US-population-like city clusters plus rural noise."""
    rng = ensure_rng(rng)
    points = LANDMARK_DOMAIN.clip_points(_us_landmark_points(n, rng, n_cities))
    return GeoDataset(points, LANDMARK_DOMAIN, name="landmark")


def make_storage(
    n: int = 9_000,
    rng: np.random.Generator | int | None = None,
    n_cities: int = 80,
) -> GeoDataset:
    """Storage-facility analogue: the landmark process at N ~ 9,000."""
    rng = ensure_rng(rng)
    points = STORAGE_DOMAIN.clip_points(_us_landmark_points(n, rng, n_cities))
    return GeoDataset(points, STORAGE_DOMAIN, name="storage")
