"""repro — a reproduction of "Differentially Private Grids for Geospatial Data".

Qardaji, Yang, Li (ICDE 2013).  The package provides:

* the paper's contributions: the Uniform Grid (UG) and Adaptive Grid (AG)
  differentially private synopsis methods with their grid-size guidelines;
* every baseline the paper compares against: KD-standard, KD-hybrid,
  quadtrees, grid hierarchies with constrained inference, and Privelet;
* the evaluation machinery: the four (synthetic-analogue) datasets,
  query workloads, error metrics, and per-figure experiment runners;
* a serving layer (:mod:`repro.service`): build a release once, cache and
  persist it, and answer batched rectangle queries over HTTP
  (``python -m repro serve``) under per-dataset budget accounting.

Quickstart::

    import numpy as np
    from repro import AdaptiveGridBuilder, make_checkin
    from repro.core.geometry import Rect

    data = make_checkin(100_000, rng=0)
    synopsis = AdaptiveGridBuilder().fit(data, epsilon=1.0, rng=np.random.default_rng(1))
    estimate = synopsis.answer(Rect(-10.0, 35.0, 30.0, 60.0))
"""

from repro.baselines.flat import ExactGridBuilder, NoisyTotalBuilder
from repro.baselines.hierarchy import HierarchicalGridBuilder
from repro.baselines.kd_tree import KDHybridBuilder, KDStandardBuilder, KDTreeBuilder
from repro.baselines.privelet import PriveletBuilder
from repro.baselines.quadtree import QuadtreeBuilder
from repro.analysis.uniformity import estimate_c, uniformity_profile
from repro.core.adaptive_grid import AdaptiveGridBuilder, AdaptiveGridSynopsis
from repro.core.dataset import GeoDataset
from repro.core.serialization import load_synopsis, save_synopsis
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.guidelines import (
    adaptive_first_level_size,
    guideline1_grid_size,
    guideline2_cell_grid_size,
)
from repro.core.synopsis import Synopsis, SynopsisBuilder
from repro.core.uniform_grid import UniformGridBuilder, UniformGridSynopsis
from repro.datasets.registry import DATASETS, load_dataset
from repro.datasets.synthetic import (
    make_checkin,
    make_gaussian_mixture,
    make_landmark,
    make_road,
    make_storage,
    make_uniform,
)
from repro.privacy.budget import BudgetExceededError, PrivacyBudget
from repro.baselines.tree import TreeArrays, TreeSynopsis
from repro.queries.engine import (
    BatchQueryEngine,
    FlatAdaptiveGridEngine,
    FlatTreeEngine,
    make_engine,
    register_engine,
)
from repro.queries.metrics import ErrorProfile, absolute_errors, relative_errors
from repro.queries.workload import QueryWorkload
from repro.service import QueryService, ReleaseKey, SynopsisStore

__version__ = "1.0.0"

__all__ = [
    "AdaptiveGridBuilder",
    "AdaptiveGridSynopsis",
    "BatchQueryEngine",
    "BudgetExceededError",
    "DATASETS",
    "Domain2D",
    "ErrorProfile",
    "ExactGridBuilder",
    "FlatAdaptiveGridEngine",
    "FlatTreeEngine",
    "GeoDataset",
    "GridLayout",
    "HierarchicalGridBuilder",
    "KDHybridBuilder",
    "KDStandardBuilder",
    "KDTreeBuilder",
    "NoisyTotalBuilder",
    "PrivacyBudget",
    "PriveletBuilder",
    "QuadtreeBuilder",
    "QueryService",
    "QueryWorkload",
    "Rect",
    "ReleaseKey",
    "Synopsis",
    "SynopsisBuilder",
    "SynopsisStore",
    "TreeArrays",
    "TreeSynopsis",
    "UniformGridBuilder",
    "UniformGridSynopsis",
    "absolute_errors",
    "adaptive_first_level_size",
    "estimate_c",
    "guideline1_grid_size",
    "guideline2_cell_grid_size",
    "load_dataset",
    "load_synopsis",
    "make_checkin",
    "make_engine",
    "make_gaussian_mixture",
    "make_landmark",
    "make_road",
    "make_storage",
    "make_uniform",
    "register_engine",
    "relative_errors",
    "save_synopsis",
    "uniformity_profile",
]
