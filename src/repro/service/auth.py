"""API-key authentication for the service tier.

Two authenticators share one interface — ``authenticate(headers) ->
tenant_id``:

* :class:`NullAuthenticator` (the ``--auth off`` default) ignores
  credentials entirely and resolves every request to the implicit
  ``default`` tenant, preserving the single-operator behaviour the
  service always had.
* :class:`ApiKeyAuthenticator` (``--auth require``) demands an
  ``Authorization: Bearer rk_<key_id>.<secret>`` header and resolves it
  against the catalog's ``api_keys`` table.  Secrets are stored only as
  SHA-256 digests and compared with :func:`hmac.compare_digest`
  (constant-time over the digest), so neither a catalog leak nor a
  timing probe recovers a usable credential.

Failures map to two deliberately coarse errors: :class:`AuthRequired`
(401 + ``WWW-Authenticate: Bearer``) when no parseable credential was
presented, and :class:`AuthForbidden` (403) for any credential that does
not resolve — unknown key id, wrong secret, and revoked key are
indistinguishable from the outside.
"""

from __future__ import annotations

from repro.service.catalog import DEFAULT_TENANT, Catalog
from repro.service.errors import AuthRequired

__all__ = [
    "Authenticator",
    "NullAuthenticator",
    "ApiKeyAuthenticator",
    "make_authenticator",
]


class Authenticator:
    """Resolve a request's headers to a tenant id (or raise 401/403)."""

    #: Whether this authenticator ever rejects a request.  The HTTP
    #: adapter uses it to decide if auth-exempt routes need special
    #: handling at all.
    enforces = False

    def authenticate(self, headers) -> str:
        raise NotImplementedError


class NullAuthenticator(Authenticator):
    """``--auth off``: every request is the implicit default tenant."""

    enforces = False

    def authenticate(self, headers) -> str:
        return DEFAULT_TENANT


class ApiKeyAuthenticator(Authenticator):
    """``--auth require``: Bearer API keys resolved via the catalog."""

    enforces = True

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def authenticate(self, headers) -> str:
        header = headers.get("Authorization")
        if header is None:
            raise AuthRequired("missing Authorization header")
        scheme, _, token = header.strip().partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise AuthRequired(
                "expected 'Authorization: Bearer <api-key>' credentials"
            )
        # Raises AuthForbidden for anything that does not resolve.
        return self._catalog.resolve_api_key(token)


def make_authenticator(mode: str, catalog: Catalog | None) -> Authenticator:
    """Build the authenticator for an ``--auth`` mode string."""
    if mode == "off":
        return NullAuthenticator()
    if mode == "require":
        if catalog is None:
            raise ValueError("--auth require needs a metadata catalog")
        return ApiKeyAuthenticator(catalog)
    raise ValueError(f"unknown auth mode {mode!r} (use 'off' or 'require')")
