"""Fault-armor runtime primitives: deadlines, admission, latency.

Three small thread-safe building blocks the HTTP adapter composes into a
defined overload/failure model:

* :class:`Deadline` — a monotonic per-request time budget, threaded
  through the build and answer paths; expiry raises
  :class:`~repro.service.errors.DeadlineExpired` (HTTP 504) instead of
  letting a slow request pin its thread indefinitely;
* :class:`AdmissionController` — a bounded in-flight gate: at most
  ``max_inflight`` requests run at once and at most ``queue_depth`` wait
  for a slot; everything beyond that is *shed* immediately (HTTP 429
  with ``Retry-After``) so overload degrades into fast rejections rather
  than an unbounded thread pile-up;
* :class:`LatencyHistogram` — fixed log-spaced latency buckets with
  p50/p95/p99 readout for ``/health``, so the shedding and deadline
  behaviour is observable without external tooling.
"""

from __future__ import annotations

import bisect
import threading
import time

from repro.service.errors import DeadlineExpired

__all__ = ["AdmissionController", "Deadline", "LatencyHistogram"]


class Deadline:
    """A wall-clock budget for one request, measured on the monotonic clock.

    Created once when the request is admitted and handed down through
    every potentially slow step (store waits, fits, engine preparation,
    batch evaluation).  Steps call :meth:`check` before starting work and
    use :meth:`remaining` to bound their condition waits, so an expired
    request fails with a clean 504 at the next checkpoint instead of
    holding resources to completion.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, budget_ms: float):
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        self._expires_at = time.monotonic() + budget_ms / 1e3

    def remaining(self) -> float:
        """Seconds left before expiry (never below zero)."""
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self, doing: str) -> None:
        """Raise :class:`DeadlineExpired` when the budget is gone."""
        if self.expired():
            raise DeadlineExpired(
                f"request deadline expired while {doing}; the work was "
                "abandoned — retry with a longer deadline or a smaller request"
            )

    def tighten(self, budget_ms: float) -> "Deadline":
        """The stricter of this deadline and a fresh ``budget_ms`` one.

        Requests may *shorten* the server's deadline (a dashboard that
        would rather fail fast), never extend it.
        """
        candidate = Deadline(budget_ms)
        if candidate._expires_at < self._expires_at:
            return candidate
        return self


class AdmissionController:
    """Bounded in-flight request gate with load shedding.

    ``max_inflight`` requests may run concurrently; up to ``queue_depth``
    more may wait for a slot (bounded by their own deadline).  Anything
    beyond that — or a waiter whose patience runs out — is shed: the
    caller answers 429 immediately, which costs microseconds instead of a
    pinned thread.  ``max_inflight <= 0`` disables the gate entirely.
    """

    def __init__(self, max_inflight: int, queue_depth: int):
        self.max_inflight = int(max_inflight)
        self.queue_depth = max(0, int(queue_depth))
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._running = 0
        self._waiting = 0
        self.shed_count = 0

    @property
    def enabled(self) -> bool:
        return self.max_inflight > 0

    def try_enter(self, timeout: float = 0.0) -> bool:
        """Claim an execution slot, waiting up to ``timeout`` seconds.

        Returns False (and counts a shed) when the queue is full or no
        slot frees up in time.  Every True return must be paired with
        exactly one :meth:`leave`.
        """
        if not self.enabled:
            return True
        deadline = time.monotonic() + max(0.0, timeout)
        with self._slot_freed:
            if self._running < self.max_inflight:
                self._running += 1
                return True
            if self._waiting >= self.queue_depth:
                self.shed_count += 1
                return False
            self._waiting += 1
            try:
                while self._running >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.shed_count += 1
                        return False
                    self._slot_freed.wait(remaining)
                self._running += 1
                return True
            finally:
                self._waiting -= 1

    def leave(self) -> None:
        with self._slot_freed:
            self._running -= 1
            self._slot_freed.notify()

    def inflight(self) -> int:
        with self._lock:
            return self._running

    def to_payload(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "inflight": self._running,
                "queued": self._waiting,
                "shed_count": self.shed_count,
            }


#: Histogram bucket upper bounds in milliseconds (log-spaced 0.1 ms –
#: 60 s; the final +inf bucket catches everything slower).
_BUCKET_BOUNDS_MS = (
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0,
    10.0, 20.0, 50.0,
    100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0,
    10_000.0, 30_000.0, 60_000.0,
)


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram with percentile readout.

    Log-spaced buckets trade a bounded relative error (one bucket width)
    for O(1) memory and O(buckets) percentile queries — the right trade
    for a ``/health`` endpoint that must stay cheap under overload.
    Percentiles are reported as the upper bound of the bucket containing
    the requested rank (the conservative answer), with the true observed
    maximum tracked exactly.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BUCKET_BOUNDS_MS) + 1)
        self._total = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        index = bisect.bisect_left(_BUCKET_BOUNDS_MS, latency_ms)
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum_ms += latency_ms
            if latency_ms > self._max_ms:
                self._max_ms = latency_ms

    def percentile(self, q: float) -> float:
        """Upper bound (ms) of the bucket holding the ``q``-quantile."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        with self._lock:
            if self._total == 0:
                return 0.0
            rank = q * self._total
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative >= rank:
                    if index >= len(_BUCKET_BOUNDS_MS):
                        return self._max_ms
                    return min(_BUCKET_BOUNDS_MS[index], self._max_ms)
            return self._max_ms

    def to_payload(self) -> dict:
        p50, p95, p99 = (self.percentile(q) for q in (0.5, 0.95, 0.99))
        with self._lock:
            mean = self._sum_ms / self._total if self._total else 0.0
            return {
                "count": self._total,
                "mean_ms": round(mean, 3),
                "p50_ms": p50,
                "p95_ms": p95,
                "p99_ms": p99,
                "max_ms": round(self._max_ms, 3),
            }
