"""``python -m repro serve`` — run the synopsis server.

Examples::

    # serve AG and UG releases of the storage dataset, persisted on disk
    python -m repro serve --store-dir /var/lib/repro --preload storage_AG_eps1.0_seed0

    # one-request self-test on an ephemeral port (used by `make serve-smoke`)
    python -m repro serve --smoke

Build a release and query it::

    curl -X POST localhost:8731/releases \
        -d '{"dataset": "storage", "method": "AG", "epsilon": 1.0, "seed": 0}'
    curl -X POST localhost:8731/query \
        -d '{"dataset": "storage", "method": "AG", "epsilon": 1.0, "seed": 0,
             "rects": [[-100, 30, -80, 45]]}'
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.error
import urllib.request

from repro.service.keys import ReleaseKey, method_names
from repro.service.query_service import QueryService
from repro.service.server import serve
from repro.service.store import SynopsisStore

__all__ = ["build_parser", "main"]

DEFAULT_PORT = 8731


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve differentially private synopsis releases over HTTP "
        f"(methods: {', '.join(method_names())}).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port, 0 for ephemeral (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="directory for persisted releases and the budget ledger "
        "(default: in-memory only)",
    )
    parser.add_argument(
        "--dataset-budget", type=float, default=None,
        help="total epsilon each dataset instance may spend across all "
        "builds (default: 4.0, or 1.0 under --smoke)",
    )
    parser.add_argument(
        "--max-entries", type=int, default=16,
        help="LRU cache bound on in-memory releases (default: 16)",
    )
    parser.add_argument(
        "--max-bytes", type=int, default=512 * 1024 * 1024,
        help="LRU cache bound on released-state bytes (default: 512 MiB)",
    )
    parser.add_argument(
        "--n-points", type=int, default=None,
        help="dataset-size override for builds (default: registry default)",
    )
    parser.add_argument(
        "--preload", nargs="*", default=(), metavar="SLUG",
        help="release slugs to build before accepting traffic, "
        "e.g. storage_AG_eps1.0_seed0",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="start on an ephemeral port, run one build + query round trip "
        "through HTTP, print the responses, and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        # Small and fast by default; an explicit --n-points or
        # --dataset-budget is honoured (the self-test adapts to the
        # configured budget when exercising the refusal path).
        args.n_points = args.n_points or 4_000
    if args.dataset_budget is None:
        args.dataset_budget = 1.0 if args.smoke else 4.0
    store = SynopsisStore(
        store_dir=args.store_dir,
        dataset_budget=args.dataset_budget,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        n_points=args.n_points,
    )
    service = QueryService(store)

    for slug in args.preload:
        key = ReleaseKey.from_slug(slug)
        _, built = store.build(key)
        print(f"preloaded {key.slug()} ({'built' if built else 'cached'})")

    if args.smoke:
        return _smoke(service, args.host, args.dataset_budget)

    server = serve(service, args.host, args.port)
    print(f"serving synopses on {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


def _smoke(service: QueryService, host: str, dataset_budget: float) -> int:
    """End-to-end self-test: build AG over HTTP, query it, check refusal.

    Exercises the acceptance path: a batched rectangle query answered
    from a cached AG synopsis through the HTTP adapter, plus a forced
    rebuild refused once the dataset budget is exhausted.  Works for any
    configured budget — the smoke release's epsilon is ``min(1.0,
    budget)`` and forced rebuilds drain the remainder — and against a
    store directory that already holds the release.
    """
    server = serve(service, host, 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        def call(path: str, payload: dict | None = None):
            request = urllib.request.Request(
                server.url + path,
                data=None if payload is None else json.dumps(payload).encode(),
                method="GET" if payload is None else "POST",
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        epsilon = min(1.0, dataset_budget)
        release = {"dataset": "storage", "method": "AG", "epsilon": epsilon, "seed": 0}
        checks: list[tuple[str, bool]] = []

        status, body = call("/health")
        checks.append(("health", status == 200 and body["status"] == "ok"))

        status, body = call("/releases", release)
        print(f"build: HTTP {status} {json.dumps(body)}")
        # 201 on a fresh build; 200 when a persisted store-dir already
        # holds the release from an earlier run — both are healthy.
        checks.append(("build or fetch AG release", status in (200, 201)))

        rects = [[-110.0, 30.0, -80.0, 45.0], [-80.0, 25.0, -70.0, 35.0]]
        status, body = call("/query", {**release, "rects": rects, "clamp": True})
        print(f"query: HTTP {status} {json.dumps(body)}")
        checks.append(
            ("batched query", status == 200 and body["count"] == len(rects))
        )

        # Drain whatever budget remains with forced rebuilds; the
        # refusal must arrive within remaining / epsilon + 1 attempts.
        # Ask the server for the live ledger: a persisted store-dir may
        # carry a larger total than the CLI flag (stricter totals win).
        status, body = call("/releases")
        ledger = (body.get("budgets") or {}).get("storage|0") if status == 200 else None
        remaining = (
            max(0.0, ledger["total"] - ledger["spent"]) if ledger else dataset_budget
        )
        refused = False
        for _ in range(int(remaining / epsilon) + 2):
            status, body = call("/releases", {**release, "force": True})
            if status == 409 and body.get("error") == "BudgetRefused":
                refused = True
                break
        print(f"rebuild: HTTP {status} {json.dumps(body)}")
        checks.append(("over-budget rebuild refused", refused))

        failed = [name for name, ok in checks if not ok]
        for name, ok in checks:
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        if failed:
            print(f"smoke test FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
        print("smoke test passed")
        return 0
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    sys.exit(main())
