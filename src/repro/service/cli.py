"""``python -m repro serve`` — run the synopsis server.

Examples::

    # serve AG and UG releases of the storage dataset, persisted on disk
    python -m repro serve --store-dir /var/lib/repro --preload storage_AG_eps1.0_seed0

    # saturate a multi-core box: 4 worker processes share the port
    python -m repro serve --workers 4 --store-dir /var/lib/repro \
        --preload storage_AG_eps1.0_seed0

    # accept streamed point batches: WAL-backed POST /ingest with
    # drift-triggered, budget-capped re-releases (single worker only)
    python -m repro serve --store-dir /var/lib/repro --ingest \
        --drift-threshold 0.2 --staleness-ms 60000 --epoch-budget-fraction 0.5

    # multi-tenant: mint an API key (one-shot), then require auth
    python -m repro serve --store-dir /var/lib/repro --create-api-key acme
    python -m repro serve --store-dir /var/lib/repro --auth require

    # one-request self-test on an ephemeral port (used by `make serve-smoke`)
    python -m repro serve --smoke

Build a release and query it::

    curl -X POST localhost:8731/releases \
        -d '{"dataset": "storage", "method": "AG", "epsilon": 1.0, "seed": 0}'
    curl -X POST localhost:8731/query \
        -d '{"dataset": "storage", "method": "AG", "epsilon": 1.0, "seed": 0,
             "rects": [[-100, 30, -80, 45]]}'

**Multi-worker model.**  ``--workers N`` forks N processes, each binding
the same ``(host, port)`` with ``SO_REUSEPORT`` so the kernel balances
incoming connections across them (falling back to one worker, with a
warning, where fork or ``SO_REUSEPORT`` is unavailable — or when no
``--store-dir`` is given, since N independent in-memory ledgers would
silently multiply every dataset's privacy budget).  The parent stays
resident as a supervisor: a worker that crashes is respawned with capped
exponential backoff, and SIGTERM/SIGINT drains the whole tree (workers
stop accepting, finish in-flight requests, then exit).  Each worker
owns an independent :class:`~repro.service.store.SynopsisStore` handle
over the shared ``--store-dir``: releases preloaded (or built) by one
worker are persisted as ``.npz`` artifacts every other worker reloads on
demand, and builds are bit-deterministic per key, so all workers answer
identically.  Budget accounting across workers depends on the ledger
backend: with the default catalog (``--store-dir`` deployments share
``<store-dir>/catalog.sqlite``) every spend runs in a ``BEGIN
IMMEDIATE`` SQLite transaction, so the budget is strictly enforced
across processes.  With ``--catalog off`` the JSON ledger is loaded per
process — each worker enforces the budget against its own view and
last-writer-wins on ``budgets.json``; preload every release before
traffic (``--preload``) or direct builds at a single worker when strict
accounting matters there.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.service import faultinject
from repro.service.keys import ReleaseKey, method_names
from repro.service.query_service import DEFAULT_ANSWER_CACHE_BYTES, QueryService
from repro.service.server import serve
from repro.service.store import SynopsisStore

__all__ = ["build_parser", "main", "resolve_workers"]

DEFAULT_PORT = 8731


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve differentially private synopsis releases over HTTP "
        f"(methods: {', '.join(method_names())}).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port, 0 for ephemeral (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharing the port via SO_REUSEPORT "
        "(default: 1; falls back to 1 where unsupported)",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="directory for persisted releases and the budget ledger "
        "(default: in-memory only; required for workers to share releases)",
    )
    parser.add_argument(
        "--dataset-budget", type=float, default=None,
        help="total epsilon each dataset instance may spend across all "
        "builds (default: 4.0, or 1.0 under --smoke)",
    )
    parser.add_argument(
        "--max-entries", type=int, default=16,
        help="LRU cache bound on in-memory releases (default: 16)",
    )
    parser.add_argument(
        "--max-bytes", type=int, default=512 * 1024 * 1024,
        help="LRU cache bound on released-state bytes (default: 512 MiB)",
    )
    parser.add_argument(
        "--answer-cache-bytes", type=int, default=DEFAULT_ANSWER_CACHE_BYTES,
        help="byte bound on the per-worker answer cache, 0 to disable "
        f"(default: {DEFAULT_ANSWER_CACHE_BYTES})",
    )
    parser.add_argument(
        "--n-points", type=int, default=None,
        help="dataset-size override for builds (default: registry default)",
    )
    parser.add_argument(
        "--archive-format", choices=("v1", "v2"), default="v2",
        help="on-disk container for newly persisted releases: v2 "
        "(default) is page-aligned and uncompressed so worker processes "
        "mmap-share one copy of each release; v1 is the compact "
        "savez_compressed blob; existing archives of either format are "
        "served regardless",
    )
    parser.add_argument(
        "--preload", nargs="*", default=(), metavar="SLUG",
        help="release slugs to build before accepting traffic, "
        "e.g. storage_AG_eps1.0_seed0",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="bound on concurrently executing POST requests per worker; "
        "excess requests past the queue are shed with 429 (default: 64, "
        "0 disables admission control)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64,
        help="requests that may wait for an admission slot before new "
        "arrivals are shed (default: 64)",
    )
    parser.add_argument(
        "--request-deadline-ms", type=float, default=30_000.0,
        help="per-request wall-clock budget in milliseconds; expiry "
        "answers 504 (default: 30000, 0 disables deadlines)",
    )
    parser.add_argument(
        "--read-timeout", type=float, default=30.0,
        help="per-request budget in seconds for reading headers + body "
        "off the socket; slow clients past it are disconnected "
        "(default: 30)",
    )
    parser.add_argument(
        "--ingest", action="store_true",
        help="enable streaming ingestion (POST /ingest): batches are "
        "staged in a crash-safe write-ahead log and trigger budgeted "
        "re-releases; requires --store-dir and a single worker",
    )
    parser.add_argument(
        "--drift-threshold", type=float, default=0.25,
        help="build-vs-fill total-variation distance at which pending "
        "ingested points trigger a re-release (default: 0.25)",
    )
    parser.add_argument(
        "--staleness-ms", type=float, default=0.0,
        help="age of the oldest pending ingested point at which a "
        "re-release triggers regardless of drift (default: 0 = disabled)",
    )
    parser.add_argument(
        "--epoch-budget-fraction", type=float, default=0.5,
        help="fraction of each dataset instance's budget that "
        "ingest-triggered re-releases may spend in total; past it "
        "refreshes are refused and the stale release keeps serving "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--auth", choices=("off", "require"), default="off",
        help="authentication mode: 'off' (default) serves everyone as "
        "the implicit default tenant; 'require' demands "
        "'Authorization: Bearer <api-key>' credentials resolved against "
        "the metadata catalog (/health stays open for probes)",
    )
    parser.add_argument(
        "--catalog", default=None, metavar="PATH",
        help="SQLite metadata catalog (tenants, API keys, dataset "
        "registrations, per-tenant privacy ledgers); defaults to "
        "<store-dir>/catalog.sqlite when --store-dir is set, 'off' "
        "disables it and keeps the flock'd JSON ledger",
    )
    parser.add_argument(
        "--create-tenant", default=None, metavar="TENANT",
        help="admin one-shot: create a tenant in the catalog and exit",
    )
    parser.add_argument(
        "--create-api-key", default=None, metavar="TENANT",
        help="admin one-shot: mint an API key for a tenant (created if "
        "missing), print the one-time token, and exit",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="start on an ephemeral port, run one build + query round trip "
        "through HTTP, print the responses, and exit",
    )
    return parser


def resolve_workers(
    requested: int, store_dir=None, ingest: bool = False
) -> tuple[int, str | None]:
    """Clamp the requested worker count to what the deployment supports.

    Returns ``(workers, reason)`` where ``reason`` explains a fallback to
    1 (``None`` when the request is honoured unchanged).  Multi-worker
    serving without a shared ``store_dir`` is refused: each worker would
    hold an independent in-memory store *and budget ledger*, silently
    multiplying every dataset's privacy budget by N — the one guarantee
    the serving layer must never weaken.  Ingestion likewise forces a
    single worker: the write-ahead log has exactly one writer, and N
    processes appending to it would interleave records.
    """
    if requested < 1:
        return 1, f"--workers {requested} clamped to 1"
    if requested == 1:
        return 1, None
    if ingest:
        return 1, (
            "--ingest requires a single worker: the write-ahead log "
            "has exactly one writer process; serving with 1 worker"
        )
    if store_dir is None:
        return 1, (
            "--workers > 1 requires --store-dir: without a shared store "
            "each worker keeps its own budget ledger, multiplying the "
            "per-dataset privacy budget; serving with 1 worker"
        )
    if not hasattr(os, "fork"):
        return 1, "multi-worker serving needs os.fork(); serving with 1 worker"
    if not hasattr(socket, "SO_REUSEPORT"):
        return 1, "this platform lacks SO_REUSEPORT; serving with 1 worker"
    return requested, None


def _resolve_catalog(args):
    """Open the metadata catalog the flags ask for (or ``None``).

    ``--catalog off`` disables it; an explicit path wins; otherwise a
    ``--store-dir`` deployment gets ``<store-dir>/catalog.sqlite`` so
    multi-worker and multi-process setups share one serialised ledger
    by default.  In-memory servers without an explicit path run
    catalog-less (single implicit tenant, JSON-ledger semantics).
    """
    if args.catalog == "off":
        return None
    if args.catalog is not None:
        path = args.catalog
    elif args.store_dir is not None:
        path = os.path.join(args.store_dir, "catalog.sqlite")
    else:
        return None
    from repro.service.catalog import Catalog

    return Catalog(path)


def _admin(args, catalog) -> int:
    """Run the ``--create-tenant`` / ``--create-api-key`` one-shots."""
    if catalog is None:
        print(
            "--create-tenant/--create-api-key need a catalog: pass "
            "--catalog PATH or --store-dir",
            file=sys.stderr,
        )
        return 2
    if args.create_tenant is not None:
        catalog.ensure_tenant(args.create_tenant)
        print(f"tenant {args.create_tenant!r} ready in {catalog.path}")
    if args.create_api_key is not None:
        token = catalog.create_api_key(args.create_api_key)
        print(token)
    return 0


def _make_store(args, catalog=None) -> SynopsisStore:
    return SynopsisStore(
        store_dir=args.store_dir,
        dataset_budget=args.dataset_budget,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        n_points=args.n_points,
        archive_format=args.archive_format,
        catalog=catalog,
    )


def _fault_options(args) -> dict:
    """The robustness knobs forwarded to :func:`serve`."""
    return {
        "max_inflight": args.max_inflight,
        "queue_depth": args.queue_depth,
        "request_deadline_ms": args.request_deadline_ms,
        "read_timeout": args.read_timeout,
    }


def _install_graceful_shutdown(server) -> None:
    """Drain on SIGTERM: stop accepting, let in-flight requests finish.

    ``server.shutdown()`` must not run inside the handler — it blocks
    until ``serve_forever`` notices, and the serve loop cannot advance
    while the main thread sits in the handler — so a helper thread asks.
    No-op when not on the main thread (in-process tests drive ``main``
    from worker threads, where ``signal.signal`` raises).
    """

    def _request_stop(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _request_stop)
    except ValueError:
        pass


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Fault-injection hooks for the crash-safety test harness; inert
    # unless REPRO_FAULTS is set (see repro.service.faultinject).
    faultinject.install_from_env()
    if args.create_tenant is not None or args.create_api_key is not None:
        return _admin(args, _resolve_catalog(args))
    if args.smoke:
        # Small and fast by default; an explicit --n-points or
        # --dataset-budget is honoured (the self-test adapts to the
        # configured budget when exercising the refusal path).
        args.n_points = args.n_points or 4_000
    if args.dataset_budget is None:
        args.dataset_budget = 1.0 if args.smoke else 4.0
    if args.ingest and args.store_dir is None:
        print(
            "--ingest requires --store-dir: the write-ahead log and the "
            "budget ledger must both survive restarts",
            file=sys.stderr,
        )
        return 2
    catalog = _resolve_catalog(args)
    try:
        from repro.service.auth import make_authenticator

        authenticator = make_authenticator(args.auth, catalog)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    store = _make_store(args, catalog)
    service = QueryService(store, answer_cache_bytes=args.answer_cache_bytes)
    manager = None
    if args.ingest:
        # Replays the WAL (truncating any torn tail) and finishes
        # interrupted refreshes before the server accepts traffic.
        from repro.service.ingest import IngestManager

        manager = IngestManager(
            store,
            args.store_dir,
            drift_threshold=args.drift_threshold,
            staleness_ms=args.staleness_ms,
            epoch_budget_fraction=args.epoch_budget_fraction,
        )

    # Preload in the parent, before any fork: with a --store-dir the
    # artifacts land on disk where every worker reloads them on demand.
    for slug in args.preload:
        key = ReleaseKey.from_slug(slug)
        _, built = store.build(key)
        print(f"preloaded {key.slug()} ({'built' if built else 'cached'})")

    if args.smoke:
        return _smoke(service, args.host, args.dataset_budget)

    workers, fallback_reason = resolve_workers(
        args.workers, args.store_dir, ingest=args.ingest
    )
    if fallback_reason is not None:
        print(fallback_reason, file=sys.stderr)
    if workers > 1:
        return _serve_workers(args, workers)

    server = serve(
        service,
        args.host,
        args.port,
        ingest=manager,
        authenticator=authenticator,
        catalog=catalog,
        **_fault_options(args),
    )
    _install_graceful_shutdown(server)
    print(f"serving synopses on {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.drain()
        server.server_close()
    return 0


# ----------------------------------------------------------------------
# Multi-worker serving
# ----------------------------------------------------------------------


def _free_port(host: str) -> int:
    """Pick a currently free port for an ephemeral multi-worker bind.

    Workers each bind the concrete port with ``SO_REUSEPORT``, so the
    parent cannot simply bind port 0 once — every worker would get a
    different ephemeral port.  Probing then closing leaves a small race
    window; pass an explicit ``--port`` for production deployments.
    """
    with socket.socket() as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


#: First respawn delay after a worker crash; doubles per consecutive
#: fast failure up to the cap, and resets once a worker survives
#: ``_WORKER_STABLE_S`` seconds (a crash loop must not busy-fork).
_RESPAWN_BACKOFF_BASE_S = 0.5
_RESPAWN_BACKOFF_CAP_S = 30.0
_WORKER_STABLE_S = 30.0


def _worker_main(args, host: str, port: int) -> int:
    """Body of one forked worker: own store handle, shared listen port.

    Each worker opens its own catalog handle over the shared SQLite
    file; spends serialise through ``BEGIN IMMEDIATE``, so with a
    catalog the budget ledger is strictly consistent across workers
    (unlike the per-process JSON view).
    """
    from repro.service.auth import make_authenticator

    catalog = _resolve_catalog(args)
    authenticator = make_authenticator(args.auth, catalog)
    store = _make_store(args, catalog)
    service = QueryService(store, answer_cache_bytes=args.answer_cache_bytes)
    server = serve(
        service,
        host,
        port,
        reuse_port=True,
        authenticator=authenticator,
        catalog=catalog,
        **_fault_options(args),
    )
    # Graceful drain on SIGTERM: stop accepting, finish what's in
    # flight.  Budget spends are persisted before fits and artifacts are
    # written atomically, so there is no extra state to flush.
    _install_graceful_shutdown(server)
    print(f"worker {os.getpid()} serving on {server.url}", flush=True)
    # Fault hook for supervision tests: REPRO_FAULTS=worker.serve:exit=3
    # makes a worker die right after announcing itself.
    faultinject.fire("worker.serve", pid=os.getpid())
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.drain()
        server.server_close()
    return 0


def _spawn_worker(args, host: str, port: int) -> int:
    pid = os.fork()
    if pid == 0:
        code = 1
        try:
            code = _worker_main(args, host, port)
        finally:
            os._exit(code)
    return pid


def _serve_workers(args, n_workers: int) -> int:
    """Fork ``n_workers`` servers and supervise them until shutdown.

    The parent is a supervisor: a worker that dies (bug, OOM kill,
    injected crash) is respawned with capped exponential backoff, so the
    deployment never silently serves at N-1 capacity.  SIGINT/SIGTERM
    flip to drain mode — workers get SIGTERM (finish in-flight requests,
    then exit) and are reaped, no respawns.
    """
    host = args.host
    port = args.port if args.port != 0 else _free_port(args.host)
    started_at: dict[int, float] = {}
    shutting_down = threading.Event()

    def _request_shutdown(signum, frame):
        if not shutting_down.is_set():
            shutting_down.set()
            print("shutting down workers", flush=True)
        # Forward to the children so the waitpid below wakes as they
        # exit (PEP 475 would otherwise resume it indefinitely).
        for pid in list(started_at):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                continue

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    for _ in range(n_workers):
        pid = _spawn_worker(args, host, port)
        started_at[pid] = time.monotonic()
    print(
        f"serving synopses on http://{host}:{port} "
        f"with {n_workers} workers (Ctrl-C to stop)",
        flush=True,
    )
    fast_failures = 0
    try:
        while not shutting_down.is_set():
            try:
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:  # pragma: no cover - all workers gone
                break
            launched = started_at.pop(pid, None)
            if launched is None or shutting_down.is_set():
                continue
            code = os.waitstatus_to_exitcode(status)
            lifetime = time.monotonic() - launched
            if lifetime >= _WORKER_STABLE_S:
                fast_failures = 0
            else:
                fast_failures += 1
            delay = min(
                _RESPAWN_BACKOFF_CAP_S,
                _RESPAWN_BACKOFF_BASE_S * (2 ** max(0, fast_failures - 1)),
            )
            print(
                f"worker {pid} exited with {code} after {lifetime:.1f}s; "
                f"respawning in {delay:.1f}s",
                file=sys.stderr,
                flush=True,
            )
            give_up = time.monotonic() + delay
            while not shutting_down.is_set() and time.monotonic() < give_up:
                time.sleep(0.05)
            if shutting_down.is_set():
                break
            new_pid = _spawn_worker(args, host, port)
            started_at[new_pid] = time.monotonic()
            print(f"worker {new_pid} respawned", flush=True)
    finally:
        for pid in list(started_at):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                continue
        for pid in list(started_at):
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                break
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0


def _smoke(service: QueryService, host: str, dataset_budget: float) -> int:
    """End-to-end self-test: build AG over HTTP, query it, check refusal.

    Exercises the acceptance path: a batched rectangle query answered
    from a cached AG synopsis through the HTTP adapter — once as JSON and
    once through the binary batch protocol, asserted identical — plus a
    forced rebuild refused once the dataset budget is exhausted.  Works
    for any configured budget — the smoke release's epsilon is
    ``min(1.0, budget)`` and forced rebuilds drain the remainder — and
    against a store directory that already holds the release.
    """
    server = serve(service, host, 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        def call(path: str, payload: dict | None = None):
            request = urllib.request.Request(
                server.url + path,
                data=None if payload is None else json.dumps(payload).encode(),
                method="GET" if payload is None else "POST",
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        epsilon = min(1.0, dataset_budget)
        release = {"dataset": "storage", "method": "AG", "epsilon": epsilon, "seed": 0}
        checks: list[tuple[str, bool]] = []

        status, body = call("/health")
        checks.append(("health", status == 200 and body["status"] == "ok"))

        status, body = call("/releases", release)
        print(f"build: HTTP {status} {json.dumps(body)}")
        # 201 on a fresh build; 200 when a persisted store-dir already
        # holds the release from an earlier run — both are healthy.
        checks.append(("build or fetch AG release", status in (200, 201)))

        rects = [[-110.0, 30.0, -80.0, 45.0], [-80.0, 25.0, -70.0, 35.0]]
        status, body = call("/query", {**release, "rects": rects, "clamp": True})
        print(f"query: HTTP {status} {json.dumps(body)}")
        checks.append(
            ("batched query", status == 200 and body["count"] == len(rects))
        )

        # The same batch through the binary protocol must answer
        # bit-identically (the rects above are float32-exact).
        from repro.service import protocol

        binary_request = urllib.request.Request(
            server.url + "/query",
            data=protocol.encode_query(
                ReleaseKey(**release), rects, clamp=True
            ),
            method="POST",
            headers={
                "Content-Type": protocol.CONTENT_TYPE,
                "Accept": protocol.CONTENT_TYPE,
            },
        )
        try:
            with urllib.request.urlopen(binary_request, timeout=30) as response:
                binary_estimates = protocol.decode_answer(response.read())
                binary_ok = (
                    status == 200
                    and list(binary_estimates) == body["estimates"]
                )
        except urllib.error.HTTPError:
            binary_ok = False
        print(f"binary query: estimates identical = {binary_ok}")
        checks.append(("binary protocol round trip", binary_ok))

        # Drain whatever budget remains with forced rebuilds; the
        # refusal must arrive within remaining / epsilon + 1 attempts.
        # Ask the server for the live ledger: a persisted store-dir may
        # carry a larger total than the CLI flag (stricter totals win).
        status, body = call("/releases")
        ledger = (body.get("budgets") or {}).get("storage|0") if status == 200 else None
        remaining = (
            max(0.0, ledger["total"] - ledger["spent"]) if ledger else dataset_budget
        )
        refused = False
        for _ in range(int(remaining / epsilon) + 2):
            status, body = call("/releases", {**release, "force": True})
            if status == 409 and body.get("error") == "BudgetRefused":
                refused = True
                break
        print(f"rebuild: HTTP {status} {json.dumps(body)}")
        checks.append(("over-budget rebuild refused", refused))

        failed = [name for name, ok in checks if not ok]
        for name, ok in checks:
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        if failed:
            print(f"smoke test FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
        print("smoke test passed")
        return 0
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    sys.exit(main())
