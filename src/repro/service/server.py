"""Stdlib-only HTTP adapter for the serving layer.

A thin JSON-over-HTTP front end (``http.server``; no web framework) over
:class:`~repro.service.query_service.QueryService`:

====== ============ ====================================================
Method Path         Meaning
====== ============ ====================================================
GET    /health      liveness + cache/stat counters
GET    /releases    cached + persisted keys, budgets, store stats
POST   /releases    build (or fetch) a release; 201 when a fit happened
POST   /query       answer a batch of rectangles from one release
====== ============ ====================================================

Request/response bodies are JSON; see :mod:`repro.service.schemas` for the
request fields.  Errors come back as ``{"error": <class>, "detail":
<message>}`` with the status each :class:`~repro.service.errors.
ServiceError` subclass carries (400 validation, 404 unknown release, 409
budget refused).

The server is a ``ThreadingHTTPServer``: each request runs on its own
thread, which the store/service are built for — query batches against one
cached release run concurrently without locking.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.errors import ServiceError, ValidationError
from repro.service.query_service import QueryService
from repro.service.schemas import parse_build_request, parse_query_request

__all__ = ["SynopsisHTTPServer", "serve"]

logger = logging.getLogger(__name__)

#: Largest accepted request body (16 MiB ~= a full MAX_BATCH_SIZE batch).
_MAX_BODY_BYTES = 16 * 1024 * 1024


class SynopsisHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: QueryService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Socket timeout (applied per connection by http.server): a client
    # that stalls mid-request times out instead of pinning its handler
    # thread forever (slowloris).
    timeout = 30

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        # GET handlers never read a body; drain any the client attached
        # so leftover bytes cannot desynchronise a keep-alive connection.
        self._drain_body()
        self._dispatch(
            {
                "/health": self._get_health,
                "/releases": self._get_releases,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(
            {
                "/releases": self._post_releases,
                "/query": self._post_query,
            }
        )

    def _dispatch(self, routes) -> None:
        path = self.path.split("?", 1)[0]  # tolerate query strings
        handler = routes.get(path.rstrip("/") or "/")
        try:
            if handler is None:
                raise ServiceError(
                    f"no route {self.command} {self.path}; "
                    f"available: {', '.join(sorted(routes))}",
                    status=404,
                )
            handler()
        except ServiceError as error:
            self._send_json(error.status, error.to_payload())
        except (TimeoutError, ConnectionError):
            # Client stalled or vanished mid-request; there is no one
            # left to answer — just release the connection.
            self.close_connection = True
        except Exception:  # pragma: no cover - defensive last resort
            logger.exception("unhandled error serving %s %s", self.command, self.path)
            self._send_json(
                500, {"error": "InternalError", "detail": "internal server error"}
            )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _get_health(self) -> None:
        service = self.server.service
        self._send_json(
            200,
            {
                "status": "ok",
                "releases_cached": len(service.store.cached_keys()),
                **service.stats(),
            },
        )

    def _get_releases(self) -> None:
        self._send_json(200, self.server.service.store.to_payload())

    def _post_releases(self) -> None:
        request = parse_build_request(self._read_json())
        synopsis, built = self.server.service.store.build(
            request.key, force=request.force
        )
        self._send_json(
            201 if built else 200,
            {
                "key": request.key.to_payload(),
                "kind": type(synopsis).__name__,
                "built": built,
                "total_estimate": float(synopsis.total()),
            },
        )

    def _post_query(self) -> None:
        request = parse_query_request(self._read_json())
        result = self.server.service.answer(
            request.key, request.boxes, clamp=request.clamp
        )
        self._send_json(200, result.to_payload())

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _drain_body(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = 0
        if length > _MAX_BODY_BYTES:
            # Not worth reading gigabytes to keep one connection alive.
            self.close_connection = True
            return
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise ValidationError("malformed Content-Length header") from None
        if length <= 0:
            raise ValidationError("request requires a JSON body")
        if length > _MAX_BODY_BYTES:
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise ValidationError(f"request body is not valid JSON: {error}") from None

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may leave the request body unread; on a
            # keep-alive connection those bytes would be parsed as the
            # next request line.  Closing keeps the protocol in sync.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)


def serve(
    service: QueryService, host: str = "127.0.0.1", port: int = 8731
) -> SynopsisHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks a free port).

    The caller owns the loop: call ``serve_forever()`` (blocking) or run
    it on a thread and ``shutdown()`` when done, as the tests do.
    """
    return SynopsisHTTPServer((host, port), service)
