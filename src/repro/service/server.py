"""Stdlib-only HTTP adapter for the serving layer.

A thin HTTP front end (``http.server``; no web framework) over
:class:`~repro.service.query_service.QueryService`:

====== ============ ====================================================
Method Path         Meaning
====== ============ ====================================================
GET    /health      liveness + cache/stat counters
GET    /releases    cached + persisted keys, budgets, store stats
POST   /releases    build (or fetch) a release; 201 when a fit happened
POST   /query       answer a batch of rectangles from one release
====== ============ ====================================================

Request/response bodies are JSON by default; see
:mod:`repro.service.schemas` for the request fields.  ``POST /query``
additionally negotiates the binary batch protocol
(:mod:`repro.service.protocol`) by ``Content-Type`` — a request sent as
``application/x-repro-batch`` is decoded zero-copy from the binary frame
— and by ``Accept`` — a client that accepts the binary type gets its
estimates back as a binary answer frame, with the timing split mirrored
into ``X-Build-Ms`` / ``X-Answer-Ms`` / ``X-Answer-Cached`` response
headers.  Errors come back as JSON ``{"error": <class>, "detail":
<message>}`` on every path, with the status each
:class:`~repro.service.errors.ServiceError` subclass carries (400
validation, 404 unknown release, 409 budget refused).

The server is a ``ThreadingHTTPServer``: each request runs on its own
thread, which the store/service are built for — query batches against one
cached release run concurrently without locking.  For multi-core serving,
``reuse_port=True`` lets several processes bind the same address via
``SO_REUSEPORT`` and share the accept load (see
:mod:`repro.service.cli`'s ``--workers``).
"""

from __future__ import annotations

import json
import logging
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service import protocol
from repro.service.errors import ServiceError, ValidationError
from repro.service.query_service import QueryService
from repro.service.schemas import parse_build_request, parse_query_request

__all__ = ["SynopsisHTTPServer", "serve"]

logger = logging.getLogger(__name__)

#: Largest accepted request body (16 MiB ~= a full MAX_BATCH_SIZE batch).
_MAX_BODY_BYTES = 16 * 1024 * 1024


class SynopsisHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`QueryService`.

    ``reuse_port=True`` sets ``SO_REUSEPORT`` before binding, so multiple
    worker processes can listen on the same ``(host, port)`` and let the
    kernel balance connections between them.  Raises ``OSError`` on
    platforms without ``SO_REUSEPORT`` — callers should fall back to a
    single worker (the CLI does).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        reuse_port: bool = False,
    ):
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise OSError("SO_REUSEPORT is not supported on this platform")
        # Attributes used during super().__init__ (which binds) must be
        # set first.
        self.reuse_port = reuse_port
        self.service = service
        super().__init__(address, _Handler)

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.1"
    protocol_version = "HTTP/1.1"
    # Socket timeout (applied per connection by http.server): a client
    # that stalls mid-request times out instead of pinning its handler
    # thread forever (slowloris).
    timeout = 30
    # TCP_NODELAY: responses are written as two packets (headers, then
    # body); with Nagle enabled the second write waits for the client's
    # delayed ACK of the first, turning every keep-alive request into a
    # ~40 ms round trip.  Measured on loopback: 41.8 ms -> 0.6 ms per
    # 200-rect query batch.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        # GET handlers never read a body; drain any the client attached
        # so leftover bytes cannot desynchronise a keep-alive connection.
        self._dispatch(
            {
                "/health": self._get_health,
                "/releases": self._get_releases,
            },
            drain_body=True,
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(
            {
                "/releases": self._post_releases,
                "/query": self._post_query,
            }
        )

    def _dispatch(self, routes, drain_body: bool = False) -> None:
        path = self.path.split("?", 1)[0]  # tolerate query strings
        handler = routes.get(path.rstrip("/") or "/")
        try:
            if drain_body:
                self._drain_body()
            if handler is None:
                raise ServiceError(
                    f"no route {self.command} {self.path}; "
                    f"available: {', '.join(sorted(routes))}",
                    status=404,
                )
            handler()
        except ServiceError as error:
            self._send_json(error.status, error.to_payload())
        except (TimeoutError, ConnectionError):
            # Client stalled or vanished mid-request; there is no one
            # left to answer — just release the connection.
            self.close_connection = True
        except Exception:  # pragma: no cover - defensive last resort
            logger.exception("unhandled error serving %s %s", self.command, self.path)
            self._send_json(
                500, {"error": "InternalError", "detail": "internal server error"}
            )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _get_health(self) -> None:
        service = self.server.service
        self._send_json(
            200,
            {
                "status": "ok",
                "releases_cached": len(service.store.cached_keys()),
                **service.stats(),
            },
        )

    def _get_releases(self) -> None:
        self._send_json(200, self.server.service.store.to_payload())

    def _post_releases(self) -> None:
        request = parse_build_request(self._read_json())
        synopsis, built = self.server.service.store.build(
            request.key, force=request.force
        )
        self._send_json(
            201 if built else 200,
            {
                "key": request.key.to_payload(),
                "kind": type(synopsis).__name__,
                "built": built,
                "total_estimate": float(synopsis.total()),
            },
        )

    def _post_query(self) -> None:
        content_type = (self.headers.get("Content-Type") or "").split(";", 1)[0]
        if content_type.strip().lower() == protocol.CONTENT_TYPE:
            request = protocol.decode_query(self._read_body())
        else:
            request = parse_query_request(self._parse_json(self._read_body()))
        result = self.server.service.answer(
            request.key, request.boxes, clamp=request.clamp
        )
        accept = self.headers.get("Accept") or ""
        if protocol.CONTENT_TYPE in accept.lower():
            self._send_bytes(
                200,
                protocol.encode_answer(result.estimates, clamp=request.clamp),
                protocol.CONTENT_TYPE,
                extra_headers={
                    "X-Build-Ms": f"{result.build_ms:.3f}",
                    "X-Answer-Ms": f"{result.answer_ms:.3f}",
                    "X-Answer-Cached": "1" if result.cached else "0",
                },
            )
        else:
            self._send_json(200, result.to_payload())

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _drain_body(self) -> None:
        """Consume a request body a handler will not read.

        Raises :class:`ValidationError` (a clean 400, connection closed)
        when the ``Content-Length`` header is malformed or oversized: in
        either case the body's true extent is unknowable or not worth
        reading, so the connection cannot be resynchronised — but the
        client still deserves an answer, not an aborted socket.
        """
        raw = self.headers.get("Content-Length", 0) or 0
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise ValidationError(
                f"malformed Content-Length header {raw!r}"
            ) from None
        if length > _MAX_BODY_BYTES:
            # Not worth reading gigabytes to keep one connection alive.
            self.close_connection = True
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)

    def _read_body(self) -> bytes:
        """Read the request body, enforcing presence and the size cap."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise ValidationError("malformed Content-Length header") from None
        if length <= 0:
            raise ValidationError("request requires a body")
        if length > _MAX_BODY_BYTES:
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length)

    @staticmethod
    def _parse_json(body: bytes):
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise ValidationError(f"request body is not valid JSON: {error}") from None

    def _read_json(self):
        return self._parse_json(self._read_body())

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_bytes(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths may leave the request body unread; on a
            # keep-alive connection those bytes would be parsed as the
            # next request line.  Closing keeps the protocol in sync.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8731,
    reuse_port: bool = False,
) -> SynopsisHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks a free port).

    The caller owns the loop: call ``serve_forever()`` (blocking) or run
    it on a thread and ``shutdown()`` when done, as the tests do.
    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so several worker
    processes can share one listening address.
    """
    return SynopsisHTTPServer((host, port), service, reuse_port=reuse_port)
