"""Stdlib-only HTTP adapter for the serving layer.

A thin HTTP front end (``http.server``; no web framework) over
:class:`~repro.service.query_service.QueryService`, dispatched through a
declarative :class:`~repro.service.router.Router` table:

====== ================= ===============================================
Method Path              Meaning
====== ================= ===============================================
GET    /health           liveness + cache/fault counters + tenant stats
GET    /releases         cached + persisted keys, budgets, store stats
POST   /releases         build (or fetch) a release; 201 when a fit ran
POST   /query            answer a batch of rectangles from one release
POST   /ingest           durably stage a point batch; may re-release
POST   /datasets         register a dataset under the caller's tenant
GET    /datasets         page through the tenant's registrations
GET    /datasets/{name}  one registration's metadata
DELETE /datasets/{name}  drop a registration (metadata only)
====== ================= ===============================================

**Tenancy.**  Every request resolves to a tenant before it touches data.
With ``--auth off`` (the default) an attached
:class:`~repro.service.auth.NullAuthenticator` maps every request to the
implicit ``default`` tenant and the server behaves exactly as the
single-operator service always did.  With ``--auth require`` the
:class:`~repro.service.auth.ApiKeyAuthenticator` demands
``Authorization: Bearer rk_<id>.<secret>`` and resolves it against the
metadata catalog; missing credentials answer ``401`` +
``WWW-Authenticate: Bearer``, bad ones ``403``.  ``GET /health`` is
exempt from both authentication *and* admission control — probes must
work precisely when the service is locked down or saturated.  Each
non-default tenant lazily gets its own
:class:`~repro.service.store.SynopsisStore` partition (archives and
ledger under ``<store_dir>/tenants/<tenant>``, budget rows scoped in the
shared catalog), its own :class:`QueryService`, and — when ingestion is
enabled — its own :class:`~repro.service.ingest.IngestManager` with
per-tenant WALs, so one tenant exhausting its privacy budget (409s)
never perturbs another tenant's builds, queries, or ingestion.

``POST /ingest`` (servers started with ``--ingest``) appends the batch
to the write-ahead log before acknowledging, applies the drift/staleness
refresh policy, and answers 200 — or **409** when a required refresh was
refused by the budget: the batch is still durably staged (the report
says ``"persisted": true``) and the last good release keeps serving,
marked stale.  Queries against a release with pending ingested points
carry ``X-Synopsis-Stale: 1`` and ``X-Pending-Points`` headers (and a
``staleness`` block in JSON responses); ``/health`` reports the full
ingest state.  503 responses that a client can wait out (quarantined
release pending rebuild, shed load) carry ``Retry-After``.

Request/response bodies are JSON by default; see
:mod:`repro.service.schemas` for the request fields.  ``POST /query``
additionally negotiates the binary batch protocol
(:mod:`repro.service.protocol`) by ``Content-Type`` — a request sent as
``application/x-repro-batch`` is decoded zero-copy from the binary frame
— and by ``Accept`` — a client that accepts the binary type gets its
estimates back as a binary answer frame, with the timing split mirrored
into ``X-Build-Ms`` / ``X-Answer-Ms`` / ``X-Answer-Cached`` response
headers.  Errors come back as JSON ``{"error": <class>, "detail":
<message>}`` on every path — including routing misses: an unknown path
is a 404 whose detail lists every registered route, and a known path
under the wrong method (any verb, even ones this server never defined)
is a 405 with an ``Allow`` header, never
``BaseHTTPRequestHandler``'s plain-text defaults.

**Failure model.**  The server is a ``ThreadingHTTPServer`` (one thread
per connection), wrapped in three defenses so overload and abuse degrade
predictably instead of piling up threads:

* **Admission control** — routes flagged ``gated`` (the expensive POSTs
  and DELETEs) pass a bounded in-flight gate
  (:class:`~repro.service.telemetry.AdmissionController`): at most
  ``max_inflight`` requests execute, ``queue_depth`` more may wait, and
  the rest are shed with ``429`` + ``Retry-After`` in microseconds.
  GETs (health checks, listings) bypass the gate — monitoring must keep
  working precisely when the service is saturated.
* **Per-request deadlines** — every request gets a
  :class:`~repro.service.telemetry.Deadline` of ``request_deadline_ms``
  threaded through the build and answer paths; expiry answers ``504``.
  Requests may tighten (never extend) it via a ``deadline_ms`` body
  field.
* **Slow-client bounds** — all socket reads go through a guarded reader
  that enforces one wall-clock budget per request (headers *and* body)
  and a total header-byte cap, so a slowloris drip-feeding bytes is cut
  off at the deadline instead of pinning a thread per connection.

For multi-core serving, ``reuse_port=True`` lets several processes bind
the same address via ``SO_REUSEPORT`` and share the accept load (see
:mod:`repro.service.cli`'s ``--workers``, which also supervises and
respawns crashed workers).
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service import faultinject, protocol
from repro.service.auth import Authenticator, NullAuthenticator
from repro.service.catalog import DEFAULT_TENANT, Catalog
from repro.service.errors import (
    AuthForbidden,
    AuthRequired,
    DeadlineExpired,
    IngestDisabled,
    MethodNotAllowed,
    ServerOverloaded,
    ServiceError,
    ValidationError,
)
from repro.service.query_service import QueryService
from repro.service.router import Router
from repro.service.schemas import (
    parse_build_request,
    parse_dataset_list_query,
    parse_dataset_request,
    parse_ingest_request,
    parse_query_request,
)
from repro.service.telemetry import AdmissionController, Deadline, LatencyHistogram

__all__ = ["SynopsisHTTPServer", "serve"]

logger = logging.getLogger(__name__)

#: Largest accepted request body (16 MiB ~= a full MAX_BATCH_SIZE batch).
_MAX_BODY_BYTES = 16 * 1024 * 1024

#: Longest request line accepted (mirrors http.server's own bound).
_MAX_REQUEST_LINE = 65536

#: Seconds a request may wait for an admission slot when deadlines are
#: disabled; with deadlines on, the queue wait is bounded by the deadline.
_DEFAULT_QUEUE_WAIT_S = 2.0


@dataclass
class _TenantContext:
    """One tenant's serving surface: its service and optional ingest."""

    service: QueryService
    ingest: object = None


class SynopsisHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`QueryService`.

    ``reuse_port=True`` sets ``SO_REUSEPORT`` before binding, so multiple
    worker processes can listen on the same ``(host, port)`` and let the
    kernel balance connections between them.  Raises ``OSError`` on
    platforms without ``SO_REUSEPORT`` — callers should fall back to a
    single worker (the CLI does).

    Parameters
    ----------
    max_inflight:
        Bound on concurrently executing gated requests (0 disables the
        admission gate).
    queue_depth:
        How many admitted-but-waiting requests may queue for a slot
        before new arrivals are shed with 429.
    request_deadline_ms:
        Per-request wall-clock budget threaded through build and answer
        paths; expiry answers 504 (0 disables deadlines).
    read_timeout:
        Per-request budget, in seconds, for reading the request off the
        socket (headers plus body together) — the slowloris bound.
    max_header_bytes:
        Cap on total request-line + header bytes per request.
    authenticator:
        Resolves request headers to a tenant id; defaults to
        :class:`~repro.service.auth.NullAuthenticator` (everyone is the
        ``default`` tenant).
    catalog:
        Optional :class:`~repro.service.catalog.Catalog`.  Required for
        dataset registration endpoints and for serving any tenant other
        than ``default``.
    tenant_factory:
        Test hook: ``tenant_factory(tenant) -> _TenantContext`` replaces
        the default per-tenant store/service/ingest construction.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        reuse_port: bool = False,
        max_inflight: int = 64,
        queue_depth: int = 64,
        request_deadline_ms: float = 30_000.0,
        read_timeout: float = 30.0,
        max_header_bytes: int = 32 * 1024,
        ingest=None,
        authenticator: Authenticator | None = None,
        catalog: Catalog | None = None,
        tenant_factory=None,
    ):
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise OSError("SO_REUSEPORT is not supported on this platform")
        # Attributes used during super().__init__ (which binds) must be
        # set first.
        self.reuse_port = reuse_port
        self.service = service
        #: Optional IngestManager; None = ingestion disabled (503s).
        self.ingest = ingest
        self.request_deadline_ms = float(request_deadline_ms)
        self.read_timeout = float(read_timeout)
        self.max_header_bytes = int(max_header_bytes)
        self.admission = AdmissionController(max_inflight, queue_depth)
        self.latency = LatencyHistogram()
        self.authenticator = (
            authenticator if authenticator is not None else NullAuthenticator()
        )
        self.catalog = catalog
        self.tenant_factory = tenant_factory
        self._tenants: dict[str, _TenantContext] = {
            DEFAULT_TENANT: _TenantContext(service=service, ingest=ingest)
        }
        self._tenant_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._deadline_expired = 0
        self._slow_clients_closed = 0
        self._auth_rejected = 0
        super().__init__(address, _Handler)

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Tenancy
    # ------------------------------------------------------------------

    def tenant_context(self, tenant: str) -> _TenantContext:
        """The (lazily created) serving context for ``tenant``.

        The default tenant's context is the service/ingest pair the
        server was constructed with; any other tenant gets a partitioned
        store + service (+ per-tenant ingest manager when ingestion is
        on), created once under the lock and cached for the server's
        lifetime.
        """
        context = self._tenants.get(tenant)
        if context is not None:
            return context
        with self._tenant_lock:
            context = self._tenants.get(tenant)
            if context is None:
                context = self._make_context(tenant)
                self._tenants[tenant] = context
            return context

    def _make_context(self, tenant: str) -> _TenantContext:
        if self.tenant_factory is not None:
            return self.tenant_factory(tenant)
        if self.catalog is None:
            raise ServiceError(
                "multi-tenant serving requires a metadata catalog; "
                "start the server with --catalog",
                status=503,
            )
        store = self.service.store.for_tenant(tenant)
        service = self.service.for_store(store)
        ingest = None
        if self.ingest is not None and store.store_dir is not None:
            ingest = self.ingest.for_store(store)
        return _TenantContext(service=service, ingest=ingest)

    def tenants_payload(self) -> dict:
        """Per-tenant serving counters for ``/health``."""
        with self._tenant_lock:
            items = sorted(self._tenants.items())
        return {tenant: context.service.tenant_stats() for tenant, context in items}

    # ------------------------------------------------------------------
    # Fault accounting (handler threads call these)
    # ------------------------------------------------------------------

    def new_deadline(self) -> Deadline | None:
        if self.request_deadline_ms <= 0:
            return None
        return Deadline(self.request_deadline_ms)

    def note_deadline_expired(self) -> None:
        with self._counter_lock:
            self._deadline_expired += 1

    def note_slow_client(self) -> None:
        with self._counter_lock:
            self._slow_clients_closed += 1

    def note_auth_rejected(self) -> None:
        with self._counter_lock:
            self._auth_rejected += 1

    def fault_payload(self) -> dict:
        """The `/health` fault block: shedding, deadlines, quarantines."""
        with self._counter_lock:
            deadline_expired = self._deadline_expired
            slow_clients = self._slow_clients_closed
            auth_rejected = self._auth_rejected
        store = self.service.store
        return {
            **self.admission.to_payload(),
            "deadline_expired": deadline_expired,
            "slow_clients_closed": slow_clients,
            "auth_rejected": auth_rejected,
            "request_deadline_ms": self.request_deadline_ms,
            "quarantined": store.stats.quarantined,
            "ledger_corrupt": store.ledger_corrupt is not None,
        }

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait (bounded) for in-flight requests to finish; True if idle.

        Called after ``shutdown()`` during graceful termination: the
        listener has stopped accepting, and this waits for the admitted
        requests to complete before the process exits.
        """
        give_up = time.monotonic() + timeout
        while self.admission.inflight() > 0:
            if time.monotonic() >= give_up:
                return False
            time.sleep(0.05)
        return True


class _GuardedReader:
    """Deadline- and byte-bounded wrapper over a request's ``rfile``.

    One wall-clock budget covers *all* reads of a request — request
    line, headers, and body — so a client dripping one byte per
    29 seconds cannot extend its welcome indefinitely (each individual
    ``recv`` resets a plain socket timeout; the budget here does not
    reset).  Reads go byte-by-byte (headers) or buffer-by-buffer (body)
    through the underlying buffered reader, re-arming the socket timeout
    to the remaining budget so no single blocking call can overshoot.
    Header bytes are additionally capped: past ``max_header_bytes`` the
    connection is closed without a response (the peer is by definition
    not a well-behaved client).
    """

    def __init__(self, rfile, connection, read_timeout, max_header_bytes, on_abuse):
        self._rfile = rfile
        self._connection = connection
        self._read_timeout = read_timeout
        self._max_header_bytes = max_header_bytes
        self._on_abuse = on_abuse
        self._expires_at = time.monotonic() + read_timeout
        self._header_bytes = 0

    def begin_request(self) -> None:
        """Reset the read budget; called once per keep-alive request."""
        self._expires_at = time.monotonic() + self._read_timeout
        self._header_bytes = 0

    def _arm(self) -> None:
        remaining = self._expires_at - time.monotonic()
        if remaining <= 0:
            self._on_abuse()
            raise TimeoutError("per-request read budget exhausted")
        # CPython implements socket timeouts per call (no syscall here),
        # so re-arming each read is cheap.
        self._connection.settimeout(min(self._read_timeout, remaining))

    def readline(self, limit: int = -1) -> bytes:
        """A header/request line; the budget binds every blocking read.

        ``peek`` is the only call that can block (one ``recv`` when the
        buffer is empty), so arming before it bounds a drip-feeding
        client exactly as a byte-wise loop would — but a header line
        that already sits in the buffer is consumed in one C-speed
        ``find`` + ``read`` instead of one Python iteration per byte.
        """
        if limit < 0:
            limit = _MAX_REQUEST_LINE + 1
        faultinject.fire("server.read", phase="headers")
        line = bytearray()
        try:
            while len(line) < limit:
                self._arm()
                buffered = self._rfile.peek(1)
                if not buffered:
                    break
                take = min(len(buffered), limit - len(line))
                newline = buffered.find(b"\n", 0, take)
                if newline >= 0:
                    take = newline + 1
                line += self._rfile.read(take)
                if line.endswith(b"\n"):
                    break
        except TimeoutError:
            self._on_abuse()
            raise
        self._header_bytes += len(line)
        if self._header_bytes > self._max_header_bytes:
            self._on_abuse()
            raise TimeoutError(
                f"request line + headers exceed {self._max_header_bytes} bytes"
            )
        return bytes(line)

    def read(self, size: int) -> bytes:
        """Up to ``size`` body bytes, one buffered read per arm."""
        faultinject.fire("server.read", phase="body")
        chunks = []
        remaining = size
        try:
            while remaining > 0:
                self._arm()
                chunk = self._rfile.read1(remaining)
                if not chunk:
                    break
                chunks.append(chunk)
                remaining -= len(chunk)
        except TimeoutError:
            self._on_abuse()
            raise
        return b"".join(chunks)

    @property
    def closed(self) -> bool:
        return self._rfile.closed

    def close(self) -> None:
        self._rfile.close()

    def flush(self) -> None:  # pragma: no cover - StreamRequestHandler API
        pass


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.3"
    protocol_version = "HTTP/1.1"
    # TCP_NODELAY: responses are written as two packets (headers, then
    # body); with Nagle enabled the second write waits for the client's
    # delayed ACK of the first, turning every keep-alive request into a
    # ~40 ms round trip.  Measured on loopback: 41.8 ms -> 0.6 ms per
    # 200-rect query batch.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        # The per-connection socket timeout (socketserver applies
        # self.timeout in super().setup()); the guarded reader then
        # tightens it per read so one request's total read time is
        # bounded, not just each recv.
        self.timeout = self.server.read_timeout
        super().setup()
        self.rfile = _GuardedReader(
            self.rfile,
            self.connection,
            self.server.read_timeout,
            self.server.max_header_bytes,
            self.server.note_slow_client,
        )

    def handle_one_request(self) -> None:
        # Fresh read budget per keep-alive request.  A TimeoutError
        # raised by the guard during the header phase is caught by
        # BaseHTTPRequestHandler.handle_one_request, which closes the
        # connection — the right answer to an abusive peer.
        if isinstance(self.rfile, _GuardedReader):
            self.rfile.begin_request()
        super().handle_one_request()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch()

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch()

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch()

    def __getattr__(self, name: str):
        # http.server answers verbs without a do_<VERB> method with a
        # plain-text 501.  Routing every parseable verb through the
        # router instead turns "PUT /releases" into a structured JSON
        # 405 carrying an Allow header (or a 404 for unknown paths).
        if name.startswith("do_"):
            return self._dispatch
        raise AttributeError(name)

    def _dispatch(self) -> None:
        server = self.server
        start = time.perf_counter()
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        self._query_params = {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(query).items()
        }
        self._deadline = server.new_deadline()
        self._tenant = DEFAULT_TENANT
        self._context = None
        try:
            route, params = _ROUTER.resolve(self.command, path)
            # Middleware, in order: authentication resolves the tenant
            # (exempt routes stay on the default tenant), the tenant's
            # context is materialised, gated routes pass admission, and
            # unread bodies are drained so keep-alive stays in sync.
            if not route.auth_exempt:
                self._tenant = server.authenticator.authenticate(self.headers)
            self._context = server.tenant_context(self._tenant)
            admitted = False
            if route.gated and server.admission.enabled:
                wait = (
                    self._deadline.remaining()
                    if self._deadline is not None
                    else _DEFAULT_QUEUE_WAIT_S
                )
                admitted = server.admission.try_enter(timeout=wait)
                if not admitted:
                    raise ServerOverloaded(
                        f"server at capacity "
                        f"({server.admission.max_inflight} in flight, "
                        f"{server.admission.queue_depth} queued); request shed"
                    )
            try:
                if route.drain_body:
                    self._drain_body()
                route.handler(self, **params)
            finally:
                if admitted:
                    server.admission.leave()
        except ServerOverloaded as error:
            self._send_json(
                error.status,
                error.to_payload(),
                extra_headers={"Retry-After": str(error.retry_after)},
            )
        except DeadlineExpired as error:
            server.note_deadline_expired()
            self._send_json(error.status, error.to_payload())
        except ServiceError as error:
            headers: dict[str, str] = {}
            retry_after = getattr(error, "retry_after", None)
            if retry_after is not None:
                headers["Retry-After"] = str(retry_after)
            if isinstance(error, MethodNotAllowed) and error.allow:
                headers["Allow"] = ", ".join(error.allow)
            if isinstance(error, (AuthRequired, AuthForbidden)):
                server.note_auth_rejected()
            if isinstance(error, AuthRequired):
                headers["WWW-Authenticate"] = "Bearer"
            self._send_json(
                error.status, error.to_payload(), extra_headers=headers or None
            )
        except (TimeoutError, ConnectionError):
            # Client stalled or vanished mid-request; there is no one
            # left to answer — just release the connection.  (The
            # guarded reader already counted a stall.)
            self.close_connection = True
        except Exception:  # pragma: no cover - defensive last resort
            logger.exception("unhandled error serving %s %s", self.command, self.path)
            self._send_json(
                500, {"error": "InternalError", "detail": "internal server error"}
            )
        finally:
            server.latency.observe((time.perf_counter() - start) * 1e3)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _get_health(self) -> None:
        server = self.server
        context = self._context
        service = context.service
        self._send_json(
            200,
            {
                "status": "ok",
                "pid": os.getpid(),
                "releases_cached": len(service.store.cached_keys()),
                **service.stats(),
                **server.fault_payload(),
                "memory": service.store.memory_payload(),
                "latency_ms": server.latency.to_payload(),
                "ingest": (
                    context.ingest.to_payload()
                    if context.ingest is not None
                    else {"enabled": False}
                ),
                "tenants": server.tenants_payload(),
            },
        )

    def _get_releases(self) -> None:
        self._send_json(200, self._context.service.store.to_payload())

    def _effective_deadline(self, requested_ms) -> Deadline | None:
        """The dispatch deadline, tightened by the request's own budget."""
        deadline = self._deadline
        if requested_ms is None:
            return deadline
        if deadline is None:
            return Deadline(requested_ms)
        return deadline.tighten(requested_ms)

    def _post_releases(self) -> None:
        request = parse_build_request(self._read_json())
        synopsis, built = self._context.service.store.build(
            request.key,
            force=request.force,
            deadline=self._effective_deadline(request.deadline_ms),
        )
        self._send_json(
            201 if built else 200,
            {
                "key": request.key.to_payload(),
                "kind": type(synopsis).__name__,
                "built": built,
                "total_estimate": float(synopsis.total()),
            },
        )

    def _post_query(self) -> None:
        content_type = (self.headers.get("Content-Type") or "").split(";", 1)[0]
        if content_type.strip().lower() == protocol.CONTENT_TYPE:
            request = protocol.decode_query(self._read_body())
        else:
            request = parse_query_request(self._parse_json(self._read_body()))
        result = self._context.service.answer(
            request.key,
            request.boxes,
            clamp=request.clamp,
            deadline=self._effective_deadline(
                getattr(request, "deadline_ms", None)
            ),
        )
        # A release with durably staged points it does not yet reflect
        # still answers — streaming must not break serving — but says so:
        # the client can decide whether stale-but-private is acceptable.
        staleness = None
        if self._context.ingest is not None:
            staleness = self._context.ingest.staleness(request.key)
        stale_headers = {}
        if staleness is not None:
            stale_headers = {
                "X-Synopsis-Stale": "1",
                "X-Pending-Points": str(staleness["pending_points"]),
            }
        accept = self.headers.get("Accept") or ""
        if protocol.CONTENT_TYPE in accept.lower():
            self._send_bytes(
                200,
                protocol.encode_answer(result.estimates, clamp=request.clamp),
                protocol.CONTENT_TYPE,
                extra_headers={
                    "X-Build-Ms": f"{result.build_ms:.3f}",
                    "X-Answer-Ms": f"{result.answer_ms:.3f}",
                    "X-Answer-Cached": "1" if result.cached else "0",
                    **stale_headers,
                },
            )
        else:
            payload = result.to_payload()
            if staleness is not None:
                payload["staleness"] = staleness
            self._send_json(200, payload, extra_headers=stale_headers or None)

    def _post_ingest(self) -> None:
        manager = self._context.ingest
        if manager is None:
            raise IngestDisabled(
                "streaming ingestion is not enabled on this server; "
                "start it with --ingest (requires --store-dir and a "
                "single worker)"
            )
        request = parse_ingest_request(self._read_json())
        report = manager.ingest(
            request.dataset, request.seed, request.batch_id, request.points
        )
        # The batch outlives this response whatever the refresh outcome:
        # it was fsync'd to the WAL before the policy ran.
        report["persisted"] = True
        # A refused refresh is a 409: the caller's data is safe but the
        # releases it should update are now provably stale and the
        # budget cannot pay for a refresh.  The report names each
        # refused release and why.
        self._send_json(409 if report["refused"] else 200, report)

    def _require_catalog(self) -> Catalog:
        catalog = self.server.catalog
        if catalog is None:
            raise ServiceError(
                "dataset registration requires a metadata catalog; "
                "start the server with --catalog",
                status=503,
            )
        return catalog

    def _post_datasets(self) -> None:
        catalog = self._require_catalog()
        request = parse_dataset_request(self._read_json())
        payload = catalog.register_dataset(
            self._tenant, request.name, request.spec, request.description
        )
        self._send_json(201, {"dataset": payload})

    def _get_datasets(self) -> None:
        catalog = self._require_catalog()
        limit, cursor = parse_dataset_list_query(self._query_params)
        rows, next_cursor = catalog.list_datasets(
            self._tenant, limit=limit, cursor=cursor
        )
        self._send_json(
            200,
            {
                "datasets": rows,
                "next_cursor": (
                    str(next_cursor) if next_cursor is not None else None
                ),
            },
        )

    def _get_dataset(self, name: str) -> None:
        catalog = self._require_catalog()
        self._send_json(200, {"dataset": catalog.get_dataset(self._tenant, name)})

    def _delete_dataset(self, name: str) -> None:
        catalog = self._require_catalog()
        catalog.delete_dataset(self._tenant, name)
        self._send_json(200, {"deleted": name})

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _drain_body(self) -> None:
        """Consume a request body a handler will not read.

        Raises :class:`ValidationError` (a clean 400, connection closed)
        when the ``Content-Length`` header is malformed or oversized: in
        either case the body's true extent is unknowable or not worth
        reading, so the connection cannot be resynchronised — but the
        client still deserves an answer, not an aborted socket.
        """
        raw = self.headers.get("Content-Length", 0) or 0
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise ValidationError(
                f"malformed Content-Length header {raw!r}"
            ) from None
        if length > _MAX_BODY_BYTES:
            # Not worth reading gigabytes to keep one connection alive.
            self.close_connection = True
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)

    def _read_body(self) -> bytes:
        """Read the request body, enforcing presence, size, and pace.

        The guarded reader bounds the wall-clock spent here (a client
        trickling its body hits the per-request read budget, not a
        per-``recv`` timeout that resets forever), and a short body —
        client closed before sending ``Content-Length`` bytes — is a
        clean connection drop, never a half-parsed request.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise ValidationError("malformed Content-Length header") from None
        if length <= 0:
            raise ValidationError("request requires a body")
        if length > _MAX_BODY_BYTES:
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        body = self.rfile.read(length)
        if len(body) < length:
            raise ConnectionError(
                f"client closed after {len(body)} of {length} body bytes"
            )
        return body

    @staticmethod
    def _parse_json(body: bytes):
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise ValidationError(f"request body is not valid JSON: {error}") from None

    def _read_json(self):
        return self._parse_json(self._read_body())

    def _send_json(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            extra_headers=extra_headers,
        )

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths may leave the request body unread; on a
            # keep-alive connection those bytes would be parsed as the
            # next request line.  Closing keeps the protocol in sync.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)


def _build_router() -> Router:
    """The server's dispatch table (shared, immutable after import).

    Expensive mutating routes are ``gated`` (admission-controlled) and
    parse their own bodies (``drain_body=False``); listings drain any
    stray body so keep-alive stays in sync.  ``/health`` is the one
    ``auth_exempt`` route: probes must answer on a locked-down server.
    """
    router = Router()
    router.add("GET", "/health", _Handler._get_health, auth_exempt=True)
    router.add("GET", "/releases", _Handler._get_releases)
    router.add(
        "POST", "/releases", _Handler._post_releases, gated=True, drain_body=False
    )
    router.add("POST", "/query", _Handler._post_query, gated=True, drain_body=False)
    router.add("POST", "/ingest", _Handler._post_ingest, gated=True, drain_body=False)
    router.add(
        "POST", "/datasets", _Handler._post_datasets, gated=True, drain_body=False
    )
    router.add("GET", "/datasets", _Handler._get_datasets)
    router.add("GET", "/datasets/{name}", _Handler._get_dataset)
    router.add("DELETE", "/datasets/{name}", _Handler._delete_dataset, gated=True)
    return router


_ROUTER = _build_router()


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8731,
    reuse_port: bool = False,
    **fault_options,
) -> SynopsisHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks a free port).

    The caller owns the loop: call ``serve_forever()`` (blocking) or run
    it on a thread and ``shutdown()`` when done, as the tests do.
    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so several worker
    processes can share one listening address.  ``fault_options`` are
    forwarded to :class:`SynopsisHTTPServer` (``max_inflight``,
    ``queue_depth``, ``request_deadline_ms``, ``read_timeout``,
    ``max_header_bytes``, ``ingest``, ``authenticator``, ``catalog``).
    """
    return SynopsisHTTPServer(
        (host, port), service, reuse_port=reuse_port, **fault_options
    )
