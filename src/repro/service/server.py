"""Stdlib-only HTTP adapter for the serving layer.

A thin HTTP front end (``http.server``; no web framework) over
:class:`~repro.service.query_service.QueryService`:

====== ============ ====================================================
Method Path         Meaning
====== ============ ====================================================
GET    /health      liveness + cache/fault counters + latency percentiles
GET    /releases    cached + persisted keys, budgets, store stats
POST   /releases    build (or fetch) a release; 201 when a fit happened
POST   /query       answer a batch of rectangles from one release
POST   /ingest      durably stage a point batch; may trigger re-release
====== ============ ====================================================

``POST /ingest`` (servers started with ``--ingest``) appends the batch
to the write-ahead log before acknowledging, applies the drift/staleness
refresh policy, and answers 200 — or **409** when a required refresh was
refused by the budget: the batch is still durably staged (the report
says ``"persisted": true``) and the last good release keeps serving,
marked stale.  Queries against a release with pending ingested points
carry ``X-Synopsis-Stale: 1`` and ``X-Pending-Points`` headers (and a
``staleness`` block in JSON responses); ``/health`` reports the full
ingest state.  503 responses that a client can wait out (quarantined
release pending rebuild, shed load) carry ``Retry-After``.

Request/response bodies are JSON by default; see
:mod:`repro.service.schemas` for the request fields.  ``POST /query``
additionally negotiates the binary batch protocol
(:mod:`repro.service.protocol`) by ``Content-Type`` — a request sent as
``application/x-repro-batch`` is decoded zero-copy from the binary frame
— and by ``Accept`` — a client that accepts the binary type gets its
estimates back as a binary answer frame, with the timing split mirrored
into ``X-Build-Ms`` / ``X-Answer-Ms`` / ``X-Answer-Cached`` response
headers.  Errors come back as JSON ``{"error": <class>, "detail":
<message>}`` on every path, with the status each
:class:`~repro.service.errors.ServiceError` subclass carries (400
validation, 404 unknown release, 409 budget refused, 429 shed, 503
quarantined, 504 deadline).

**Failure model.**  The server is a ``ThreadingHTTPServer`` (one thread
per connection), wrapped in three defenses so overload and abuse degrade
predictably instead of piling up threads:

* **Admission control** — POST work passes a bounded in-flight gate
  (:class:`~repro.service.telemetry.AdmissionController`): at most
  ``max_inflight`` requests execute, ``queue_depth`` more may wait, and
  the rest are shed with ``429`` + ``Retry-After`` in microseconds.
  GETs (health checks, listings) bypass the gate — monitoring must keep
  working precisely when the service is saturated.
* **Per-request deadlines** — every request gets a
  :class:`~repro.service.telemetry.Deadline` of ``request_deadline_ms``
  threaded through the build and answer paths; expiry answers ``504``.
  Requests may tighten (never extend) it via a ``deadline_ms`` body
  field.
* **Slow-client bounds** — all socket reads go through a guarded reader
  that enforces one wall-clock budget per request (headers *and* body)
  and a total header-byte cap, so a slowloris drip-feeding bytes is cut
  off at the deadline instead of pinning a thread per connection.

For multi-core serving, ``reuse_port=True`` lets several processes bind
the same address via ``SO_REUSEPORT`` and share the accept load (see
:mod:`repro.service.cli`'s ``--workers``, which also supervises and
respawns crashed workers).
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service import faultinject, protocol
from repro.service.errors import (
    DeadlineExpired,
    IngestDisabled,
    ServerOverloaded,
    ServiceError,
    ValidationError,
)
from repro.service.query_service import QueryService
from repro.service.schemas import (
    parse_build_request,
    parse_ingest_request,
    parse_query_request,
)
from repro.service.telemetry import AdmissionController, Deadline, LatencyHistogram

__all__ = ["SynopsisHTTPServer", "serve"]

logger = logging.getLogger(__name__)

#: Largest accepted request body (16 MiB ~= a full MAX_BATCH_SIZE batch).
_MAX_BODY_BYTES = 16 * 1024 * 1024

#: Longest request line accepted (mirrors http.server's own bound).
_MAX_REQUEST_LINE = 65536

#: Seconds a request may wait for an admission slot when deadlines are
#: disabled; with deadlines on, the queue wait is bounded by the deadline.
_DEFAULT_QUEUE_WAIT_S = 2.0


class SynopsisHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`QueryService`.

    ``reuse_port=True`` sets ``SO_REUSEPORT`` before binding, so multiple
    worker processes can listen on the same ``(host, port)`` and let the
    kernel balance connections between them.  Raises ``OSError`` on
    platforms without ``SO_REUSEPORT`` — callers should fall back to a
    single worker (the CLI does).

    Parameters
    ----------
    max_inflight:
        Bound on concurrently executing POST requests (0 disables the
        admission gate).
    queue_depth:
        How many admitted-but-waiting requests may queue for a slot
        before new arrivals are shed with 429.
    request_deadline_ms:
        Per-request wall-clock budget threaded through build and answer
        paths; expiry answers 504 (0 disables deadlines).
    read_timeout:
        Per-request budget, in seconds, for reading the request off the
        socket (headers plus body together) — the slowloris bound.
    max_header_bytes:
        Cap on total request-line + header bytes per request.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        reuse_port: bool = False,
        max_inflight: int = 64,
        queue_depth: int = 64,
        request_deadline_ms: float = 30_000.0,
        read_timeout: float = 30.0,
        max_header_bytes: int = 32 * 1024,
        ingest=None,
    ):
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise OSError("SO_REUSEPORT is not supported on this platform")
        # Attributes used during super().__init__ (which binds) must be
        # set first.
        self.reuse_port = reuse_port
        self.service = service
        #: Optional IngestManager; None = ingestion disabled (503s).
        self.ingest = ingest
        self.request_deadline_ms = float(request_deadline_ms)
        self.read_timeout = float(read_timeout)
        self.max_header_bytes = int(max_header_bytes)
        self.admission = AdmissionController(max_inflight, queue_depth)
        self.latency = LatencyHistogram()
        self._counter_lock = threading.Lock()
        self._deadline_expired = 0
        self._slow_clients_closed = 0
        super().__init__(address, _Handler)

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Fault accounting (handler threads call these)
    # ------------------------------------------------------------------

    def new_deadline(self) -> Deadline | None:
        if self.request_deadline_ms <= 0:
            return None
        return Deadline(self.request_deadline_ms)

    def note_deadline_expired(self) -> None:
        with self._counter_lock:
            self._deadline_expired += 1

    def note_slow_client(self) -> None:
        with self._counter_lock:
            self._slow_clients_closed += 1

    def fault_payload(self) -> dict:
        """The `/health` fault block: shedding, deadlines, quarantines."""
        with self._counter_lock:
            deadline_expired = self._deadline_expired
            slow_clients = self._slow_clients_closed
        store = self.service.store
        return {
            **self.admission.to_payload(),
            "deadline_expired": deadline_expired,
            "slow_clients_closed": slow_clients,
            "request_deadline_ms": self.request_deadline_ms,
            "quarantined": store.stats.quarantined,
            "ledger_corrupt": store.ledger_corrupt is not None,
        }

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait (bounded) for in-flight requests to finish; True if idle.

        Called after ``shutdown()`` during graceful termination: the
        listener has stopped accepting, and this waits for the admitted
        requests to complete before the process exits.
        """
        give_up = time.monotonic() + timeout
        while self.admission.inflight() > 0:
            if time.monotonic() >= give_up:
                return False
            time.sleep(0.05)
        return True


class _GuardedReader:
    """Deadline- and byte-bounded wrapper over a request's ``rfile``.

    One wall-clock budget covers *all* reads of a request — request
    line, headers, and body — so a client dripping one byte per
    29 seconds cannot extend its welcome indefinitely (each individual
    ``recv`` resets a plain socket timeout; the budget here does not
    reset).  Reads go byte-by-byte (headers) or buffer-by-buffer (body)
    through the underlying buffered reader, re-arming the socket timeout
    to the remaining budget so no single blocking call can overshoot.
    Header bytes are additionally capped: past ``max_header_bytes`` the
    connection is closed without a response (the peer is by definition
    not a well-behaved client).
    """

    def __init__(self, rfile, connection, read_timeout, max_header_bytes, on_abuse):
        self._rfile = rfile
        self._connection = connection
        self._read_timeout = read_timeout
        self._max_header_bytes = max_header_bytes
        self._on_abuse = on_abuse
        self._expires_at = time.monotonic() + read_timeout
        self._header_bytes = 0

    def begin_request(self) -> None:
        """Reset the read budget; called once per keep-alive request."""
        self._expires_at = time.monotonic() + self._read_timeout
        self._header_bytes = 0

    def _arm(self) -> None:
        remaining = self._expires_at - time.monotonic()
        if remaining <= 0:
            self._on_abuse()
            raise TimeoutError("per-request read budget exhausted")
        # CPython implements socket timeouts per call (no syscall here),
        # so re-arming each read is cheap.
        self._connection.settimeout(min(self._read_timeout, remaining))

    def readline(self, limit: int = -1) -> bytes:
        """A header/request line, byte-wise so the budget binds."""
        if limit < 0:
            limit = _MAX_REQUEST_LINE + 1
        faultinject.fire("server.read", phase="headers")
        line = bytearray()
        try:
            while len(line) < limit:
                self._arm()
                byte = self._rfile.read(1)
                if not byte:
                    break
                line += byte
                if byte == b"\n":
                    break
        except TimeoutError:
            self._on_abuse()
            raise
        self._header_bytes += len(line)
        if self._header_bytes > self._max_header_bytes:
            self._on_abuse()
            raise TimeoutError(
                f"request line + headers exceed {self._max_header_bytes} bytes"
            )
        return bytes(line)

    def read(self, size: int) -> bytes:
        """Up to ``size`` body bytes, one buffered read per arm."""
        faultinject.fire("server.read", phase="body")
        chunks = []
        remaining = size
        try:
            while remaining > 0:
                self._arm()
                chunk = self._rfile.read1(remaining)
                if not chunk:
                    break
                chunks.append(chunk)
                remaining -= len(chunk)
        except TimeoutError:
            self._on_abuse()
            raise
        return b"".join(chunks)

    @property
    def closed(self) -> bool:
        return self._rfile.closed

    def close(self) -> None:
        self._rfile.close()

    def flush(self) -> None:  # pragma: no cover - StreamRequestHandler API
        pass


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.2"
    protocol_version = "HTTP/1.1"
    # TCP_NODELAY: responses are written as two packets (headers, then
    # body); with Nagle enabled the second write waits for the client's
    # delayed ACK of the first, turning every keep-alive request into a
    # ~40 ms round trip.  Measured on loopback: 41.8 ms -> 0.6 ms per
    # 200-rect query batch.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        # The per-connection socket timeout (socketserver applies
        # self.timeout in super().setup()); the guarded reader then
        # tightens it per read so one request's total read time is
        # bounded, not just each recv.
        self.timeout = self.server.read_timeout
        super().setup()
        self.rfile = _GuardedReader(
            self.rfile,
            self.connection,
            self.server.read_timeout,
            self.server.max_header_bytes,
            self.server.note_slow_client,
        )

    def handle_one_request(self) -> None:
        # Fresh read budget per keep-alive request.  A TimeoutError
        # raised by the guard during the header phase is caught by
        # BaseHTTPRequestHandler.handle_one_request, which closes the
        # connection — the right answer to an abusive peer.
        if isinstance(self.rfile, _GuardedReader):
            self.rfile.begin_request()
        super().handle_one_request()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        # GET handlers never read a body; drain any the client attached
        # so leftover bytes cannot desynchronise a keep-alive connection.
        # GETs bypass admission control: health checks and listings must
        # answer while the service is shedding load.
        self._dispatch(
            {
                "/health": self._get_health,
                "/releases": self._get_releases,
            },
            drain_body=True,
            gated=False,
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(
            {
                "/releases": self._post_releases,
                "/query": self._post_query,
                "/ingest": self._post_ingest,
            }
        )

    def _dispatch(self, routes, drain_body: bool = False, gated: bool = True) -> None:
        server = self.server
        start = time.perf_counter()
        path = self.path.split("?", 1)[0]  # tolerate query strings
        handler = routes.get(path.rstrip("/") or "/")
        self._deadline = server.new_deadline()
        try:
            admitted = False
            if gated and handler is not None and server.admission.enabled:
                wait = (
                    self._deadline.remaining()
                    if self._deadline is not None
                    else _DEFAULT_QUEUE_WAIT_S
                )
                admitted = server.admission.try_enter(timeout=wait)
                if not admitted:
                    raise ServerOverloaded(
                        f"server at capacity "
                        f"({server.admission.max_inflight} in flight, "
                        f"{server.admission.queue_depth} queued); request shed"
                    )
            try:
                if drain_body:
                    self._drain_body()
                if handler is None:
                    raise ServiceError(
                        f"no route {self.command} {self.path}; "
                        f"available: {', '.join(sorted(routes))}",
                        status=404,
                    )
                handler()
            finally:
                if admitted:
                    server.admission.leave()
        except ServerOverloaded as error:
            self._send_json(
                error.status,
                error.to_payload(),
                extra_headers={"Retry-After": str(error.retry_after)},
            )
        except DeadlineExpired as error:
            server.note_deadline_expired()
            self._send_json(error.status, error.to_payload())
        except ServiceError as error:
            retry_after = getattr(error, "retry_after", None)
            self._send_json(
                error.status,
                error.to_payload(),
                extra_headers=(
                    {"Retry-After": str(retry_after)}
                    if retry_after is not None
                    else None
                ),
            )
        except (TimeoutError, ConnectionError):
            # Client stalled or vanished mid-request; there is no one
            # left to answer — just release the connection.  (The
            # guarded reader already counted a stall.)
            self.close_connection = True
        except Exception:  # pragma: no cover - defensive last resort
            logger.exception("unhandled error serving %s %s", self.command, self.path)
            self._send_json(
                500, {"error": "InternalError", "detail": "internal server error"}
            )
        finally:
            server.latency.observe((time.perf_counter() - start) * 1e3)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _get_health(self) -> None:
        server = self.server
        service = server.service
        self._send_json(
            200,
            {
                "status": "ok",
                "pid": os.getpid(),
                "releases_cached": len(service.store.cached_keys()),
                **service.stats(),
                **server.fault_payload(),
                "memory": service.store.memory_payload(),
                "latency_ms": server.latency.to_payload(),
                "ingest": (
                    server.ingest.to_payload()
                    if server.ingest is not None
                    else {"enabled": False}
                ),
            },
        )

    def _get_releases(self) -> None:
        self._send_json(200, self.server.service.store.to_payload())

    def _effective_deadline(self, requested_ms) -> Deadline | None:
        """The dispatch deadline, tightened by the request's own budget."""
        deadline = self._deadline
        if requested_ms is None:
            return deadline
        if deadline is None:
            return Deadline(requested_ms)
        return deadline.tighten(requested_ms)

    def _post_releases(self) -> None:
        request = parse_build_request(self._read_json())
        synopsis, built = self.server.service.store.build(
            request.key,
            force=request.force,
            deadline=self._effective_deadline(request.deadline_ms),
        )
        self._send_json(
            201 if built else 200,
            {
                "key": request.key.to_payload(),
                "kind": type(synopsis).__name__,
                "built": built,
                "total_estimate": float(synopsis.total()),
            },
        )

    def _post_query(self) -> None:
        content_type = (self.headers.get("Content-Type") or "").split(";", 1)[0]
        if content_type.strip().lower() == protocol.CONTENT_TYPE:
            request = protocol.decode_query(self._read_body())
        else:
            request = parse_query_request(self._parse_json(self._read_body()))
        result = self.server.service.answer(
            request.key,
            request.boxes,
            clamp=request.clamp,
            deadline=self._effective_deadline(
                getattr(request, "deadline_ms", None)
            ),
        )
        # A release with durably staged points it does not yet reflect
        # still answers — streaming must not break serving — but says so:
        # the client can decide whether stale-but-private is acceptable.
        staleness = None
        if self.server.ingest is not None:
            staleness = self.server.ingest.staleness(request.key)
        stale_headers = {}
        if staleness is not None:
            stale_headers = {
                "X-Synopsis-Stale": "1",
                "X-Pending-Points": str(staleness["pending_points"]),
            }
        accept = self.headers.get("Accept") or ""
        if protocol.CONTENT_TYPE in accept.lower():
            self._send_bytes(
                200,
                protocol.encode_answer(result.estimates, clamp=request.clamp),
                protocol.CONTENT_TYPE,
                extra_headers={
                    "X-Build-Ms": f"{result.build_ms:.3f}",
                    "X-Answer-Ms": f"{result.answer_ms:.3f}",
                    "X-Answer-Cached": "1" if result.cached else "0",
                    **stale_headers,
                },
            )
        else:
            payload = result.to_payload()
            if staleness is not None:
                payload["staleness"] = staleness
            self._send_json(200, payload, extra_headers=stale_headers or None)

    def _post_ingest(self) -> None:
        manager = self.server.ingest
        if manager is None:
            raise IngestDisabled(
                "streaming ingestion is not enabled on this server; "
                "start it with --ingest (requires --store-dir and a "
                "single worker)"
            )
        request = parse_ingest_request(self._read_json())
        report = manager.ingest(
            request.dataset, request.seed, request.batch_id, request.points
        )
        # The batch outlives this response whatever the refresh outcome:
        # it was fsync'd to the WAL before the policy ran.
        report["persisted"] = True
        # A refused refresh is a 409: the caller's data is safe but the
        # releases it should update are now provably stale and the
        # budget cannot pay for a refresh.  The report names each
        # refused release and why.
        self._send_json(409 if report["refused"] else 200, report)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _drain_body(self) -> None:
        """Consume a request body a handler will not read.

        Raises :class:`ValidationError` (a clean 400, connection closed)
        when the ``Content-Length`` header is malformed or oversized: in
        either case the body's true extent is unknowable or not worth
        reading, so the connection cannot be resynchronised — but the
        client still deserves an answer, not an aborted socket.
        """
        raw = self.headers.get("Content-Length", 0) or 0
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise ValidationError(
                f"malformed Content-Length header {raw!r}"
            ) from None
        if length > _MAX_BODY_BYTES:
            # Not worth reading gigabytes to keep one connection alive.
            self.close_connection = True
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)

    def _read_body(self) -> bytes:
        """Read the request body, enforcing presence, size, and pace.

        The guarded reader bounds the wall-clock spent here (a client
        trickling its body hits the per-request read budget, not a
        per-``recv`` timeout that resets forever), and a short body —
        client closed before sending ``Content-Length`` bytes — is a
        clean connection drop, never a half-parsed request.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise ValidationError("malformed Content-Length header") from None
        if length <= 0:
            raise ValidationError("request requires a body")
        if length > _MAX_BODY_BYTES:
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        body = self.rfile.read(length)
        if len(body) < length:
            raise ConnectionError(
                f"client closed after {len(body)} of {length} body bytes"
            )
        return body

    @staticmethod
    def _parse_json(body: bytes):
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise ValidationError(f"request body is not valid JSON: {error}") from None

    def _read_json(self):
        return self._parse_json(self._read_body())

    def _send_json(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            extra_headers=extra_headers,
        )

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths may leave the request body unread; on a
            # keep-alive connection those bytes would be parsed as the
            # next request line.  Closing keeps the protocol in sync.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8731,
    reuse_port: bool = False,
    **fault_options,
) -> SynopsisHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks a free port).

    The caller owns the loop: call ``serve_forever()`` (blocking) or run
    it on a thread and ``shutdown()`` when done, as the tests do.
    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so several worker
    processes can share one listening address.  ``fault_options`` are
    forwarded to :class:`SynopsisHTTPServer` (``max_inflight``,
    ``queue_depth``, ``request_deadline_ms``, ``read_timeout``,
    ``max_header_bytes``, ``ingest``).
    """
    return SynopsisHTTPServer(
        (host, port), service, reuse_port=reuse_port, **fault_options
    )
