"""Streaming ingestion: durable staging, drift tracking, re-release policy.

:class:`IngestManager` is the service-tier owner of dataset evolution.
Its contract, end to end:

* **Durability first.**  Every ``POST /ingest`` batch is appended to the
  per-dataset :class:`~repro.service.wal.WriteAheadLog` *before* any
  in-memory state changes.  An acknowledged batch survives ``kill -9``;
  an unacknowledged one is truncated on replay and the client's retry
  (same ``batch_id``) restores it exactly once.

* **Build-vs-fill drift.**  Released synopses are static summaries of
  the data at fit time.  As points stream in, the manager *fills* them
  into the release's own partition (:meth:`~repro.core.synopsis.
  Synopsis.drift_cells`) and compares the fill distribution against the
  distribution the release itself predicts for the same cells — the
  build-vs-fill comparison of Dasu et al.'s kdq-tree change detector,
  with total-variation distance as the scalar drift signal.

* **Refresh policy.**  A release is re-fit through the normal
  :class:`~repro.service.store.SynopsisStore` path (budget ledger and
  all) when it has pending points and either drift crosses
  ``drift_threshold`` or the oldest pending point is older than
  ``staleness_ms``.  Refreshes spend *real* epsilon, so they are capped:
  at most ``epoch_budget_fraction`` of each dataset instance's total
  budget may go to ingest-triggered re-releases.  A refresh the budget
  cannot cover is *refused* — the batch stays durably staged, the last
  good release keeps serving (marked stale), and the refusal is reported
  to the client (HTTP 409) and on ``/health``.

* **Crash-safe exactly-once accounting.**  A refresh charges the ledger
  under the epoch label ``slug@e{count}`` and, after the new archive is
  durable, commits a marker record to the WAL.  Replay compares ledger
  epochs against WAL markers: a charge with no marker means the crash
  hit between spend and commit, and the release is deterministically
  re-fit — the store skips the already-present label, the epoch-salted
  noise stream reproduces bit-identical state, and the marker finally
  lands.  Every crash point therefore converges to the no-crash state
  with zero double-spend.

Fault points: ``ingest.refresh`` fires at the start of each refresh
attempt; ``wal.append`` / ``wal.fsync`` instrument the log writes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.service import faultinject
from repro.service.errors import BudgetRefused, ServiceError
from repro.service.keys import ReleaseKey
from repro.service.wal import (
    DataRecord,
    MarkerRecord,
    WriteAheadLog,
    wal_path,
)

__all__ = ["BuildContext", "IngestManager", "IngestStats"]

#: Points per chunk when histogramming a batch over drift cells; bounds
#: the (points x cells) containment matrix to a few MB.
_HISTOGRAM_CHUNK = 4096


@dataclass(frozen=True)
class BuildContext:
    """What the store needs to fold staged points into one build.

    ``salt`` separates the noise stream per data state (see
    :meth:`~repro.service.keys.ReleaseKey.build_rng`); ``spend_label``
    is the idempotent ledger label; ``points`` is the log-ordered
    snapshot to :meth:`~repro.core.dataset.GeoDataset.extend` with;
    ``released_count`` is what the post-release WAL marker records.
    """

    salt: int
    spend_label: str
    points: np.ndarray | None
    released_count: int


@dataclass
class IngestStats:
    """Operational counters, exposed on ``/health``."""

    batches: int = 0
    duplicate_batches: int = 0
    points: int = 0
    refreshes: int = 0
    refresh_refusals: int = 0
    replayed_batches: int = 0
    replayed_markers: int = 0
    recovered_releases: int = 0
    truncated_bytes: int = 0

    def to_payload(self) -> dict:
        return {
            "batches": self.batches,
            "duplicate_batches": self.duplicate_batches,
            "points": self.points,
            "refreshes": self.refreshes,
            "refresh_refusals": self.refresh_refusals,
            "replayed_batches": self.replayed_batches,
            "replayed_markers": self.replayed_markers,
            "recovered_releases": self.recovered_releases,
            "truncated_bytes": self.truncated_bytes,
        }


def _histogram(points: np.ndarray, boxes: np.ndarray) -> np.ndarray:
    """Count points per drift cell (first-match containment, chunked)."""
    counts = np.zeros(len(boxes))
    x_lo, y_lo, x_hi, y_hi = boxes.T
    for start in range(0, len(points), _HISTOGRAM_CHUNK):
        chunk = points[start : start + _HISTOGRAM_CHUNK]
        x = chunk[:, 0:1]
        y = chunk[:, 1:2]
        inside = (x >= x_lo) & (x <= x_hi) & (y >= y_lo) & (y <= y_hi)
        has_cell = inside.any(axis=1)
        first = np.argmax(inside, axis=1)[has_cell]
        np.add.at(counts, first, 1.0)
    return counts


class _DriftTracker:
    """Build-vs-fill state for one released key.

    ``reference`` is the release's own (clamped, normalised) estimate of
    the cell distribution — the *build* histogram.  ``fill`` accumulates
    the pending streamed points over the same cells.  Drift is the total
    variation distance between the two normalised distributions: 0 when
    new points look exactly like the release, 1 when they land entirely
    where the release says there is nothing.
    """

    def __init__(self, key: ReleaseKey, synopsis):
        self.key = key
        self.boxes = np.asarray(synopsis.drift_cells(), dtype=float)
        reference = np.clip(synopsis.answer_many(self.boxes), 0.0, None)
        total = float(reference.sum())
        if total > 0:
            self.reference = reference / total
        else:
            self.reference = np.full(len(self.boxes), 1.0 / len(self.boxes))
        self.fill = np.zeros(len(self.boxes))
        self.pending = 0
        self.oldest_timestamp: float | None = None

    def add(self, points: np.ndarray, timestamp: float) -> None:
        if len(points) == 0:
            return
        self.fill += _histogram(points, self.boxes)
        if self.pending == 0 or (
            self.oldest_timestamp is not None
            and timestamp < self.oldest_timestamp
        ):
            self.oldest_timestamp = timestamp
        self.pending += len(points)

    def drift(self) -> float:
        if self.pending == 0:
            return 0.0
        total = float(self.fill.sum())
        if total <= 0:
            return 0.0
        return float(0.5 * np.abs(self.reference - self.fill / total).sum())

    def oldest_age_ms(self, now: float) -> float:
        if self.pending == 0 or self.oldest_timestamp is None:
            return 0.0
        return max(0.0, (now - self.oldest_timestamp) * 1000.0)


class _DatasetLog:
    """In-memory mirror of one dataset instance's WAL."""

    def __init__(self, wal: WriteAheadLog):
        self.wal = wal
        self.batches: list[DataRecord] = []
        self.batch_ids: set[str] = set()
        self.total_points = 0
        #: slug -> points incorporated by that slug's latest release.
        self.markers: dict[str, int] = {}

    def absorb(self, record: DataRecord) -> None:
        self.batches.append(record)
        self.batch_ids.add(record.batch_id)
        self.total_points += len(record.points)

    def pending_after(
        self, released: int
    ) -> tuple[np.ndarray, float | None]:
        """Points past the released prefix, with the oldest timestamp."""
        chunks: list[np.ndarray] = []
        oldest: float | None = None
        offset = 0
        for record in self.batches:
            n = len(record.points)
            if offset + n > released:
                start = max(0, released - offset)
                chunks.append(np.asarray(record.points)[start:])
                if oldest is None or record.timestamp < oldest:
                    oldest = record.timestamp
            offset += n
        if not chunks:
            return np.empty((0, 2)), None
        return np.concatenate(chunks), oldest

    def all_points(self) -> np.ndarray | None:
        if not self.batches:
            return None
        return np.concatenate([np.asarray(r.points) for r in self.batches])


class IngestManager:
    """Owns WALs, drift trackers, and the refresh policy for one store.

    Thread-safe; a single re-entrant lock guards all state, and WAL
    appends run under it (the log's single-writer contract).  Refresh
    fits run *outside* the lock — the store re-snapshots the staged
    points through :meth:`build_context`, so an ingest landing mid-fit
    simply stays pending for the next epoch.
    """

    def __init__(
        self,
        store,
        store_dir: str | Path,
        drift_threshold: float = 0.25,
        staleness_ms: float = 0.0,
        epoch_budget_fraction: float = 0.5,
        clock=time.time,
    ):
        if not 0.0 <= drift_threshold <= 1.0:
            raise ValueError(
                f"drift_threshold must be in [0, 1], got {drift_threshold}"
            )
        if staleness_ms < 0:
            raise ValueError(
                f"staleness_ms must be >= 0, got {staleness_ms}"
            )
        if not 0.0 <= epoch_budget_fraction <= 1.0:
            raise ValueError(
                "epoch_budget_fraction must be in [0, 1], "
                f"got {epoch_budget_fraction}"
            )
        self._store = store
        self._store_dir = Path(store_dir)
        self.drift_threshold = float(drift_threshold)
        self.staleness_ms = float(staleness_ms)
        self.epoch_budget_fraction = float(epoch_budget_fraction)
        self._clock = clock
        self._lock = threading.RLock()
        self._logs: dict[str, _DatasetLog] = {}
        self._trackers: dict[ReleaseKey, _DriftTracker] = {}
        self._refusals: dict[ReleaseKey, str] = {}
        self.stats = IngestStats()
        store.set_ingest(self)
        self._replay()

    def for_store(self, store) -> "IngestManager":
        """A sibling manager over ``store`` with this manager's policy.

        Used to spawn per-tenant ingest managers: each tenant store has
        its own directory, so WALs (and replay) stay partitioned per
        tenant while the drift/staleness/budget policy is shared.
        """
        if store.store_dir is None:
            raise ValueError("ingest requires a persistent store directory")
        return IngestManager(
            store,
            store.store_dir,
            drift_threshold=self.drift_threshold,
            staleness_ms=self.staleness_ms,
            epoch_budget_fraction=self.epoch_budget_fraction,
            clock=self._clock,
        )

    # ------------------------------------------------------------------
    # Replay: reconstruct staged state and finish interrupted refreshes
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        for path in sorted(self._store_dir.glob("*.wal")):
            stem = path.stem
            dataset, sep, seed_text = stem.rpartition("_seed")
            if not sep:
                continue
            try:
                seed = int(seed_text)
            except ValueError:
                continue
            wal = WriteAheadLog(path)
            log = _DatasetLog(wal)
            for record in wal.replayed:
                if isinstance(record, DataRecord):
                    log.absorb(record)
                else:
                    log.markers[record.slug] = record.released_count
            self._logs[f"{dataset}|{seed}"] = log
            self.stats.replayed_batches += wal.stats.data_batches
            self.stats.replayed_markers += wal.stats.markers
            self.stats.truncated_bytes += wal.stats.truncated_bytes
        self._recover_releases()

    def _recover_releases(self) -> None:
        """Finish refreshes the crash interrupted between spend and marker.

        A ledger epoch label ``slug@e{n}`` with no WAL marker at ``n`` or
        beyond means epsilon was charged but the release was never
        committed.  Re-running the build is free (the store skips the
        present label) and deterministic (same staged prefix, same
        salt), so recovery converges to the exact state a crash-free run
        would have produced.
        """
        budget_state = self._store.budget_state()
        for data_id, log in self._logs.items():
            state = budget_state.get(data_id)
            if state is None:
                continue
            ledger_epochs: dict[str, int] = {}
            for label in state["releases"]:
                slug, sep, epoch_text = label.rpartition("@e")
                if not sep:
                    continue
                try:
                    epoch = int(epoch_text)
                except ValueError:
                    continue
                ledger_epochs[slug] = max(ledger_epochs.get(slug, 0), epoch)
            for slug, epoch in sorted(ledger_epochs.items()):
                if log.markers.get(slug, 0) >= epoch:
                    continue
                try:
                    key = ReleaseKey.from_slug(slug)
                except ServiceError:
                    continue
                if key.data_id != data_id:
                    continue
                # Free by construction; bypass the epoch-budget policy so
                # an already-paid-for release is never left uncommitted.
                self._store.build(key, force=True)
                self.stats.recovered_releases += 1

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------

    def ingest(
        self,
        dataset: str,
        seed: int,
        batch_id: str,
        points: np.ndarray,
    ) -> dict:
        """Durably stage one batch and apply the refresh policy.

        Returns the ingest report (the HTTP payload): staging outcome,
        per-release pending/drift state, and which releases were
        refreshed or refused.  Raises nothing on a *refused* refresh —
        refusal is an expected budget outcome, reported in-band — but
        lets WAL I/O errors and simulated crashes propagate (the batch
        is then not acknowledged).
        """
        now = self._clock()
        points = np.asarray(points, dtype=float)
        with self._lock:
            data_id = f"{dataset}|{seed}"
            log = self._log_for(dataset, seed)
            duplicate = batch_id in log.batch_ids
            if duplicate:
                # The batch is already durable; this is an at-least-once
                # retry.  The refresh policy below still runs — the lost
                # acknowledgement may have carried a refresh the crash
                # interrupted, and retrying must converge to it.
                self.stats.duplicate_batches += 1
            else:
                record = DataRecord(batch_id, now, points)
                log.wal.append(record)
                log.absorb(record)
                self.stats.batches += 1
                self.stats.points += len(points)
            due = []
            for key in self._released_keys(data_id):
                tracker = self._tracker_for(key, log)
                if tracker is None:
                    continue
                if not duplicate:
                    tracker.add(points, now)
                if self._due(tracker, now):
                    due.append(key)
        refreshed: list[str] = []
        refused: dict[str, str] = {}
        for key in due:
            self._refresh(key, refreshed, refused)
        with self._lock:
            return self._report(
                data_id, batch_id, len(points), duplicate=duplicate,
                refreshed=refreshed, refused=refused, now=now,
            )

    def _log_for(self, dataset: str, seed: int) -> _DatasetLog:
        data_id = f"{dataset}|{seed}"
        log = self._logs.get(data_id)
        if log is None:
            log = _DatasetLog(
                WriteAheadLog(wal_path(self._store_dir, dataset, seed))
            )
            self._logs[data_id] = log
        return log

    def _released_keys(self, data_id: str) -> list[ReleaseKey]:
        keys = {
            key
            for key in self._store.persisted_keys()
            if key.data_id == data_id
        }
        keys.update(
            key
            for key in self._store.cached_keys()
            if key.data_id == data_id
        )
        return sorted(keys)

    def _tracker_for(
        self, key: ReleaseKey, log: _DatasetLog
    ) -> _DriftTracker | None:
        """The drift tracker for a released key, (re)built lazily.

        Trackers are dropped on every re-release and rebuilt here from
        the *current* synopsis, so the reference distribution always
        describes the release actually being served.  Keys that cannot
        be loaded (quarantined archives) simply go untracked until they
        are rebuilt.
        """
        tracker = self._trackers.get(key)
        if tracker is not None:
            return tracker
        try:
            synopsis = self._store.get(key)
        except ServiceError:
            return None
        tracker = _DriftTracker(key, synopsis)
        pending, oldest = log.pending_after(log.markers.get(key.slug(), 0))
        if len(pending):
            tracker.add(pending, oldest if oldest is not None else self._clock())
        self._trackers[key] = tracker
        return tracker

    def _due(self, tracker: _DriftTracker, now: float) -> bool:
        if tracker.pending <= 0:
            return False
        if tracker.drift() >= self.drift_threshold:
            return True
        return (
            self.staleness_ms > 0
            and tracker.oldest_age_ms(now) >= self.staleness_ms
        )

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def _refresh(
        self,
        key: ReleaseKey,
        refreshed: list[str],
        refused: dict[str, str],
    ) -> None:
        faultinject.fire("ingest.refresh", key=key)
        reason = self._epoch_budget_refusal(key)
        if reason is None:
            try:
                self._store.build(key, force=True)
            except BudgetRefused as error:
                reason = str(error)
        if reason is not None:
            with self._lock:
                self._refusals[key] = reason
            self.stats.refresh_refusals += 1
            refused[key.slug()] = reason
            return
        self.stats.refreshes += 1
        refreshed.append(key.slug())

    def _epoch_budget_refusal(self, key: ReleaseKey) -> str | None:
        """Why the epoch-budget cap blocks this refresh (``None`` = go).

        Sums the epsilon of every ``@e`` epoch label already charged to
        the dataset instance; a refresh that would push that past
        ``epoch_budget_fraction`` of the total budget is refused so
        streaming can never consume the budget owed to first releases.
        A refresh whose exact label is already in the ledger is free
        (crash replay) and always allowed.
        """
        state = self._store.budget_state().get(key.data_id)
        if state is None:
            return None
        with self._lock:
            log = self._logs.get(key.data_id)
            count = log.total_points if log is not None else 0
        candidate = f"{key.slug()}@e{count}"
        epoch_spent = 0.0
        for label in state["releases"]:
            if label == candidate:
                return None  # already charged: replaying it is free
            slug, sep, _ = label.rpartition("@e")
            if not sep:
                continue
            try:
                epoch_spent += ReleaseKey.from_slug(slug).epsilon
            except ServiceError:
                continue
        cap = self.epoch_budget_fraction * float(state["total"])
        if epoch_spent + key.epsilon > cap + 1e-12:
            return (
                f"refreshing {key.slug()!r} needs epsilon={key.epsilon:g} "
                f"but ingest-triggered releases for {key.data_id!r} have "
                f"already spent {epoch_spent:g} of their "
                f"{cap:g} cap ({self.epoch_budget_fraction:g} of the "
                f"{float(state['total']):g} total); the last good release "
                "keeps serving, marked stale"
            )
        return None

    # ------------------------------------------------------------------
    # Store integration (called by SynopsisStore.build)
    # ------------------------------------------------------------------

    def build_context(self, key: ReleaseKey) -> BuildContext | None:
        """Snapshot of the staged points the next build must incorporate."""
        with self._lock:
            log = self._logs.get(key.data_id)
            if log is None or log.total_points == 0:
                return None
            count = log.total_points
            return BuildContext(
                salt=count,
                spend_label=f"{key.slug()}@e{count}",
                points=log.all_points(),
                released_count=count,
            )

    def note_released(self, key: ReleaseKey, context: BuildContext) -> None:
        """Commit a release to the WAL (called after archive + ledger are
        durable) and reset its drift tracking against the new synopsis."""
        with self._lock:
            log = self._logs.get(key.data_id)
            if log is None:
                return
            previous = log.markers.get(key.slug(), 0)
            if previous < context.released_count:
                log.wal.append(
                    MarkerRecord(key.slug(), context.released_count)
                )
                log.markers[key.slug()] = context.released_count
            # The tracker's reference belongs to the superseded release;
            # drop it so the next batch rebuilds against the new one.
            self._trackers.pop(key, None)
            self._refusals.pop(key, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def staleness(self, key: ReleaseKey) -> dict | None:
        """Staleness report for one key (``None`` when fully fresh)."""
        with self._lock:
            log = self._logs.get(key.data_id)
            if log is None:
                return None
            released = log.markers.get(key.slug(), 0)
            pending = log.total_points - released
            refusal = self._refusals.get(key)
            if pending <= 0 and refusal is None:
                return None
            tracker = self._trackers.get(key)
            now = self._clock()
            report = {
                "pending_points": int(pending),
                "released_epoch": int(released),
                "staged_points": int(log.total_points),
                "drift": tracker.drift() if tracker is not None else None,
                "oldest_pending_ms": (
                    tracker.oldest_age_ms(now) if tracker is not None else None
                ),
            }
            if refusal is not None:
                report["refresh_refused"] = refusal
            return report

    def _report(
        self,
        data_id: str,
        batch_id: str,
        n_points: int,
        duplicate: bool,
        refreshed: list[str],
        refused: dict[str, str],
        now: float,
    ) -> dict:
        log = self._logs[data_id]
        releases = []
        for key in self._released_keys(data_id):
            tracker = self._trackers.get(key)
            entry = {
                "key": key.to_payload(),
                "pending_points": int(
                    log.total_points - log.markers.get(key.slug(), 0)
                ),
                "drift": tracker.drift() if tracker is not None else None,
            }
            slug = key.slug()
            if slug in refused:
                entry["refresh_refused"] = refused[slug]
            entry["refreshed"] = slug in refreshed
            releases.append(entry)
        return {
            "batch_id": batch_id,
            "duplicate": duplicate,
            "points": int(n_points),
            "data_id": data_id,
            "staged_points": int(log.total_points),
            "wal_bytes": int(log.wal.size_bytes),
            "releases": releases,
            "refreshed": refreshed,
            "refused": refused,
        }

    def to_payload(self) -> dict:
        """Full ingest state for ``/health``."""
        with self._lock:
            datasets = {}
            for data_id, log in sorted(self._logs.items()):
                datasets[data_id] = {
                    "staged_batches": len(log.batches),
                    "staged_points": int(log.total_points),
                    "wal_bytes": int(log.wal.size_bytes),
                    "markers": dict(sorted(log.markers.items())),
                }
            stale = {}
            for key in sorted(self._trackers):
                report = self.staleness(key)
                if report is not None:
                    stale[key.slug()] = report
            for key in sorted(self._refusals):
                if key.slug() not in stale:
                    report = self.staleness(key)
                    if report is not None:
                        stale[key.slug()] = report
            return {
                "enabled": True,
                "drift_threshold": self.drift_threshold,
                "staleness_ms": self.staleness_ms,
                "epoch_budget_fraction": self.epoch_budget_fraction,
                "datasets": datasets,
                "stale": stale,
                "stats": self.stats.to_payload(),
            }

    def close(self) -> None:
        with self._lock:
            for log in self._logs.values():
                log.wal.close()
            self._logs.clear()
