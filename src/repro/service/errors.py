"""Service-level exceptions with HTTP status mapping.

Every error a serving-layer operation can raise carries the HTTP status
code the adapter should answer with, so the HTTP handler needs exactly one
``except ServiceError`` clause and the store / query service stay free of
transport concerns.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "ValidationError",
    "AuthRequired",
    "AuthForbidden",
    "ReleaseNotFound",
    "RouteNotFound",
    "MethodNotAllowed",
    "DatasetNotFound",
    "DatasetExists",
    "BudgetRefused",
    "ServerOverloaded",
    "DeadlineExpired",
    "ReleaseQuarantined",
    "IngestDisabled",
]


class ServiceError(Exception):
    """Base class for serving-layer failures.

    ``status`` is the HTTP status code the error maps to; subclasses set
    their own default and callers may override per instance.
    ``retry_after``, when not ``None``, is surfaced as the ``Retry-After``
    response header — set it on errors a client can sensibly wait out
    (overload, a quarantined release pending rebuild), leave it ``None``
    where retrying cannot help (validation, exhausted budget).
    """

    status = 500
    retry_after: int | None = None

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status

    def to_payload(self) -> dict:
        """JSON-serialisable body for an HTTP error response."""
        return {"error": type(self).__name__, "detail": str(self)}


class ValidationError(ServiceError):
    """A request was malformed: missing fields, bad types, oversized batch."""

    status = 400


class AuthRequired(ServiceError):
    """The request carried no (or an unparseable) credential.

    Answered 401 with a ``WWW-Authenticate: Bearer`` challenge.  Raised
    only when the server runs with ``--auth require``; the default
    ``--auth off`` deployment never authenticates and every request acts
    as the implicit ``default`` tenant.
    """

    status = 401


class AuthForbidden(ServiceError):
    """The credential parsed but does not match any active API key.

    Deliberately indistinguishable from a revoked or mistyped key: the
    response never says which part of the token was wrong.
    """

    status = 403


class RouteNotFound(ServiceError):
    """No route pattern matches the request path (any method)."""

    status = 404


class MethodNotAllowed(ServiceError):
    """The path exists but not for this HTTP method.

    ``allow`` lists the methods the path does support; the HTTP adapter
    surfaces it as the ``Allow`` response header (RFC 9110 requires one
    on every 405).
    """

    status = 405

    def __init__(self, message: str, allow: tuple[str, ...] = ()):
        super().__init__(message)
        self.allow = tuple(sorted(allow))


class DatasetNotFound(ServiceError):
    """No dataset registration under this tenant matches the name."""

    status = 404


class DatasetExists(ServiceError):
    """A dataset registration with this name already exists for the tenant."""

    status = 409


class ReleaseNotFound(ServiceError):
    """No release for the requested key is cached or persisted.

    Consumers should build the release first (``POST /releases``) or ask
    for one of the keys ``GET /releases`` lists.
    """

    status = 404


class ServerOverloaded(ServiceError):
    """The request was shed by admission control (too many in flight).

    The bounded in-flight gate protects latency for admitted requests:
    beyond ``max_inflight`` running plus ``queue_depth`` waiting, new
    work is rejected in microseconds instead of growing the thread pile.
    ``retry_after`` is surfaced as the ``Retry-After`` response header.
    """

    status = 429

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = int(retry_after)


class DeadlineExpired(ServiceError):
    """The per-request deadline ran out before the work completed.

    Raised at checkpoints through the build and answer paths (store
    waits, fits, engine preparation, batch evaluation), so slow work is
    abandoned at the next boundary instead of holding its thread and
    memory until an unbounded finish.
    """

    status = 504


class ReleaseQuarantined(ServiceError):
    """The persisted archive for this key failed to load and was quarantined.

    The corrupt file was renamed to ``*.corrupt`` (bytes preserved for
    forensics) and will never be parsed again; queries for the key answer
    503 until a rebuild (``POST /releases``) restores it — which charges
    budget like any build, so corruption can never launder epsilon.
    ``Retry-After`` tells well-behaved clients to back off while an
    operator (or an automated rebuild) restores the key, rather than
    hammering a release that cannot answer.
    """

    status = 503
    retry_after = 30


class IngestDisabled(ServiceError):
    """``POST /ingest`` reached a server running without ``--ingest``.

    Streaming ingestion needs a persistent store directory and a single
    worker process (one WAL writer); servers started without it answer
    503 so clients can distinguish "not configured here" from a route
    typo (404).
    """

    status = 503


class BudgetRefused(ServiceError):
    """Building the release would overdraw the dataset's privacy budget.

    Raised *before* the sensitive data is touched.  Unlike
    :class:`~repro.privacy.budget.BudgetExceededError`, which guards a
    single mechanism's internal accounting, this guards the cumulative
    epsilon spent across every release the store ever built from the same
    dataset instance (sequential composition across builds).
    """

    status = 409
