"""Service-level exceptions with HTTP status mapping.

Every error a serving-layer operation can raise carries the HTTP status
code the adapter should answer with, so the HTTP handler needs exactly one
``except ServiceError`` clause and the store / query service stay free of
transport concerns.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "ValidationError",
    "ReleaseNotFound",
    "BudgetRefused",
]


class ServiceError(Exception):
    """Base class for serving-layer failures.

    ``status`` is the HTTP status code the error maps to; subclasses set
    their own default and callers may override per instance.
    """

    status = 500

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status

    def to_payload(self) -> dict:
        """JSON-serialisable body for an HTTP error response."""
        return {"error": type(self).__name__, "detail": str(self)}


class ValidationError(ServiceError):
    """A request was malformed: missing fields, bad types, oversized batch."""

    status = 400


class ReleaseNotFound(ServiceError):
    """No release for the requested key is cached or persisted.

    Consumers should build the release first (``POST /releases``) or ask
    for one of the keys ``GET /releases`` lists.
    """

    status = 404


class BudgetRefused(ServiceError):
    """Building the release would overdraw the dataset's privacy budget.

    Raised *before* the sensitive data is touched.  Unlike
    :class:`~repro.privacy.budget.BudgetExceededError`, which guards a
    single mechanism's internal accounting, this guards the cumulative
    epsilon spent across every release the store ever built from the same
    dataset instance (sequential composition across builds).
    """

    status = 409
