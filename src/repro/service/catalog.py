"""The SQLite-backed metadata catalog for the multi-tenant service tier.

One :class:`Catalog` file holds everything the serving layer knows
*about* its data — never the data itself:

* **tenants** — the namespaces requests resolve to.  The implicit
  ``default`` tenant always exists, so a single-operator deployment
  (``--auth off``) needs no setup.
* **API keys** — hashed at rest (SHA-256 of the secret half; the
  plaintext token is shown exactly once, at creation) and verified with
  :func:`hmac.compare_digest` (see :mod:`repro.service.auth`).
* **dataset registrations** — the tenant-scoped CRUD objects behind
  ``POST/GET/DELETE /datasets``, listed with stable rowid cursors.
* **release metadata** — which release slugs each tenant has built.
* **the per-tenant privacy ledger** — every epsilon spend, in spend
  order, with the per-dataset-instance totals.  This is the catalog's
  load-bearing table: check-then-spend runs inside one ``BEGIN
  IMMEDIATE`` transaction (:meth:`Catalog.exclusive`), so two server
  processes sharing the file can never interleave a double spend — the
  SQLite-native equivalent of the ``budgets.json`` flock protocol.

**Migration.**  :meth:`Catalog.import_budgets_json` imports an existing
``budgets.json`` spend history *bit-for-bit* — same totals, same
``[epsilon, label]`` rows in the same order (SQLite ``REAL`` is the same
IEEE-754 double the JSON parser produced, so nothing is re-rounded).
The import is one-shot and idempotent: a marker row in ``meta`` records
that the file was consumed, and re-opening the store never imports it
twice (double-importing would double the recorded privacy loss).  The
store keeps writing the flock'd JSON ledger alongside the catalog as a
fallback format, so the history stays greppable and a catalog-less
reader still sees the truth.

The catalog is stdlib-only (``sqlite3``), WAL-journaled for concurrent
readers, and safe to share across threads (connections are per-thread)
and across processes (transactions serialise writers).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.service import faultinject
from repro.service.errors import (
    AuthForbidden,
    DatasetExists,
    DatasetNotFound,
    ValidationError,
)

__all__ = [
    "Catalog",
    "DEFAULT_TENANT",
    "validate_tenant_id",
]

#: The implicit tenant every unauthenticated deployment operates as.
DEFAULT_TENANT = "default"

#: Name of the catalog file inside a ``--store-dir``.
CATALOG_FILE = "catalog.sqlite"

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tenants (
    id         TEXT PRIMARY KEY,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS api_keys (
    key_id      TEXT PRIMARY KEY,
    tenant_id   TEXT NOT NULL REFERENCES tenants(id),
    secret_hash TEXT NOT NULL,
    name        TEXT NOT NULL DEFAULT '',
    created_at  REAL NOT NULL,
    revoked     INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS datasets (
    tenant_id   TEXT NOT NULL REFERENCES tenants(id),
    name        TEXT NOT NULL,
    spec        TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    created_at  REAL NOT NULL,
    PRIMARY KEY (tenant_id, name)
);
CREATE TABLE IF NOT EXISTS releases (
    tenant_id TEXT NOT NULL REFERENCES tenants(id),
    slug      TEXT NOT NULL,
    dataset   TEXT NOT NULL,
    method    TEXT NOT NULL,
    epsilon   REAL NOT NULL,
    seed      INTEGER NOT NULL,
    built_at  REAL NOT NULL,
    PRIMARY KEY (tenant_id, slug)
);
CREATE TABLE IF NOT EXISTS budget_totals (
    tenant_id TEXT NOT NULL,
    data_id   TEXT NOT NULL,
    total     REAL NOT NULL,
    PRIMARY KEY (tenant_id, data_id)
);
CREATE TABLE IF NOT EXISTS ledger (
    tenant_id TEXT NOT NULL,
    data_id   TEXT NOT NULL,
    seq       INTEGER NOT NULL,
    epsilon   REAL NOT NULL,
    label     TEXT NOT NULL,
    PRIMARY KEY (tenant_id, data_id, seq)
);
"""

#: Tenant identifiers are path components (per-tenant store subdirs) and
#: must stay slug-safe: lowercase alphanumerics plus ``-``, 1..64 chars.
_TENANT_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789-")


def validate_tenant_id(tenant: str) -> str:
    """Check a tenant id is a safe namespace token; returns it unchanged."""
    if (
        not isinstance(tenant, str)
        or not tenant
        or len(tenant) > 64
        or not set(tenant) <= _TENANT_CHARS
        or tenant[0] == "-"
    ):
        raise ValidationError(
            f"invalid tenant id {tenant!r}: use 1-64 lowercase letters, "
            "digits, or '-', not starting with '-'"
        )
    return tenant


def _hash_secret(secret: str) -> str:
    return hashlib.sha256(secret.encode("utf-8")).hexdigest()


class Catalog:
    """SQLite metadata catalog; see the module docstring for the model.

    Connections are opened per thread (SQLite connections must not hop
    threads) against one WAL-mode database file, so any number of
    catalog handles — across threads *and* processes — observe a single
    serialised history of writes.
    """

    #: How stale a cached API-key resolution may go before SQLite's
    #: ``data_version`` is re-read to detect writes from *other*
    #: processes.  Writes through this handle invalidate immediately
    #: (see ``_generation``); 0 re-validates on every resolve.
    auth_cache_ttl_s = 0.1

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        # Bumped around every committed write through this handle, from
        # any thread; resolve_api_key's per-thread caches check it on
        # every hit, so an in-process revocation takes effect on the
        # very next resolve with no SQLite round trip on the hot path.
        self._generation = 0
        # Autocommit statements: executescript would implicitly COMMIT an
        # open transaction, and IF NOT EXISTS / OR IGNORE make concurrent
        # first-opens race-safe on their own.
        conn = self._conn()
        conn.executescript(_SCHEMA)
        conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(_SCHEMA_VERSION)),
        )
        conn.execute(
            "INSERT OR IGNORE INTO tenants (id, created_at) VALUES (?, ?)",
            (DEFAULT_TENANT, time.time()),
        )

    @property
    def path(self) -> Path:
        return self._path

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self._path, timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            # Transactions are managed explicitly (BEGIN IMMEDIATE in
            # exclusive()); autocommit otherwise.
            conn.isolation_level = None
            self._local.conn = conn
        return conn

    @contextmanager
    def exclusive(self):
        """One cross-process write transaction (``BEGIN IMMEDIATE``).

        The write lock is taken *up front*, so a check-then-spend that
        runs inside this block is atomic against every other process
        sharing the catalog file — the reload-under-flock protocol of
        the JSON ledger, expressed natively.  Nests safely within one
        thread (inner blocks join the outer transaction).
        """
        conn = self._conn()
        if getattr(self._local, "txn_depth", 0) > 0:
            self._local.txn_depth += 1
            try:
                yield conn
            finally:
                self._local.txn_depth -= 1
            return
        conn.execute("BEGIN IMMEDIATE")
        self._local.txn_depth = 1
        try:
            yield conn
            faultinject.fire("catalog.commit", path=str(self._path))
            # Bumped on both sides of COMMIT: the first bump invalidates
            # auth-cache hits racing the commit, the second invalidates
            # entries cached *during* the commit window (which read
            # pre-commit rows).  A rolled-back bump only over-invalidates.
            self._generation += 1
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        finally:
            self._generation += 1
            self._local.txn_depth = 0

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------------
    # Tenants and API keys
    # ------------------------------------------------------------------

    def ensure_tenant(self, tenant: str) -> None:
        validate_tenant_id(tenant)
        with self.exclusive() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO tenants (id, created_at) VALUES (?, ?)",
                (tenant, time.time()),
            )

    def tenant_exists(self, tenant: str) -> bool:
        row = self._conn().execute(
            "SELECT 1 FROM tenants WHERE id = ?", (tenant,)
        ).fetchone()
        return row is not None

    def tenant_ids(self) -> list[str]:
        rows = self._conn().execute(
            "SELECT id FROM tenants ORDER BY id"
        ).fetchall()
        return [row[0] for row in rows]

    def create_api_key(self, tenant: str, name: str = "") -> str:
        """Mint an API key for ``tenant``; returns the one-time token.

        The token is ``rk_<key_id>.<secret>``; only the SHA-256 of the
        secret half is stored, so a catalog leak does not leak usable
        credentials.  The tenant is created if it does not exist.
        """
        validate_tenant_id(tenant)
        key_id = secrets.token_hex(8)
        secret = secrets.token_hex(24)
        with self.exclusive() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO tenants (id, created_at) VALUES (?, ?)",
                (tenant, time.time()),
            )
            conn.execute(
                "INSERT INTO api_keys (key_id, tenant_id, secret_hash, name,"
                " created_at) VALUES (?, ?, ?, ?, ?)",
                (key_id, tenant, _hash_secret(secret), name, time.time()),
            )
        return f"rk_{key_id}.{secret}"

    def revoke_api_key(self, key_id: str) -> bool:
        with self.exclusive() as conn:
            cursor = conn.execute(
                "UPDATE api_keys SET revoked = 1 WHERE key_id = ?", (key_id,)
            )
        return cursor.rowcount > 0

    def resolve_api_key(self, token: str) -> str:
        """Resolve a presented token to its tenant id.

        Raises :class:`AuthForbidden` for anything that does not match
        an active key — the message never distinguishes a bad key id
        from a bad secret from a revoked key.  The secret comparison is
        :func:`hmac.compare_digest` over the stored hash, so it leaks no
        timing signal about how much of the hash matched.

        Successful resolutions are cached per thread, keyed by the
        token's digest (never the token itself), with two freshness
        guards.  Writes through *this* handle — a revocation included,
        from any thread — bump ``_generation`` and take effect on the
        very next resolve.  Writes from *other* processes (an admin CLI
        revoking a key) are detected by re-reading SQLite's
        ``data_version`` pragma plus the connection's ``total_changes``,
        amortised to at most once per ``auth_cache_ttl_s`` (default
        100 ms, the bounded cross-process revocation-propagation delay;
        0 re-validates every resolve).  Failures are never cached (they
        keep their constant-cost path).
        """
        rejection = AuthForbidden("API key is not recognised")
        if not token.startswith("rk_") or "." not in token:
            raise rejection
        conn = self._conn()
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        now = time.monotonic()
        cache = getattr(self._local, "auth_cache", None)
        if cache is not None and cache["generation"] == self._generation:
            fresh = now - cache["checked_at"] <= self.auth_cache_ttl_s
            if not fresh:
                stamp = (
                    conn.execute("PRAGMA data_version").fetchone()[0],
                    conn.total_changes,
                )
                fresh = stamp == cache["stamp"]
                if fresh:
                    cache["checked_at"] = now
            if fresh:
                tenant = cache["entries"].get(digest)
                if tenant is not None:
                    return tenant
            else:
                cache = None
        else:
            cache = None
        if cache is None:
            cache = {
                "generation": self._generation,
                "stamp": (
                    conn.execute("PRAGMA data_version").fetchone()[0],
                    conn.total_changes,
                ),
                "checked_at": now,
                "entries": {},
            }
            self._local.auth_cache = cache
        key_id, _, secret = token[3:].partition(".")
        row = conn.execute(
            "SELECT secret_hash, tenant_id, revoked FROM api_keys"
            " WHERE key_id = ?",
            (key_id,),
        ).fetchone()
        if row is None:
            # Burn the comparison anyway so present-vs-absent key ids
            # cost the same.
            hmac.compare_digest(_hash_secret(secret), _hash_secret(""))
            raise rejection
        stored_hash, tenant, revoked = row
        if not hmac.compare_digest(stored_hash, _hash_secret(secret)):
            raise rejection
        if revoked:
            raise rejection
        if len(cache["entries"]) < 1024:  # bound a hostile token flood
            cache["entries"][digest] = tenant
        return tenant

    # ------------------------------------------------------------------
    # Dataset registrations (tenant-scoped CRUD)
    # ------------------------------------------------------------------

    def register_dataset(
        self, tenant: str, name: str, spec: str, description: str = ""
    ) -> dict:
        with self.exclusive() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO tenants (id, created_at) VALUES (?, ?)",
                (tenant, time.time()),
            )
            try:
                conn.execute(
                    "INSERT INTO datasets (tenant_id, name, spec, description,"
                    " created_at) VALUES (?, ?, ?, ?, ?)",
                    (tenant, name, spec, description, time.time()),
                )
            except sqlite3.IntegrityError:
                raise DatasetExists(
                    f"dataset {name!r} is already registered for this tenant"
                ) from None
        return self.get_dataset(tenant, name)

    def get_dataset(self, tenant: str, name: str) -> dict:
        row = self._conn().execute(
            "SELECT rowid, name, spec, description, created_at FROM datasets"
            " WHERE tenant_id = ? AND name = ?",
            (tenant, name),
        ).fetchone()
        if row is None:
            raise DatasetNotFound(
                f"no dataset {name!r} registered for this tenant"
            )
        return self._dataset_payload(row)

    def delete_dataset(self, tenant: str, name: str) -> None:
        with self.exclusive() as conn:
            cursor = conn.execute(
                "DELETE FROM datasets WHERE tenant_id = ? AND name = ?",
                (tenant, name),
            )
        if cursor.rowcount == 0:
            raise DatasetNotFound(
                f"no dataset {name!r} registered for this tenant"
            )

    def list_datasets(
        self, tenant: str, limit: int = 50, cursor: int | None = None
    ) -> tuple[list[dict], int | None]:
        """One page of the tenant's registrations, oldest first.

        ``cursor`` is the opaque position a previous page returned
        (``None`` starts from the beginning); the listing is ordered by
        rowid, so pages are stable under concurrent inserts — rows
        created after a cursor was minted appear on later pages, and
        deletions never shift earlier rows.  Returns ``(rows,
        next_cursor)`` with ``next_cursor=None`` on the last page.
        """
        rows = self._conn().execute(
            "SELECT rowid, name, spec, description, created_at FROM datasets"
            " WHERE tenant_id = ? AND rowid > ?"
            " ORDER BY rowid LIMIT ?",
            (tenant, cursor or 0, limit + 1),
        ).fetchall()
        page = rows[:limit]
        next_cursor = int(page[-1][0]) if len(rows) > limit else None
        return [self._dataset_payload(row) for row in page], next_cursor

    @staticmethod
    def _dataset_payload(row) -> dict:
        rowid, name, spec, description, created_at = row
        return {
            "name": name,
            "spec": spec,
            "description": description,
            "created_at": created_at,
            "id": int(rowid),
        }

    # ------------------------------------------------------------------
    # Release metadata
    # ------------------------------------------------------------------

    def note_release(self, tenant: str, key) -> None:
        """Record (idempotently) that a release was built for a tenant."""
        with self.exclusive() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO releases (tenant_id, slug, dataset,"
                " method, epsilon, seed, built_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    tenant,
                    key.slug(),
                    key.dataset,
                    key.method,
                    float(key.epsilon),
                    int(key.seed),
                    time.time(),
                ),
            )

    def release_slugs(self, tenant: str) -> list[str]:
        rows = self._conn().execute(
            "SELECT slug FROM releases WHERE tenant_id = ? ORDER BY slug",
            (tenant,),
        ).fetchall()
        return [row[0] for row in rows]

    # ------------------------------------------------------------------
    # The per-tenant privacy ledger
    # ------------------------------------------------------------------

    def load_budgets(self, tenant: str) -> dict[str, dict]:
        """The tenant's ledger in ``budgets.json`` payload shape.

        ``{data_id: {"total": float, "ledger": [[epsilon, label], ...]}}``
        with ledger rows in spend order — byte-compatible with the JSON
        format version 1 document the store writes.
        """
        conn = self._conn()
        budgets: dict[str, dict] = {}
        for data_id, total in conn.execute(
            "SELECT data_id, total FROM budget_totals WHERE tenant_id = ?"
            " ORDER BY data_id",
            (tenant,),
        ):
            budgets[data_id] = {"total": total, "ledger": []}
        for data_id, epsilon, label in conn.execute(
            "SELECT data_id, epsilon, label FROM ledger WHERE tenant_id = ?"
            " ORDER BY data_id, seq",
            (tenant,),
        ):
            budgets.setdefault(data_id, {"total": 0.0, "ledger": []})[
                "ledger"
            ].append([epsilon, label])
        return budgets

    def replace_budgets(self, tenant: str, budgets: dict[str, dict]) -> None:
        """Overwrite the tenant's ledger rows (call inside ``exclusive``).

        ``budgets`` is the payload shape :meth:`load_budgets` returns.
        Delete-and-reinsert keeps row order exactly the in-memory spend
        order, which is what makes the JSON mirror bit-for-bit
        reproducible.
        """
        conn = self._conn()
        faultinject.fire("catalog.replace", tenant=tenant)
        conn.execute("DELETE FROM budget_totals WHERE tenant_id = ?", (tenant,))
        conn.execute("DELETE FROM ledger WHERE tenant_id = ?", (tenant,))
        for data_id, state in budgets.items():
            conn.execute(
                "INSERT INTO budget_totals (tenant_id, data_id, total)"
                " VALUES (?, ?, ?)",
                (tenant, data_id, float(state["total"])),
            )
            for seq, (epsilon, label) in enumerate(state["ledger"]):
                conn.execute(
                    "INSERT INTO ledger (tenant_id, data_id, seq, epsilon,"
                    " label) VALUES (?, ?, ?, ?, ?)",
                    (tenant, data_id, seq, float(epsilon), str(label)),
                )

    def import_budgets_json(self, tenant: str, path: str | Path) -> bool:
        """One-shot idempotent import of a ``budgets.json`` spend history.

        Returns ``True`` when the file was imported now, ``False`` when
        the marker shows it was already consumed (or the file does not
        exist).  The import happens in the same transaction that sets
        the marker, so a crash mid-import replays cleanly and a
        completed import can never run twice.  Raises ``ValueError``
        for a file that parses but is not a version-1 ledger — a
        corrupt history must never be silently dropped.
        """
        path = Path(path)
        marker = f"imported_budgets_json:{tenant}"
        with self.exclusive() as conn:
            done = conn.execute(
                "SELECT 1 FROM meta WHERE key = ?", (marker,)
            ).fetchone()
            if done is not None:
                return False
            if not path.exists():
                # No pre-catalog history: the tenant is catalog-native
                # from day one.  Set the marker anyway — a ledger mirror
                # written to this path later (which may over-count after
                # a crash between mirror write and COMMIT) must never be
                # mistaken for importable history.
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    (marker, str(path)),
                )
                return False
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") != 1:
                raise ValueError(
                    f"unsupported budget ledger version {payload.get('version')!r}"
                )
            budgets = {
                data_id: {
                    "total": float(state["total"]),
                    "ledger": [
                        [float(epsilon), str(label)]
                        for epsilon, label in state["ledger"]
                    ],
                }
                for data_id, state in payload["budgets"].items()
            }
            self.replace_budgets(tenant, budgets)
            conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                (marker, str(path)),
            )
        return True
