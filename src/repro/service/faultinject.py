"""Deterministic fault injection for the service tier.

The fault harness turns "what if the disk fills up mid-ledger-write?"
from a shrug into a regression test.  Production code calls
:func:`fire` at named fault points; by default that is a dictionary miss
and costs nothing.  Tests (``tests/faults/``) install hooks that raise
``OSError(ENOSPC)``, write a short payload and simulate a crash, stall a
socket read, or kill a worker — each failure mode becomes reproducible.

Registered fault points
-----------------------

=================== ====================================================
Point               Fired
=================== ====================================================
``ledger.write``    before the budget ledger's temp file is written
``ledger.fsync``    before the ledger temp file is fsync'd
``ledger.replace``  before the ledger temp file replaces the live file
``archive.write``   before a release archive's temp file is written
``archive.fsync``   before the archive temp file is fsync'd
``archive.replace`` before the archive temp file replaces the live file
``store.fit``       after budget is reserved, before the fit runs
``service.answer``  after the engine is ready, before the batch runs
``server.read``     before each guarded socket read (headers and body)
``worker.serve``    in a forked worker, before ``serve_forever``
``wal.append``      before an ingest WAL record is written
                    (``kind="data"`` or ``"marker"``)
``wal.fsync``       after the WAL write, before its fsync
``ingest.refresh``  at the start of a drift/staleness-triggered refresh,
                    before the epoch-budget check and the rebuild
=================== ====================================================

Hooks receive the fault point's keyword context (``path=``, ``data=``,
``key=``, ...) and may return ``None`` (observe only) or raise.  Raising
:class:`SimulatedCrash` models a ``kill -9`` at that byte boundary: it
derives from ``BaseException`` so no ``except Exception`` recovery path
can accidentally "survive" a crash the test meant to be fatal, and
cleanup code deliberately leaves temp-file debris behind, exactly like a
real crash.

Subprocess reach: ``REPRO_FAULTS=point:action[,point:action...]`` installs
hooks from the environment when the CLI starts (actions: ``crash``,
``enospc``, ``sleep=SECONDS``, ``exit=CODE``), so the harness can break a
forked worker or a whole server process it does not share memory with.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable

__all__ = [
    "SimulatedCrash",
    "clear",
    "fire",
    "injected",
    "install",
    "install_from_env",
]

_ENV_VAR = "REPRO_FAULTS"

_lock = threading.Lock()
_hooks: dict[str, Callable[..., object]] = {}


class SimulatedCrash(BaseException):
    """A test-injected process death (``kill -9`` at this byte boundary).

    Derives from ``BaseException``: recovery code that catches
    ``Exception`` must not be able to swallow a crash a fault test
    injected — after a real ``kill -9`` there is no one left to recover.
    """


def install(point: str, hook: Callable[..., object]) -> None:
    """Install ``hook`` at ``point``, replacing any previous hook."""
    with _lock:
        _hooks[point] = hook


def clear(point: str | None = None) -> None:
    """Remove the hook at ``point`` (every hook when ``point`` is None)."""
    with _lock:
        if point is None:
            _hooks.clear()
        else:
            _hooks.pop(point, None)


def fire(point: str, **context) -> object:
    """Invoke the hook at ``point`` (no-op when none is installed).

    Whatever the hook raises propagates to the caller — that is the
    injected fault.  The hook's return value is returned but every
    production call site ignores it.
    """
    hook = _hooks.get(point)
    if hook is None:
        return None
    return hook(**context)


@contextmanager
def injected(point: str, hook: Callable[..., object]):
    """Scoped :func:`install`: the hook is removed on exit, always."""
    install(point, hook)
    try:
        yield hook
    finally:
        clear(point)


def _make_env_hook(action: str) -> Callable[..., object]:
    name, _, argument = action.partition("=")
    if name == "crash":
        def hook(**_context):
            raise SimulatedCrash(f"injected via {_ENV_VAR}")
    elif name == "enospc":
        def hook(**_context):
            raise OSError(errno.ENOSPC, "injected disk full")
    elif name == "sleep":
        seconds = float(argument)

        def hook(**_context):
            time.sleep(seconds)
    elif name == "exit":
        code = int(argument or 1)

        def hook(**_context):
            os._exit(code)
    else:
        raise ValueError(
            f"unknown {_ENV_VAR} action {action!r} "
            "(known: crash, enospc, sleep=SECONDS, exit=CODE)"
        )
    return hook


def install_from_env(environ=os.environ) -> int:
    """Install hooks described by ``REPRO_FAULTS``; returns how many.

    The format is ``point:action`` pairs separated by commas, e.g.
    ``REPRO_FAULTS=worker.serve:exit=7,store.fit:sleep=2``.  Called by
    the CLI at startup so subprocess-level fault tests can reach code
    they do not share an interpreter with.
    """
    spec = environ.get(_ENV_VAR, "").strip()
    if not spec:
        return 0
    installed = 0
    for item in spec.split(","):
        point, separator, action = item.strip().partition(":")
        if not separator or not point:
            raise ValueError(f"malformed {_ENV_VAR} entry {item!r}")
        install(point, _make_env_hook(action))
        installed += 1
    return installed
