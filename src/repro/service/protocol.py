"""Binary batch protocol for the query hot path.

JSON is the serving layer's lingua franca, but at production batch sizes
most of a ``POST /query`` round trip is spent encoding and decoding
numbers as text: a 1,000-rectangle batch is ~70 KB of JSON parsed row by
row, and the response re-renders every estimate through ``repr``.  This
module defines a fixed binary framing that the HTTP adapter accepts (and
answers) under ``Content-Type: application/x-repro-batch``, decoded
zero-copy with ``np.frombuffer`` — the request body's rectangle block is
*viewed*, not parsed.

Both frames share one 12-byte little-endian header::

    offset  size  field
    0       4     magic   b"RPB1"
    4       1     version (currently 1)
    5       1     kind    (0 = query, 1 = answer)
    6       1     flags   (bit 0: clamp requested / applied)
    7       1     key_len (query: byte length of the release slug; else 0)
    8       4     count   (number of rectangles / estimates, uint32)

A **query** frame follows the header with the UTF-8 release slug
(``key_len`` bytes, e.g. ``storage_AG_eps1.0_seed0``) and then ``count``
rectangles as little-endian float32 ``(x_lo, y_lo, x_hi, y_hi)`` rows —
``count * 16`` bytes.  float32 keeps the wire format half the size of
float64; coordinates that are exactly representable in float32 (query
grids, rounded client values) convert losslessly, so JSON and binary
requests for the same rectangles produce bit-identical estimates.

An **answer** frame follows the header with ``count`` little-endian
float64 estimates (``count * 8`` bytes).  Estimates stay float64 on the
wire: they are the computation's native precision, and truncating them
would break the JSON/binary bit-identity guarantee.

Validation failures raise :class:`~repro.service.errors.ValidationError`
(HTTP 400) with messages that say what was wrong with the frame, exactly
like the JSON schema parsers in :mod:`repro.service.schemas`.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.geometry import Rect, rects_to_boxes
from repro.service.errors import ValidationError
from repro.service.keys import ReleaseKey
from repro.service.schemas import (
    MAX_BATCH_SIZE,
    QueryRequest,
    validate_batch_size,
    validate_boxes,
)

__all__ = [
    "CONTENT_TYPE",
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "encode_query",
    "decode_query",
    "encode_answer",
    "decode_answer",
]

#: The negotiated media type for both frame kinds.
CONTENT_TYPE = "application/x-repro-batch"

MAGIC = b"RPB1"
VERSION = 1
_KIND_QUERY = 0
_KIND_ANSWER = 1
_FLAG_CLAMP = 0x01
_KNOWN_FLAGS = _FLAG_CLAMP

#: ``<`` = little-endian throughout: magic, version, kind, flags,
#: key_len, count.
_HEADER = struct.Struct("<4sBBBBI")
HEADER_SIZE = _HEADER.size  # 12 bytes

_RECT_DTYPE = np.dtype("<f4")
_ESTIMATE_DTYPE = np.dtype("<f8")
_RECT_ROW_BYTES = 4 * _RECT_DTYPE.itemsize


def encode_query(
    key: ReleaseKey, rects: "list[Rect] | np.ndarray", clamp: bool = False
) -> bytes:
    """Serialise one query batch as a binary frame.

    Rectangle coordinates are cast to float32; values outside float32
    range raise ``ValueError`` rather than travelling as ``inf``.
    """
    boxes = rects_to_boxes(rects)
    validate_batch_size(boxes.shape[0])
    if boxes.shape[0] == 0:
        raise ValueError("cannot encode an empty batch")
    with np.errstate(over="ignore"):  # overflow is reported as ValueError below
        payload = np.ascontiguousarray(boxes, dtype=_RECT_DTYPE)
    if not np.all(np.isfinite(payload)):
        raise ValueError(
            "rect coordinates must be finite and within float32 range"
        )
    slug = key.slug().encode("utf-8")
    if len(slug) > 255:
        raise ValueError(f"release slug too long for the frame: {len(slug)} bytes")
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        _KIND_QUERY,
        _FLAG_CLAMP if clamp else 0,
        len(slug),
        boxes.shape[0],
    )
    return header + slug + payload.tobytes()


def decode_query(body: bytes) -> QueryRequest:
    """Parse a binary query frame into the same request the JSON path builds.

    The rectangle block is decoded zero-copy (``np.frombuffer`` over the
    request body) and then widened to float64 — the engines' native
    dtype, and the dtype the answer cache hashes — so a float32-exact
    batch hits the same cache entry whether it arrived as JSON or binary.
    """
    kind, flags, key_len, count = _decode_header(body, _KIND_QUERY)
    if key_len == 0:
        raise ValidationError("binary query frame carries an empty release slug")
    if count < 1:
        raise ValidationError("binary query frame must carry at least one rectangle")
    validate_batch_size(count)
    expected = HEADER_SIZE + key_len + count * _RECT_ROW_BYTES
    if len(body) != expected:
        raise ValidationError(
            f"binary query frame truncated or padded: header promises "
            f"{count} rectangle(s) ({expected} bytes total), got {len(body)}"
        )
    try:
        slug = body[HEADER_SIZE : HEADER_SIZE + key_len].decode("utf-8")
    except UnicodeDecodeError:
        raise ValidationError("release slug is not valid UTF-8") from None
    key = ReleaseKey.from_slug(slug)  # raises ValidationError on bad slugs
    rect_block = np.frombuffer(body, dtype=_RECT_DTYPE, offset=HEADER_SIZE + key_len)
    boxes = rect_block.reshape(count, 4).astype(np.float64)
    validate_boxes(boxes)
    return QueryRequest(key=key, boxes=boxes, clamp=bool(flags & _FLAG_CLAMP))


def encode_answer(estimates: np.ndarray, clamp: bool = False) -> bytes:
    """Serialise a vector of estimates as a binary answer frame."""
    values = np.ascontiguousarray(estimates, dtype=_ESTIMATE_DTYPE)
    if values.ndim != 1:
        raise ValueError(f"estimates must be a 1-D vector, got shape {values.shape}")
    header = _HEADER.pack(
        MAGIC, VERSION, _KIND_ANSWER, _FLAG_CLAMP if clamp else 0, 0, values.size
    )
    return header + values.tobytes()


def decode_answer(body: bytes) -> np.ndarray:
    """Parse a binary answer frame back into a float64 estimate vector.

    Returns a read-only zero-copy view over ``body``; callers that need to
    mutate the estimates must ``.copy()`` themselves.
    """
    _, _, key_len, count = _decode_header(body, _KIND_ANSWER)
    if key_len != 0:
        raise ValidationError("binary answer frame must not carry a release slug")
    expected = HEADER_SIZE + count * _ESTIMATE_DTYPE.itemsize
    if len(body) != expected:
        raise ValidationError(
            f"binary answer frame truncated or padded: header promises "
            f"{count} estimate(s) ({expected} bytes total), got {len(body)}"
        )
    return np.frombuffer(body, dtype=_ESTIMATE_DTYPE, offset=HEADER_SIZE)


def _decode_header(body: bytes, expected_kind: int) -> tuple[int, int, int, int]:
    """Validate the shared header; returns ``(kind, flags, key_len, count)``."""
    if len(body) < HEADER_SIZE:
        raise ValidationError(
            f"binary frame shorter than its {HEADER_SIZE}-byte header "
            f"({len(body)} bytes)"
        )
    magic, version, kind, flags, key_len, count = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise ValidationError(
            f"bad magic {magic!r}: not a {CONTENT_TYPE} frame (expected {MAGIC!r})"
        )
    if version != VERSION:
        raise ValidationError(
            f"unsupported binary protocol version {version} (supported: {VERSION})"
        )
    if kind != expected_kind:
        raise ValidationError(
            f"unexpected frame kind {kind} (expected {expected_kind})"
        )
    if flags & ~_KNOWN_FLAGS:
        raise ValidationError(f"unknown flag bits 0x{flags & ~_KNOWN_FLAGS:02x} set")
    return kind, flags, key_len, count
