"""Release keys and the servable-method registry.

A *release key* identifies one published synopsis: which dataset instance
was summarised, with which method, at what privacy level, and from which
seed.  Keys are hashable (cache keys), orderable (stable listings), and
round-trip through a filesystem-safe slug (persistence filenames).

The method registry maps the short method names the paper uses (``UG``,
``AG``) to builder factories.  It is intentionally open: downstream code
can :func:`register_method` any :class:`~repro.core.synopsis.
SynopsisBuilder` whose synopsis type :mod:`repro.core.serialization`
supports.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.synopsis import SynopsisBuilder
from repro.datasets.registry import DATASETS
from repro.service.errors import ValidationError

__all__ = [
    "ReleaseKey",
    "register_method",
    "method_names",
    "make_builder",
]

#: Registered servable methods: name -> zero-argument builder factory.
_METHODS: dict[str, Callable[[], SynopsisBuilder]] = {}


def register_method(name: str, factory: Callable[[], SynopsisBuilder]) -> None:
    """Register (or replace) a servable synopsis method."""
    if not name or any(ch in name for ch in "_|/\\ "):
        raise ValueError(f"invalid method name {name!r}")
    _METHODS[name] = factory


def method_names() -> list[str]:
    """Names of the servable methods, sorted."""
    return sorted(_METHODS)


def make_builder(method: str) -> SynopsisBuilder:
    """Instantiate the builder for a registered method name."""
    try:
        factory = _METHODS[method]
    except KeyError:
        raise ValidationError(
            f"unknown method {method!r}; servable methods: "
            f"{', '.join(method_names())}"
        ) from None
    return factory()


def _register_defaults() -> None:
    from repro.baselines.kd_tree import KDHybridBuilder, KDStandardBuilder
    from repro.baselines.quadtree import QuadtreeBuilder
    from repro.core.adaptive_grid import AdaptiveGridBuilder
    from repro.core.uniform_grid import UniformGridBuilder

    register_method("UG", UniformGridBuilder)
    register_method("AG", AdaptiveGridBuilder)
    # The tree baselines serve like grids since the flat tree kernel:
    # TreeArrays releases serialise, report synopsis_nbytes, and
    # batch-answer through FlatTreeEngine.
    register_method("Quad", QuadtreeBuilder)
    register_method("Kst", KDStandardBuilder)
    register_method("Khy", KDHybridBuilder)
    _register_longtail()


def _register_longtail() -> None:
    # The long-tail families: hierarchy, wavelet, and the d = 2 embedding
    # of the ND grid.  All three have zero-argument guideline defaults,
    # registered engines, and serialization kinds, so they serve exactly
    # like the core families.
    from repro.baselines.hierarchy import HierarchicalGridBuilder
    from repro.baselines.privelet import PriveletBuilder
    from repro.extensions.multidim import MultiDimGridBuilder

    register_method("Hier", HierarchicalGridBuilder)
    register_method("Privelet", PriveletBuilder)
    register_method("UGnd", MultiDimGridBuilder)
    # The 1-D analysis module's hierarchical histogram, servable over the
    # x-marginal of a 2-D dataset — the last analysis family with no
    # registration (see analysis/one_dim.py for the release type).
    from repro.analysis.one_dim import OneDimHistogramBuilder

    register_method("Hier1d", OneDimHistogramBuilder)


_register_defaults()


@dataclass(frozen=True, order=True)
class ReleaseKey:
    """Identity of one released synopsis.

    ``dataset`` and ``seed`` together name the sensitive data instance
    (the registry generator seeded with ``seed``); ``method`` and
    ``epsilon`` describe the release built from it.  Budget accounting
    therefore groups keys by ``(dataset, seed)`` — see
    :class:`~repro.service.store.SynopsisStore`.

    ``tenant`` namespaces the key: two tenants building the same
    ``(dataset, method, epsilon, seed)`` own *distinct* releases with
    independent noise, caches, and ledgers.  The default value keeps
    every pre-tenancy construction site and wire payload working — a
    key with ``tenant="default"`` behaves (slug, payload, ordering
    among defaults) exactly as before the field existed.  The slug
    deliberately omits the tenant: archives are partitioned into
    per-tenant directories by the store, and the binary protocol's
    slug framing stays unchanged (the server stamps the authenticated
    tenant onto decoded keys).
    """

    dataset: str
    method: str
    epsilon: float
    seed: int
    tenant: str = "default"

    def __post_init__(self) -> None:
        from repro.service.catalog import validate_tenant_id

        validate_tenant_id(self.tenant)
        if self.dataset not in DATASETS:
            raise ValidationError(
                f"unknown dataset {self.dataset!r}; available: "
                f"{', '.join(DATASETS)}"
            )
        if self.method not in _METHODS:
            raise ValidationError(
                f"unknown method {self.method!r}; servable methods: "
                f"{', '.join(method_names())}"
            )
        if not (isinstance(self.epsilon, (int, float)) and self.epsilon > 0):
            raise ValidationError(
                f"epsilon must be a positive number, got {self.epsilon!r}"
            )
        if not (isinstance(self.seed, int) and self.seed >= 0):
            raise ValidationError(
                f"seed must be a non-negative integer, got {self.seed!r}"
            )

    @property
    def data_id(self) -> str:
        """Identifier of the sensitive dataset instance this key reads."""
        return f"{self.dataset}|{self.seed}"

    def slug(self) -> str:
        """Filesystem-safe name that round-trips through :meth:`from_slug`.

        Epsilon uses ``repr`` (shortest exact decimal), so distinct
        epsilons never collide onto one persistence filename and the
        round trip is lossless.
        """
        return (
            f"{self.dataset}_{self.method}_eps{float(self.epsilon)!r}"
            f"_seed{self.seed}"
        )

    @classmethod
    def from_slug(cls, slug: str) -> "ReleaseKey":
        parts = slug.split("_")
        if (
            len(parts) != 4
            or not parts[2].startswith("eps")
            or not parts[3].startswith("seed")
        ):
            raise ValidationError(f"malformed release slug {slug!r}")
        try:
            epsilon = float(parts[2][3:])
            seed = int(parts[3][4:])
        except ValueError:
            raise ValidationError(f"malformed release slug {slug!r}") from None
        return cls(dataset=parts[0], method=parts[1], epsilon=epsilon, seed=seed)

    def to_payload(self) -> dict:
        """JSON-friendly representation used in HTTP responses.

        The tenant appears only when it is not the implicit default, so
        single-tenant deployments see payloads byte-identical to the
        pre-tenancy format.
        """
        payload = {
            "dataset": self.dataset,
            "method": self.method,
            "epsilon": self.epsilon,
            "seed": self.seed,
        }
        if self.tenant != "default":
            payload["tenant"] = self.tenant
        return payload

    def with_tenant(self, tenant: str) -> "ReleaseKey":
        """This key stamped into a tenant namespace."""
        if tenant == self.tenant:
            return self
        return ReleaseKey(
            dataset=self.dataset,
            method=self.method,
            epsilon=self.epsilon,
            seed=self.seed,
            tenant=tenant,
        )

    def build_rng(self, salt: int = 0) -> np.random.Generator:
        """Deterministic RNG for building this release.

        Streams are separated per key (dataset seed, method, epsilon) so
        the same key always yields bit-identical releases while distinct
        keys draw independent noise.  Epsilon enters the entropy as its
        exact IEEE-754 bit pattern: *any* two distinct epsilons get
        independent streams.  Quantizing here would let two
        budget-approved releases at nearby epsilons share one noise draw,
        and correlated noise at different scales cancels — an attacker
        could recover the exact sensitive counts from the pair.

        ``salt`` separates noise streams *across ingest epochs* of the
        same key: a re-release that incorporates streamed points fits
        different data, and reusing the epoch-0 noise stream on it would
        let release pairs be differenced into the exact counts of the
        newly ingested points.  Ingestion passes the number of
        incorporated points as the salt — deterministic under crash
        replay (same incorporated prefix, same stream) yet distinct for
        every distinct data state.  ``salt=0`` (every non-streaming
        build) leaves the entropy, and hence every existing release,
        bit-identical to before.
        """
        entropy = (
            self.seed,
            zlib.crc32(self.method.encode()),
            struct.unpack("<Q", struct.pack("<d", float(self.epsilon)))[0],
        )
        if salt:
            entropy = entropy + (int(salt),)
        if self.tenant != "default":
            # Non-default tenants draw independent noise streams: if two
            # tenants' copies of a dataset instance ever diverge (e.g.
            # per-tenant ingest), shared streams across their releases
            # could be differenced into exact counts.  The default tenant
            # contributes no entropy, keeping every pre-tenancy release
            # bit-identical.
            entropy = entropy + (zlib.crc32(self.tenant.encode()),)
        return np.random.default_rng(np.random.SeedSequence(entropy))
