"""The synopsis serving layer: build a private release once, serve many.

Everything below :mod:`repro.core` treats a synopsis as the output of one
experiment run.  This package turns releases into long-lived, addressable
artifacts behind a query API:

* :class:`~repro.service.keys.ReleaseKey` — identity of one release:
  ``(dataset, method, epsilon, seed)``;
* :class:`~repro.service.store.SynopsisStore` — builds releases, caches
  them under an LRU bounded by entries and bytes, persists them via
  :mod:`repro.core.serialization`, and charges every build against a
  per-dataset privacy budget, refusing overdrafts;
* :class:`~repro.service.query_service.QueryService` — routes batched
  rectangle queries to a prepared per-release engine
  (:func:`~repro.queries.engine.make_engine`), with a byte-bounded LRU
  answer cache for repeat batches;
* :mod:`~repro.service.protocol` — the binary batch wire format for the
  ``POST /query`` hot path (``Content-Type: application/x-repro-batch``);
* :mod:`~repro.service.server` — a stdlib-only HTTP adapter, started
  with ``python -m repro serve`` (``--workers N`` forks ``SO_REUSEPORT``
  siblings sharing the port).

Quickstart::

    from repro.service import QueryService, ReleaseKey, SynopsisStore

    store = SynopsisStore(store_dir="releases", dataset_budget=2.0)
    service = QueryService(store)
    key = ReleaseKey("storage", "AG", epsilon=1.0, seed=0)
    store.build(key)
    result = service.answer(key, [[-110.0, 30.0, -80.0, 45.0]], clamp=True)
"""

from repro.service.errors import (
    BudgetRefused,
    DeadlineExpired,
    ReleaseNotFound,
    ReleaseQuarantined,
    ServerOverloaded,
    ServiceError,
    ValidationError,
)
from repro.service.keys import ReleaseKey, make_builder, method_names, register_method
from repro.service.query_service import QueryResult, QueryService
from repro.service.store import StoreStats, SynopsisStore
from repro.service.telemetry import AdmissionController, Deadline, LatencyHistogram

__all__ = [
    "AdmissionController",
    "BudgetRefused",
    "Deadline",
    "DeadlineExpired",
    "LatencyHistogram",
    "QueryResult",
    "QueryService",
    "ReleaseKey",
    "ReleaseNotFound",
    "ReleaseQuarantined",
    "ServerOverloaded",
    "ServiceError",
    "StoreStats",
    "SynopsisStore",
    "ValidationError",
    "make_builder",
    "method_names",
    "register_method",
]
