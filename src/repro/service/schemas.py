"""Request schemas for the HTTP adapter.

Dependency-free equivalents of the pydantic request models a FastAPI
backend would declare: each ``parse_*`` function validates a decoded JSON
payload and returns a frozen request object, raising
:class:`~repro.service.errors.ValidationError` with a message that names
the offending field.  Keeping parsing here leaves the HTTP handler as pure
routing and lets tests exercise validation without a socket.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.registry import DATASETS
from repro.service.errors import ValidationError
from repro.service.keys import ReleaseKey

__all__ = [
    "MAX_BATCH_SIZE",
    "MAX_INGEST_BATCH",
    "MAX_BATCH_ID_LENGTH",
    "MAX_DATASET_NAME_LENGTH",
    "MAX_DATASET_PAGE_SIZE",
    "BuildRequest",
    "DatasetRequest",
    "IngestRequest",
    "QueryRequest",
    "parse_build_request",
    "parse_dataset_request",
    "parse_dataset_list_query",
    "parse_ingest_request",
    "parse_query_request",
    "validate_batch_size",
    "validate_boxes",
]

#: Upper bound on rectangles per query request; protects the server from
#: accidental multi-gigabyte batches (split client-side instead).
MAX_BATCH_SIZE = 100_000

#: Upper bound on points per ingest batch (16 bytes each in the WAL, so
#: one batch caps at ~1.6 MB of log).
MAX_INGEST_BATCH = 100_000

#: Bound on the client-chosen idempotency token's length.
MAX_BATCH_ID_LENGTH = 200

#: Bound on a dataset registration's name length.
MAX_DATASET_NAME_LENGTH = 100

#: Largest page ``GET /datasets`` will return (also the default).
MAX_DATASET_PAGE_SIZE = 50


@dataclass(frozen=True)
class BuildRequest:
    """``POST /releases`` — build (or fetch) one release.

    ``deadline_ms`` optionally *tightens* the server's per-request
    deadline for this request (it can never extend it): a client that
    would rather fail fast than wait out a slow build says so here.
    """

    key: ReleaseKey
    force: bool = False
    deadline_ms: float | None = None


@dataclass(frozen=True)
class DatasetRequest:
    """``POST /datasets`` — register a dataset under the caller's tenant.

    ``name`` is the tenant-scoped handle clients use; ``spec`` names the
    registry generator backing it (the catalog stores only metadata, so
    a registration is a pointer, never raw data); ``description`` is
    free-form operator text.
    """

    name: str
    spec: str
    description: str = ""


@dataclass(frozen=True)
class IngestRequest:
    """``POST /ingest`` — durably stage one batch of points.

    ``batch_id`` is the client's idempotency token: retrying a batch the
    server already logged is acknowledged as a duplicate, never staged
    twice, so at-least-once delivery yields exactly-once ingestion.
    """

    dataset: str
    seed: int
    batch_id: str
    points: np.ndarray  # (n, 2) float rows: x, y


@dataclass(frozen=True)
class QueryRequest:
    """``POST /query`` — answer a batch of rectangles from one release."""

    key: ReleaseKey
    boxes: np.ndarray  # (n, 4) float rows: x_lo, y_lo, x_hi, y_hi
    clamp: bool = False
    deadline_ms: float | None = None


def _require_mapping(payload) -> dict:
    if not isinstance(payload, dict):
        raise ValidationError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _parse_key(payload: dict) -> ReleaseKey:
    missing = [f for f in ("dataset", "method", "epsilon", "seed") if f not in payload]
    if missing:
        raise ValidationError(f"missing required field(s): {', '.join(missing)}")
    dataset = payload["dataset"]
    method = payload["method"]
    if not isinstance(dataset, str):
        raise ValidationError(f"'dataset' must be a string, got {dataset!r}")
    if not isinstance(method, str):
        raise ValidationError(f"'method' must be a string, got {method!r}")
    epsilon = payload["epsilon"]
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
        raise ValidationError(f"'epsilon' must be a number, got {epsilon!r}")
    seed = payload["seed"]
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValidationError(f"'seed' must be an integer, got {seed!r}")
    # ReleaseKey re-validates values (unknown names, epsilon <= 0, ...)
    # and raises ValidationError itself.
    return ReleaseKey(dataset=dataset, method=method, epsilon=float(epsilon), seed=seed)


def _parse_flag(payload: dict, field: str) -> bool:
    value = payload.get(field, False)
    if not isinstance(value, bool):
        raise ValidationError(f"{field!r} must be a boolean, got {value!r}")
    return value


def _parse_deadline_ms(payload: dict) -> float | None:
    value = payload.get("deadline_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"'deadline_ms' must be a number, got {value!r}")
    if value <= 0:
        raise ValidationError(f"'deadline_ms' must be positive, got {value!r}")
    return float(value)


def validate_batch_size(n_rects: int) -> None:
    """Enforce the per-request batch bound (shared with the binary path)."""
    if n_rects > MAX_BATCH_SIZE:
        raise ValidationError(
            f"batch of {n_rects} rectangles exceeds the per-request "
            f"limit of {MAX_BATCH_SIZE}; split it into smaller batches"
        )


def validate_boxes(boxes: np.ndarray) -> np.ndarray:
    """Validate an already-decoded ``(n, 4)`` float rectangle array.

    The value checks every ``POST /query`` transport shares: shape,
    finiteness, and non-inverted bounds.  Raises
    :class:`~repro.service.errors.ValidationError` naming the problem.
    """
    if boxes.ndim != 2 or boxes.shape[1] != 4:
        raise ValidationError(
            f"each rectangle needs exactly 4 numbers "
            f"(x_lo, y_lo, x_hi, y_hi); got shape {boxes.shape}"
        )
    if not np.all(np.isfinite(boxes)):
        raise ValidationError("'rects' must contain only finite numbers")
    if np.any(boxes[:, 2] < boxes[:, 0]) or np.any(boxes[:, 3] < boxes[:, 1]):
        raise ValidationError(
            "'rects' rows must satisfy x_lo <= x_hi and y_lo <= y_hi"
        )
    return boxes


def parse_build_request(payload) -> BuildRequest:
    payload = _require_mapping(payload)
    return BuildRequest(
        key=_parse_key(payload),
        force=_parse_flag(payload, "force"),
        deadline_ms=_parse_deadline_ms(payload),
    )


def parse_dataset_request(payload) -> DatasetRequest:
    payload = _require_mapping(payload)
    missing = [f for f in ("name", "spec") if f not in payload]
    if missing:
        raise ValidationError(f"missing required field(s): {', '.join(missing)}")
    name = payload["name"]
    if not isinstance(name, str) or not name:
        raise ValidationError(f"'name' must be a non-empty string, got {name!r}")
    if len(name) > MAX_DATASET_NAME_LENGTH:
        raise ValidationError(
            f"'name' exceeds {MAX_DATASET_NAME_LENGTH} characters"
        )
    if "/" in name or "\x00" in name:
        raise ValidationError("'name' must not contain '/' or NUL characters")
    spec = payload["spec"]
    if not isinstance(spec, str) or spec not in DATASETS:
        raise ValidationError(
            f"'spec' must name a registry dataset; available: "
            f"{', '.join(DATASETS)}"
        )
    description = payload.get("description", "")
    if not isinstance(description, str):
        raise ValidationError(
            f"'description' must be a string, got {description!r}"
        )
    return DatasetRequest(name=name, spec=spec, description=description)


def parse_dataset_list_query(params: dict) -> tuple[int, int | None]:
    """Validate ``GET /datasets`` pagination params -> (limit, cursor).

    ``params`` maps query-string names to their (single) values.  The
    cursor is the opaque token a previous page's ``next_cursor``
    returned; anything else is rejected rather than silently restarting
    pagination from the top.
    """
    raw_limit = params.get("limit")
    limit = MAX_DATASET_PAGE_SIZE
    if raw_limit is not None:
        try:
            limit = int(raw_limit)
        except ValueError:
            raise ValidationError(
                f"'limit' must be an integer, got {raw_limit!r}"
            ) from None
        if not 1 <= limit <= MAX_DATASET_PAGE_SIZE:
            raise ValidationError(
                f"'limit' must be in [1, {MAX_DATASET_PAGE_SIZE}], got {limit}"
            )
    raw_cursor = params.get("cursor")
    cursor = None
    if raw_cursor is not None:
        try:
            cursor = int(raw_cursor)
        except ValueError:
            raise ValidationError(
                f"'cursor' is not a cursor this listing returned: {raw_cursor!r}"
            ) from None
        if cursor < 0:
            raise ValidationError(
                f"'cursor' is not a cursor this listing returned: {raw_cursor!r}"
            )
    return limit, cursor


def parse_ingest_request(payload) -> IngestRequest:
    payload = _require_mapping(payload)
    missing = [
        f for f in ("dataset", "seed", "batch_id", "points") if f not in payload
    ]
    if missing:
        raise ValidationError(f"missing required field(s): {', '.join(missing)}")
    dataset = payload["dataset"]
    if not isinstance(dataset, str):
        raise ValidationError(f"'dataset' must be a string, got {dataset!r}")
    if dataset not in DATASETS:
        raise ValidationError(
            f"unknown dataset {dataset!r}; available: {', '.join(DATASETS)}"
        )
    seed = payload["seed"]
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise ValidationError(
            f"'seed' must be a non-negative integer, got {seed!r}"
        )
    batch_id = payload["batch_id"]
    if not isinstance(batch_id, str) or not batch_id:
        raise ValidationError(
            f"'batch_id' must be a non-empty string, got {batch_id!r}"
        )
    if len(batch_id) > MAX_BATCH_ID_LENGTH:
        raise ValidationError(
            f"'batch_id' of {len(batch_id)} characters exceeds the "
            f"{MAX_BATCH_ID_LENGTH}-character limit"
        )
    raw = payload["points"]
    if not isinstance(raw, list) or not raw:
        raise ValidationError(
            "'points' must be a non-empty list of [x, y] rows"
        )
    if len(raw) > MAX_INGEST_BATCH:
        raise ValidationError(
            f"batch of {len(raw)} points exceeds the per-request limit "
            f"of {MAX_INGEST_BATCH}; split it into smaller batches"
        )
    try:
        points = np.array(raw, dtype=float)
    except (TypeError, ValueError):
        raise ValidationError("'points' rows must contain only numbers") from None
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValidationError(
            f"each point needs exactly 2 numbers (x, y); "
            f"got shape {points.shape}"
        )
    if not np.all(np.isfinite(points)):
        raise ValidationError("'points' must contain only finite numbers")
    return IngestRequest(
        dataset=dataset, seed=seed, batch_id=batch_id, points=points
    )


def parse_query_request(payload) -> QueryRequest:
    payload = _require_mapping(payload)
    key = _parse_key(payload)
    rects = payload.get("rects")
    if not isinstance(rects, list) or not rects:
        raise ValidationError(
            "'rects' must be a non-empty list of [x_lo, y_lo, x_hi, y_hi] rows"
        )
    validate_batch_size(len(rects))
    try:
        boxes = np.array(rects, dtype=float)
    except (TypeError, ValueError):
        raise ValidationError("'rects' rows must contain only numbers") from None
    boxes = validate_boxes(boxes)
    return QueryRequest(
        key=key,
        boxes=boxes,
        clamp=_parse_flag(payload, "clamp"),
        deadline_ms=_parse_deadline_ms(payload),
    )
