"""Per-dataset write-ahead log for streaming ingestion.

Every ``POST /ingest`` batch is appended to a :class:`WriteAheadLog`
*before* it touches any in-memory state: once the append returns, the
points survive ``kill -9`` at any byte boundary.  The file is a sequence
of length- and CRC-framed records:

.. code-block:: text

    +--------+------+-------------+-------+---------------------+
    | magic  | type | payload_len | crc32 | payload             |
    | 4 B    | 1 B  | u32 LE      | u32 LE| payload_len bytes   |
    +--------+------+-------------+-------+---------------------+

Two record types exist:

* **data** — one ingested batch: a client-chosen ``batch_id`` (the
  idempotency token: a retried append of an id the log already holds is
  a no-op, so at-least-once clients get exactly-once staging), a wall
  clock timestamp (staleness accounting survives restarts), and the
  ``(n, 2)`` float64 points.
* **marker** — a release commit: the release slug and how many staged
  points that release incorporated.  Replay uses markers to reconstruct
  which points are still *pending* per release — and, together with the
  budget ledger's epoch-labelled entries, to converge to the exact
  no-crash state without ever re-spending epsilon.

**Replay** scans from the start and stops at the first invalid record —
short header, payload running past end-of-file, or CRC mismatch — then
truncates the file back to the end of the valid prefix.  An append that
was torn by a crash is therefore erased exactly as if it never happened
(the client never got its acknowledgement, and will retry), and a
bit-flipped tail can never resurrect as data.  The framing functions are
pure over bytes (:func:`encode_record` / :func:`scan_records`) so the
property suite can sweep truncation and bit flips over every byte offset
without touching a filesystem.

Appends are fsync'd; the fault points ``wal.append`` (before the write)
and ``wal.fsync`` (after the write, before the fsync) let the crash
suite kill the process at each stage.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.service import faultinject

__all__ = [
    "DataRecord",
    "MarkerRecord",
    "WriteAheadLog",
    "encode_record",
    "scan_records",
    "wal_path",
]

#: Record framing magic; bump the digit for incompatible format changes.
MAGIC = b"RWL1"

#: Header: magic, record type, payload length, crc32 of the payload.
_HEADER = struct.Struct("<4sBII")

_TYPE_DATA = 0x44  # 'D'
_TYPE_MARKER = 0x4D  # 'M'

#: Sanity bound on one record's payload (a batch is at most
#: MAX_INGEST_BATCH points = 1.6 MB; anything past this is corruption,
#: not data).
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

_DATA_FIXED = struct.Struct("<HdI")  # batch_id length, timestamp, n points
_MARKER_FIXED = struct.Struct("<HQ")  # slug length, released point count


@dataclass(frozen=True)
class DataRecord:
    """One durably staged ingest batch."""

    batch_id: str
    timestamp: float
    points: np.ndarray  # (n, 2) float64

    def payload(self) -> bytes:
        encoded_id = self.batch_id.encode("utf-8")
        points = np.ascontiguousarray(self.points, dtype="<f8")
        return (
            _DATA_FIXED.pack(len(encoded_id), self.timestamp, points.shape[0])
            + encoded_id
            + points.tobytes()
        )


@dataclass(frozen=True)
class MarkerRecord:
    """A release-commit marker: ``slug`` incorporated ``released_count``
    staged points (counted from the start of the log, in log order)."""

    slug: str
    released_count: int

    def payload(self) -> bytes:
        encoded = self.slug.encode("utf-8")
        return _MARKER_FIXED.pack(len(encoded), self.released_count) + encoded


def encode_record(record: DataRecord | MarkerRecord) -> bytes:
    """The full framed bytes of one record (pure; no I/O)."""
    kind = _TYPE_DATA if isinstance(record, DataRecord) else _TYPE_MARKER
    payload = record.payload()
    return _HEADER.pack(MAGIC, kind, len(payload), zlib.crc32(payload)) + payload


def _decode_payload(kind: int, payload: bytes) -> DataRecord | MarkerRecord:
    if kind == _TYPE_DATA:
        id_len, timestamp, n_points = _DATA_FIXED.unpack_from(payload)
        offset = _DATA_FIXED.size
        batch_id = payload[offset : offset + id_len].decode("utf-8")
        offset += id_len
        expected = n_points * 16
        raw = payload[offset:]
        if len(raw) != expected:
            raise ValueError(
                f"data record declares {n_points} points ({expected} bytes) "
                f"but carries {len(raw)}"
            )
        points = np.frombuffer(raw, dtype="<f8").reshape(n_points, 2)
        points = points.astype(float, copy=True)
        points.setflags(write=False)
        return DataRecord(batch_id, timestamp, points)
    if kind == _TYPE_MARKER:
        slug_len, released_count = _MARKER_FIXED.unpack_from(payload)
        raw = payload[_MARKER_FIXED.size :]
        if len(raw) != slug_len:
            raise ValueError(
                f"marker record declares a {slug_len}-byte slug "
                f"but carries {len(raw)}"
            )
        return MarkerRecord(raw.decode("utf-8"), released_count)
    raise ValueError(f"unknown record type {kind:#x}")


def scan_records(
    buffer: bytes,
) -> tuple[list[DataRecord | MarkerRecord], int]:
    """Parse the committed prefix of a log buffer (pure; no I/O).

    Returns ``(records, valid_length)``: every record framed intact in
    ``buffer[:valid_length]``, stopping at the first record whose header
    is short, whose payload runs past the end, or whose CRC (or payload
    structure) does not verify.  A crash can only tear the *tail* of an
    append-only file, so everything before the first invalid frame is
    exactly the committed prefix — and everything after it is discarded,
    never partially trusted.
    """
    records: list[DataRecord | MarkerRecord] = []
    offset = 0
    total = len(buffer)
    while True:
        if total - offset < _HEADER.size:
            return records, offset
        magic, kind, length, crc = _HEADER.unpack_from(buffer, offset)
        if magic != MAGIC or length > MAX_PAYLOAD_BYTES:
            return records, offset
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return records, offset
        payload = buffer[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset
        try:
            records.append(_decode_payload(kind, payload))
        except (ValueError, UnicodeDecodeError):
            return records, offset
        offset = end


def wal_path(store_dir: Path, dataset: str, seed: int) -> Path:
    """Filesystem-safe log path for one dataset instance ``(dataset, seed)``."""
    return Path(store_dir) / f"{dataset}_seed{seed}.wal"


@dataclass
class ReplayStats:
    """What :meth:`WriteAheadLog.replay` found (surfaced on ``/health``)."""

    records: int = 0
    data_batches: int = 0
    markers: int = 0
    truncated_bytes: int = 0


class WriteAheadLog:
    """An append-only, CRC-framed, fsync'd record log.

    Opening the log replays it: the committed prefix is parsed, a torn
    tail (if any) is truncated away *on disk*, and the replayed records
    are available via :attr:`replayed`.  Appends write the framed record
    and fsync before returning, so an acknowledged batch is durable.

    Not safe for concurrent writers: exactly one live process may own a
    WAL file (the CLI enforces single-worker serving when ingestion is
    enabled).  Thread safety within the process is the caller's job —
    :class:`~repro.service.ingest.IngestManager` serialises appends
    under its own lock.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self.replayed: list[DataRecord | MarkerRecord] = []
        self.stats = ReplayStats()
        self._fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            self._replay_and_truncate()
        except BaseException:
            os.close(self._fd)
            raise

    def _replay_and_truncate(self) -> None:
        buffer = bytearray()
        os.lseek(self._fd, 0, os.SEEK_SET)
        while True:
            chunk = os.read(self._fd, 1 << 20)
            if not chunk:
                break
            buffer += chunk
        records, valid = scan_records(bytes(buffer))
        if valid < len(buffer):
            # A torn or bit-rotted tail: cut it off durably so the next
            # replay (and any forensic read) sees only committed frames.
            os.ftruncate(self._fd, valid)
            os.fsync(self._fd)
            self.stats.truncated_bytes = len(buffer) - valid
        os.lseek(self._fd, valid, os.SEEK_SET)
        self._size = valid
        self.replayed = records
        self.stats.records = len(records)
        self.stats.data_batches = sum(
            1 for record in records if isinstance(record, DataRecord)
        )
        self.stats.markers = len(records) - self.stats.data_batches

    @property
    def path(self) -> Path:
        return self._path

    @property
    def size_bytes(self) -> int:
        return self._size

    def append(self, record: DataRecord | MarkerRecord) -> None:
        """Durably append one record (write + fsync, fault-instrumented).

        A crash before the fsync may leave a torn frame; replay truncates
        it, so the record either fully exists or never happened — the
        client's retry (same ``batch_id``) restores it idempotently.
        """
        kind = "data" if isinstance(record, DataRecord) else "marker"
        frame = encode_record(record)
        faultinject.fire(
            "wal.append", path=str(self._path), kind=kind, nbytes=len(frame)
        )
        os.write(self._fd, frame)
        faultinject.fire("wal.fsync", path=str(self._path), kind=kind)
        os.fsync(self._fd)
        self._size += len(frame)

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:
            pass
