"""Method + path-pattern routing for the HTTP service tier.

The server used to be one hand-rolled ``if path ==`` chain; the router
turns it into a declarative dispatch table::

    router = Router()
    router.add("GET", "/releases", list_releases)
    router.add("GET", "/datasets/{name}", get_dataset)
    router.add("POST", "/query", post_query, gated=True, drain_body=False)
    router.add("GET", "/health", get_health, auth_exempt=True)

    route, params = router.resolve("GET", "/datasets/storage")
    # params == {"name": "storage"}

Patterns are literal path segments plus ``{name}`` placeholders.  A
placeholder matches one segment (no ``/``); ``{name:int}`` matches only
digits and delivers the parameter as ``int``.  Resolution is exact:

* no pattern matches the path under any method → :class:`RouteNotFound`
  (404) whose detail lists the registered paths, so a typo'd URL is
  self-documenting;
* the path exists but not for this method → :class:`MethodNotAllowed`
  (405) carrying the supported methods for the ``Allow`` header.

Both surface as structured JSON error envelopes, never
``BaseHTTPRequestHandler``'s plain-text defaults.

Per-route middleware is declared as flags on the route, not code in the
handler: ``auth_exempt`` skips authentication (health probes must work
on a locked-down server), ``gated`` opts the route into admission
control (expensive POSTs), and ``drain_body`` tells the adapter whether
to read-and-discard an unparsed request body before answering.  The
route's ``handler`` signature is whatever the adapter chooses to call it
with — the router only stores and resolves.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.service.errors import MethodNotAllowed, RouteNotFound

__all__ = ["Route", "Router"]

_PLACEHOLDER = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)(?::(int))?\}")

_CONVERTERS: dict[str, tuple[str, Callable[[str], object]]] = {
    # converter name -> (regex fragment, value parser)
    "str": (r"[^/]+", str),
    "int": (r"\d+", int),
}


def _compile(pattern: str) -> tuple[re.Pattern, dict[str, Callable]]:
    """Compile a route pattern into a regex + per-param value parsers."""
    parts: list[str] = []
    parsers: dict[str, Callable] = {}
    pos = 0
    for match in _PLACEHOLDER.finditer(pattern):
        parts.append(re.escape(pattern[pos : match.start()]))
        name, converter = match.group(1), match.group(2) or "str"
        fragment, parser = _CONVERTERS[converter]
        parts.append(f"(?P<{name}>{fragment})")
        parsers[name] = parser
        pos = match.end()
    parts.append(re.escape(pattern[pos:]))
    return re.compile("^" + "".join(parts) + "$"), parsers


@dataclass(frozen=True)
class Route:
    """One routable endpoint and its middleware flags."""

    method: str
    pattern: str
    handler: Callable
    #: Skip authentication for this route (health probes, docs).
    auth_exempt: bool = False
    #: Pass through admission control (in-flight gate) before running.
    gated: bool = False
    #: Read-and-discard an unconsumed request body before responding.
    drain_body: bool = True
    regex: re.Pattern = field(compare=False, repr=False, default=None)
    parsers: dict = field(compare=False, repr=False, default=None)


class Router:
    """An ordered dispatch table of :class:`Route` entries."""

    def __init__(self):
        self._routes: list[Route] = []

    def add(
        self,
        method: str,
        pattern: str,
        handler: Callable,
        *,
        auth_exempt: bool = False,
        gated: bool = False,
        drain_body: bool = True,
    ) -> Route:
        regex, parsers = _compile(pattern)
        route = Route(
            method=method.upper(),
            pattern=pattern,
            handler=handler,
            auth_exempt=auth_exempt,
            gated=gated,
            drain_body=drain_body,
            regex=regex,
            parsers=parsers,
        )
        self._routes.append(route)
        return route

    def paths(self) -> list[str]:
        """The registered path patterns, sorted and de-duplicated."""
        return sorted({route.pattern for route in self._routes})

    def methods_for(self, path: str) -> tuple[str, ...]:
        """Every method some route accepts for ``path`` (may be empty)."""
        return tuple(
            sorted(
                {
                    route.method
                    for route in self._routes
                    if route.regex.match(path)
                }
            )
        )

    def resolve(self, method: str, path: str) -> tuple[Route, dict]:
        """Find the route for ``method path`` and parse its path params.

        Raises :class:`RouteNotFound` when nothing matches the path, and
        :class:`MethodNotAllowed` (carrying ``allow``) when the path is
        known but not under this method.
        """
        method = method.upper()
        path_matched = False
        for route in self._routes:
            match = route.regex.match(path)
            if match is None:
                continue
            path_matched = True
            if route.method != method:
                continue
            params = {
                name: route.parsers[name](value)
                for name, value in match.groupdict().items()
            }
            return route, params
        if path_matched:
            raise MethodNotAllowed(
                f"{path} does not support {method}",
                allow=self.methods_for(path),
            )
        raise RouteNotFound(
            f"no route {method} {path}; available: {', '.join(self.paths())}"
        )
