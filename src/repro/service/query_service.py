"""Routing batched rectangle queries to cached synopses.

:class:`QueryService` is the read path of the serving layer.  It keeps one
prepared batch engine per release (built by
:func:`~repro.queries.engine.make_engine`, prefix sums precomputed:
:class:`~repro.queries.engine.BatchQueryEngine` for uniform grids, the
flat CSR :class:`~repro.queries.engine.FlatAdaptiveGridEngine` for
adaptive grids, the level-order :class:`~repro.queries.engine.
FlatTreeEngine` for the tree baselines) and routes each incoming batch to
the engine of the requested key.  Engines are pure functions of released
state, so concurrent batches against the same release run without locking
— only the engine-cache bookkeeping is guarded.

On top of the engine cache sits an **answer cache**: released synopses
are immutable, so the estimate vector for a given ``(release, batch,
clamp)`` triple never changes while that release object lives.  Repeat
batches — the dominant pattern behind dashboards and monitoring — are
served from a byte-bounded LRU keyed by ``(ReleaseKey,
sha1(boxes.tobytes()), clamp)`` without touching an engine.  Entries are
invalidated by *generation*: whenever a key's engine is rebuilt (the
store handed back a different synopsis object after a forced rebuild or
an evict-and-reload) or pruned, the key's generation is bumped and its
cached answers dropped, so a stale answer can never outlive the release
state that produced it.

Answering queries is post-processing of a released synopsis: it spends no
privacy budget, and the service never sees raw data at all.
"""

from __future__ import annotations

import hashlib
import threading
import time

import numpy as np

from repro.core.geometry import Rect
from repro.core.synopsis import Synopsis
from repro.queries.engine import (
    fallback_engine_count,
    has_sealed_engine,
    make_engine,
    rects_to_boxes,
)
from repro.service import faultinject
from repro.service.keys import ReleaseKey
from repro.service.store import SynopsisStore
from repro.service.telemetry import Deadline

__all__ = ["QueryResult", "QueryService"]

#: Default byte bound on cached answer vectors (~4M float64 estimates).
DEFAULT_ANSWER_CACHE_BYTES = 32 * 1024 * 1024


class QueryResult:
    """Estimates for one batch, with the metadata responses report.

    ``build_ms`` is time spent obtaining the engine (store lookup, plus
    prefix-sum preparation on a cold start); ``answer_ms`` is the batch
    evaluation itself (or the cache lookup, for a hit).  Billing them
    separately keeps a cold engine build from masquerading as a slow
    query — the first request after an eviction pays ``build_ms``, not a
    mysteriously inflated per-query latency.
    """

    __slots__ = ("key", "estimates", "build_ms", "answer_ms", "cached")

    def __init__(
        self,
        key: ReleaseKey,
        estimates: np.ndarray,
        build_ms: float,
        answer_ms: float,
        cached: bool = False,
    ):
        self.key = key
        self.estimates = estimates
        self.build_ms = build_ms
        self.answer_ms = answer_ms
        self.cached = cached

    @property
    def elapsed_ms(self) -> float:
        """Total service-side latency (build + answer)."""
        return self.build_ms + self.answer_ms

    def to_payload(self) -> dict:
        return {
            "key": self.key.to_payload(),
            "count": int(self.estimates.size),
            "estimates": [float(value) for value in self.estimates],
            "elapsed_ms": round(self.elapsed_ms, 3),
            "build_ms": round(self.build_ms, 3),
            "answer_ms": round(self.answer_ms, 3),
            "cached": self.cached,
        }


class QueryService:
    """Answers rectangle-query batches from a :class:`SynopsisStore`.

    The engine cache is keyed by release key and invalidated by identity:
    when the store hands back a different synopsis object (rebuilt, or
    reloaded after eviction), the engine is rebuilt from it.  Whenever an
    engine is (re)built, entries for keys the store no longer holds are
    dropped, so the store's LRU bounds govern total memory.

    ``answer_cache_bytes`` bounds the answer cache (estimate-vector bytes;
    0 disables caching entirely).
    """

    def __init__(
        self,
        store: SynopsisStore,
        answer_cache_bytes: int = DEFAULT_ANSWER_CACHE_BYTES,
    ):
        if answer_cache_bytes < 0:
            raise ValueError(
                f"answer_cache_bytes must be >= 0, got {answer_cache_bytes}"
            )
        self._store = store
        self._engines: dict[ReleaseKey, tuple[Synopsis, object]] = {}
        self._lock = threading.Lock()
        self._engine_building: set[ReleaseKey] = set()
        self._engine_done = threading.Condition(self._lock)
        self._queries_answered = 0
        self._batches_answered = 0
        self._engine_cold_starts = 0
        self._engine_sealed_loads = 0
        # Answer cache: (key, digest, clamp) -> (generation, estimates).
        # Plain dict + move-to-end semantics via re-insertion is not
        # enough for LRU order; use insertion-ordered dict explicitly.
        self._answer_cache_bytes = int(answer_cache_bytes)
        self._answers: dict[tuple, tuple[int, np.ndarray]] = {}
        self._answers_nbytes = 0
        self._answer_gen: dict[ReleaseKey, int] = {}
        self._answer_hits = 0
        self._answer_misses = 0

    @property
    def store(self) -> SynopsisStore:
        return self._store

    @property
    def tenant(self) -> str:
        """The tenant namespace this service answers for."""
        return self._store.tenant

    def for_store(self, store: SynopsisStore) -> "QueryService":
        """A sibling service over ``store`` with this service's config.

        The serving layer uses it to spin up per-tenant services that
        inherit the answer-cache budget of the default one.
        """
        return QueryService(store, answer_cache_bytes=self._answer_cache_bytes)

    def tenant_stats(self) -> dict:
        """Compact per-tenant counter block for ``/health``'s tenant map."""
        store = self._store
        with self._lock:
            queries = self._queries_answered
            batches = self._batches_answered
            engines = len(self._engines)
        return {
            "releases_cached": len(store.cached_keys()),
            "queries_answered": queries,
            "batches_answered": batches,
            "engines_cached": engines,
            "builds": store.stats.builds,
            "refusals": store.stats.refusals,
        }

    def engine_for(self, key: ReleaseKey):
        """The cached batch engine for ``key``, (re)built as needed.

        Raises :class:`~repro.service.errors.ReleaseNotFound` when the
        store has no release for the key.
        """
        return self._engine_for(key)[0]

    def _engine_for(self, key: ReleaseKey, deadline: Deadline | None = None):
        """``(engine, answer_generation)`` for ``key``.

        The generation is read in the same critical section that
        validated (or installed) the engine, so an answer computed with
        the returned engine may be cached under that generation: any
        later rebuild bumps it first, which vetoes the insert.
        """
        synopsis = self._store.get(key, deadline)
        # Engines pin their synopsis; on every lookup keep only keys the
        # store still holds, so the store's LRU bounds govern total
        # memory (``key`` itself is always retained: get() just cached it).
        retained = set(self._store.cached_keys())
        with self._lock:
            while True:
                for stale in [k for k in self._engines if k not in retained]:
                    del self._engines[stale]
                    self._invalidate_answers(stale)
                cached = self._engines.get(key)
                if cached is not None and cached[0] is synopsis:
                    return cached[1], self._answer_gen.get(key, 0)
                if key not in self._engine_building:
                    break
                # Another thread is preparing this key's engine: one
                # cold-start stampede must not build N duplicates.
                if deadline is None:
                    self._engine_done.wait()
                else:
                    deadline.check("waiting for an in-flight engine build")
                    self._engine_done.wait(deadline.remaining())
            if cached is not None:
                # The store handed back a different synopsis object
                # (forced rebuild, or evict + reload): every answer
                # computed against the old object is stale.  Bump the
                # generation *before* building so in-flight misses from
                # the old engine can no longer insert.
                self._invalidate_answers(key)
            self._engine_building.add(key)
            # A synopsis carrying sealed slabs (loaded from a v2 archive)
            # restores its engine as a map of the archive's pages — no
            # derived-buffer rebuild, so it is a warm load, not a cold
            # start.  Only genuine rebuilds count as cold.
            if has_sealed_engine(synopsis):
                self._engine_sealed_loads += 1
            else:
                self._engine_cold_starts += 1
        # Build outside the lock: prefix-sum preparation can take a few
        # milliseconds for large releases and must not stall other keys.
        try:
            if deadline is not None:
                deadline.check("preparing the query engine")
            engine = make_engine(synopsis)
        except BaseException:
            with self._lock:
                self._engine_building.discard(key)
                self._engine_done.notify_all()
            raise
        # Re-snapshot at insert time: concurrent builds may have evicted
        # this key while the engine was being prepared, and inserting an
        # engine for an evicted key would pin its synopsis outside the
        # store's byte bound.  (A residual race can still leave one stale
        # entry; the sweep above clears it on the next lookup.)
        still_cached = key in set(self._store.cached_keys())
        with self._lock:
            try:
                if still_cached:
                    self._engines[key] = (synopsis, engine)
                    generation = self._answer_gen.get(key, 0)
                else:
                    # The key was evicted while the engine was being
                    # prepared and the engine was NOT installed.  Answers
                    # computed with it must not enter the cache: the
                    # key's next incarnation may be a different release
                    # under the *same* generation (no engine entry exists
                    # for the sweep or the replacement check to bump), so
                    # a cached vector would never be invalidated.  -1 can
                    # never equal a real generation, vetoing the insert.
                    generation = -1
            finally:
                self._engine_building.discard(key)
                self._engine_done.notify_all()
        return engine, generation

    def answer(
        self,
        key: ReleaseKey,
        rects: list[Rect] | np.ndarray,
        clamp: bool = False,
        deadline: Deadline | None = None,
    ) -> QueryResult:
        """Estimates for a batch of rectangles against one release.

        ``clamp`` zeroes negative estimates (post-processing; callers that
        feed the counts onward usually want it, evaluation code does not).
        ``deadline`` bounds the slow steps (store waits, engine
        preparation, the batch itself); expiry raises
        :class:`~repro.service.errors.DeadlineExpired`.
        """
        boxes = np.ascontiguousarray(rects_to_boxes(rects))
        cache_key = None
        if self._answer_cache_bytes > 0:
            digest = hashlib.sha1(boxes.tobytes()).digest()
            cache_key = (key, digest, clamp)
            start = time.perf_counter()
            # A cached answer is only as fresh as the release it was
            # computed from: re-fetch the store's current synopsis (an
            # LRU dict lookup; raises ReleaseNotFound if the release is
            # gone) and serve the hit only when the cached engine still
            # matches it.  A forced rebuild or evict-and-reload hands
            # back a different object and falls through to the miss
            # path, where engine_for bumps the generation.
            synopsis = self._store.get(key, deadline)
            with self._lock:
                generation = self._answer_gen.get(key, 0)
                engine_entry = self._engines.get(key)
                cached = self._answers.get(cache_key)
                if (
                    cached is not None
                    and cached[0] == generation
                    and engine_entry is not None
                    and engine_entry[0] is synopsis
                ):
                    # Re-insert to refresh LRU position (dicts preserve
                    # insertion order; eviction pops the oldest key).
                    del self._answers[cache_key]
                    self._answers[cache_key] = cached
                    self._answer_hits += 1
                    self._queries_answered += int(boxes.shape[0])
                    self._batches_answered += 1
                    answer_ms = (time.perf_counter() - start) * 1e3
                    return QueryResult(
                        key, cached[1], build_ms=0.0, answer_ms=answer_ms,
                        cached=True,
                    )

        build_start = time.perf_counter()
        engine, generation = self._engine_for(key, deadline)
        # Fault point for deadline/overload tests: an injected stall here
        # models a slow batch without touching any real kernel.
        faultinject.fire("service.answer", key=key)
        if deadline is not None:
            deadline.check("answering the batch")
        answer_start = time.perf_counter()
        estimates = engine.answer_batch(boxes)
        if clamp:
            estimates = np.maximum(estimates, 0.0)
        # Cached vectors are shared across requests; freeze them so no
        # consumer can corrupt another's answer.
        estimates.setflags(write=False)
        answered = time.perf_counter()
        build_ms = (answer_start - build_start) * 1e3
        answer_ms = (answered - answer_start) * 1e3
        with self._lock:
            self._queries_answered += int(boxes.shape[0])
            self._batches_answered += 1
            if cache_key is not None:
                self._answer_misses += 1
                if (
                    self._answer_gen.get(key, 0) == generation
                    and estimates.nbytes <= self._answer_cache_bytes
                ):
                    self._cache_insert(cache_key, generation, estimates)
        return QueryResult(key, estimates, build_ms=build_ms, answer_ms=answer_ms)

    def stats(self) -> dict:
        with self._lock:
            return {
                "queries_answered": self._queries_answered,
                "batches_answered": self._batches_answered,
                "engines_cached": len(self._engines),
                "engine_cold_starts": self._engine_cold_starts,
                "engine_sealed_loads": self._engine_sealed_loads,
                "engine_fallbacks": fallback_engine_count(),
                "answer_cache_hits": self._answer_hits,
                "answer_cache_misses": self._answer_misses,
                "answer_cache_entries": len(self._answers),
                "answer_cache_bytes": self._answers_nbytes,
                "answer_cache_max_bytes": self._answer_cache_bytes,
            }

    # ------------------------------------------------------------------
    # Answer-cache internals (callers hold self._lock)
    # ------------------------------------------------------------------

    def _cache_insert(
        self, cache_key: tuple, generation: int, estimates: np.ndarray
    ) -> None:
        previous = self._answers.pop(cache_key, None)
        if previous is not None:
            self._answers_nbytes -= previous[1].nbytes
        self._answers[cache_key] = (generation, estimates)
        self._answers_nbytes += estimates.nbytes
        while self._answers_nbytes > self._answer_cache_bytes:
            oldest = next(iter(self._answers))
            _, evicted = self._answers.pop(oldest)
            self._answers_nbytes -= evicted.nbytes

    def _invalidate_answers(self, key: ReleaseKey) -> None:
        """Bump ``key``'s generation and drop its cached answers."""
        self._answer_gen[key] = self._answer_gen.get(key, 0) + 1
        stale = [entry for entry in self._answers if entry[0] == key]
        for entry in stale:
            _, estimates = self._answers.pop(entry)
            self._answers_nbytes -= estimates.nbytes
