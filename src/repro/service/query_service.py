"""Routing batched rectangle queries to cached synopses.

:class:`QueryService` is the read path of the serving layer.  It keeps one
prepared batch engine per release (built by
:func:`~repro.queries.engine.make_engine`, prefix sums precomputed:
:class:`~repro.queries.engine.BatchQueryEngine` for uniform grids, the
flat CSR :class:`~repro.queries.engine.FlatAdaptiveGridEngine` for
adaptive grids) and routes each incoming batch to the engine of the
requested key.  Engines are pure functions of released state, so
concurrent batches against the same release run without locking — only
the engine-cache bookkeeping is guarded.

Answering queries is post-processing of a released synopsis: it spends no
privacy budget, and the service never sees raw data at all.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.geometry import Rect
from repro.core.synopsis import Synopsis
from repro.queries.engine import make_engine, rects_to_boxes
from repro.service.keys import ReleaseKey
from repro.service.store import SynopsisStore

__all__ = ["QueryResult", "QueryService"]


class QueryResult:
    """Estimates for one batch, with the metadata responses report."""

    __slots__ = ("key", "estimates", "elapsed_ms")

    def __init__(self, key: ReleaseKey, estimates: np.ndarray, elapsed_ms: float):
        self.key = key
        self.estimates = estimates
        self.elapsed_ms = elapsed_ms

    def to_payload(self) -> dict:
        return {
            "key": self.key.to_payload(),
            "count": int(self.estimates.size),
            "estimates": [float(value) for value in self.estimates],
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


class QueryService:
    """Answers rectangle-query batches from a :class:`SynopsisStore`.

    The engine cache is keyed by release key and invalidated by identity:
    when the store hands back a different synopsis object (rebuilt, or
    reloaded after eviction), the engine is rebuilt from it.  Whenever an
    engine is (re)built, entries for keys the store no longer holds are
    dropped, so the store's LRU bounds govern total memory.
    """

    def __init__(self, store: SynopsisStore):
        self._store = store
        self._engines: dict[ReleaseKey, tuple[Synopsis, object]] = {}
        self._lock = threading.Lock()
        self._engine_building: set[ReleaseKey] = set()
        self._engine_done = threading.Condition(self._lock)
        self._queries_answered = 0
        self._batches_answered = 0

    @property
    def store(self) -> SynopsisStore:
        return self._store

    def engine_for(self, key: ReleaseKey):
        """The cached batch engine for ``key``, (re)built as needed.

        Raises :class:`~repro.service.errors.ReleaseNotFound` when the
        store has no release for the key.
        """
        synopsis = self._store.get(key)
        # Engines pin their synopsis; on every lookup keep only keys the
        # store still holds, so the store's LRU bounds govern total
        # memory (``key`` itself is always retained: get() just cached it).
        retained = set(self._store.cached_keys())
        with self._lock:
            while True:
                for stale in [k for k in self._engines if k not in retained]:
                    del self._engines[stale]
                cached = self._engines.get(key)
                if cached is not None and cached[0] is synopsis:
                    return cached[1]
                if key not in self._engine_building:
                    break
                # Another thread is preparing this key's engine: one
                # cold-start stampede must not build N duplicates.
                self._engine_done.wait()
            self._engine_building.add(key)
        # Build outside the lock: prefix-sum preparation can take a few
        # milliseconds for large releases and must not stall other keys.
        try:
            engine = make_engine(synopsis)
        except BaseException:
            with self._lock:
                self._engine_building.discard(key)
                self._engine_done.notify_all()
            raise
        # Re-snapshot at insert time: concurrent builds may have evicted
        # this key while the engine was being prepared, and inserting an
        # engine for an evicted key would pin its synopsis outside the
        # store's byte bound.  (A residual race can still leave one stale
        # entry; the sweep above clears it on the next lookup.)
        still_cached = key in set(self._store.cached_keys())
        with self._lock:
            try:
                if still_cached:
                    self._engines[key] = (synopsis, engine)
            finally:
                self._engine_building.discard(key)
                self._engine_done.notify_all()
        return engine

    def answer(
        self,
        key: ReleaseKey,
        rects: list[Rect] | np.ndarray,
        clamp: bool = False,
    ) -> QueryResult:
        """Estimates for a batch of rectangles against one release.

        ``clamp`` zeroes negative estimates (post-processing; callers that
        feed the counts onward usually want it, evaluation code does not).
        """
        boxes = rects_to_boxes(rects)
        start = time.perf_counter()
        estimates = self.engine_for(key).answer_batch(boxes)
        if clamp:
            estimates = np.maximum(estimates, 0.0)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        with self._lock:
            self._queries_answered += int(boxes.shape[0])
            self._batches_answered += 1
        return QueryResult(key, estimates, elapsed_ms)

    def stats(self) -> dict:
        with self._lock:
            return {
                "queries_answered": self._queries_answered,
                "batches_answered": self._batches_answered,
                "engines_cached": len(self._engines),
            }
