"""The synopsis store: build once, serve many.

:class:`SynopsisStore` owns the lifecycle of released synopses:

* **build** — fit a registered method on a registry dataset instance,
  deterministically from the release key;
* **cache** — keep hot releases in memory under an LRU policy bounded both
  by entry count and by total released-state bytes
  (:func:`~repro.core.serialization.synopsis_nbytes`);
* **persist** — write every build through to ``store_dir`` as the same
  checksummed artifact :mod:`repro.core.serialization` defines, so an
  evicted release is reloaded from disk instead of being re-fit.  With
  the default ``archive_format="v2"`` the artifact is page-aligned and
  uncompressed: reloads memory-map it read-only, so ``--workers N``
  processes serving the same release share one set of physical pages
  (and the sealed engine slabs restore without a per-worker rebuild);
  eviction simply drops the views and lets the page cache decide.
  ``archive_format="v1"`` keeps the compact ``savez_compressed`` blobs,
  and a mixed-format directory is served transparently — the loader
  sniffs each file;
* **account** — charge every fit against a per-dataset-instance
  :class:`~repro.privacy.budget.PrivacyBudget` and refuse builds that
  would overdraw it (:class:`~repro.service.errors.BudgetRefused`).

The privacy model: fitting a synopsis *reads the sensitive data* and costs
its epsilon under sequential composition; serving, caching, persisting and
reloading are post-processing of already-released state and cost nothing.
The ledger is persisted alongside the artifacts so budget exhaustion
survives process restarts — a store pointed at the same directory cannot
launder budget by restarting.  Spends additionally serialise across
*processes*: each spend takes an ``fcntl.flock`` on a ledger lock file
and re-reads the on-disk ledger before charging, so ``--workers N``
stores sharing one directory cannot interleave read-modify-write cycles
into a double-spend.

When a :class:`~repro.service.ingest.IngestManager` is attached
(:meth:`SynopsisStore.set_ingest`), builds incorporate the durably
staged streamed points for the key's dataset instance, draw noise from
an epoch-salted stream (see :meth:`~repro.service.keys.ReleaseKey.
build_rng`), and charge the ledger under an epoch label
(``slug@e{count}``).  Epoch labels make crash replay *free*: a restart
that re-runs a refresh whose spend already reached the ledger skips the
charge and deterministically refits the identical release — zero double
spend, bit-identical archives.

All public methods are thread-safe: one re-entrant lock guards the
bookkeeping, while fits run outside it under a per-key in-flight guard,
so reads never wait longer than a cache lookup even during a slow build.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

try:  # POSIX only; on other platforms spends fall back to in-process locking
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.core.serialization import (
    ARCHIVE_FORMATS,
    synopsis_from_path,
    synopsis_nbytes,
    synopsis_to_bytes,
)
from repro.core.synopsis import Synopsis
from repro.datasets.registry import get_spec
from repro.privacy.budget import BudgetExceededError, PrivacyBudget
from repro.service import faultinject
from repro.service.errors import (
    BudgetRefused,
    ReleaseNotFound,
    ReleaseQuarantined,
)
from repro.service.keys import ReleaseKey, make_builder
from repro.service.telemetry import Deadline

__all__ = ["StoreStats", "SynopsisStore"]

_BUDGET_FILE = "budgets.json"
_BUDGET_FORMAT_VERSION = 1

#: Cross-process mutual exclusion for ledger spends.  The lock file is
#: separate from the ledger itself because the ledger is replaced by
#: rename on every write — a flock on the replaced inode would guard
#: nothing.
_LEDGER_LOCK_FILE = "budgets.json.lock"

#: Suffix appended to unreadable files when they are quarantined.  The
#: bytes are preserved for forensics; the name no longer matches any
#: pattern the store parses, so a corrupt file is handled exactly once.
_QUARANTINE_SUFFIX = ".corrupt"


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a rename into it survives power loss."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes, fault_prefix: str) -> None:
    """Crash-safe file write: temp file + fsync + rename + dir fsync.

    After a crash (``kill -9``, power loss) at *any* byte boundary the
    path holds either the complete previous contents or the complete new
    ones — never a torn mix.  ``fault_prefix`` names the injection
    points (``{prefix}.write`` / ``.fsync`` / ``.replace``) the fault
    harness uses to simulate disk-full, short writes, and crashes at
    each stage.  On ordinary I/O errors the temp file is removed;
    :class:`~repro.service.faultinject.SimulatedCrash` deliberately
    leaves the debris a real crash would.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        faultinject.fire(f"{fault_prefix}.write", path=str(tmp), data=data)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            faultinject.fire(f"{fault_prefix}.fsync", path=str(tmp))
            os.fsync(handle.fileno())
        faultinject.fire(f"{fault_prefix}.replace", path=str(path))
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


@dataclass
class StoreStats:
    """Operational counters, exposed by the HTTP adapter's ``/releases``."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    loads: int = 0
    evictions: int = 0
    refusals: int = 0
    quarantined: int = 0

    def to_payload(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "loads": self.loads,
            "evictions": self.evictions,
            "refusals": self.refusals,
            "quarantined": self.quarantined,
        }


@dataclass
class _Entry:
    synopsis: Synopsis
    nbytes: int
    #: Size of the read-only archive mapping backing the synopsis (v2
    #: reloads); 0 for built-in-process and v1-loaded releases, whose
    #: arrays are private heap copies.
    mapped_nbytes: int = 0


def _process_rss_bytes() -> int | None:
    """This process's resident set size, or ``None`` off-Linux.

    Read from ``/proc/self/status`` (``VmRSS``) so the serving layer can
    report it without a dependency; note RSS counts pages *shared* with
    other workers too — the per-release ``mapped_bytes`` alongside it is
    what a mapped release can share.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


class SynopsisStore:
    """Builds, caches, persists, and budget-guards released synopses.

    Parameters
    ----------
    store_dir:
        Directory for persisted releases and the budget ledger.  ``None``
        keeps everything in memory (evicted releases must be re-fit, which
        still charges budget — persistent stores are strictly better for
        production use).
    dataset_budget:
        Total epsilon each dataset instance ``(dataset, seed)`` may spend
        across *all* builds, ever (sequential composition).
    max_entries:
        LRU bound on the number of in-memory releases.
    max_bytes:
        LRU bound on the summed released-state bytes in memory
        (:func:`~repro.core.serialization.synopsis_nbytes`).  The most
        recently used release is always retained even when it alone
        exceeds the bound.  Prepared query engines are not counted here:
        budget for them separately (they are roughly the size of the
        released state again, and :class:`~repro.service.query_service.
        QueryService` bounds them to the store's cached keys).
    n_points:
        Optional dataset-size override applied to every build (the
        registry default otherwise).  Part of the store configuration, not
        the key, so one store always serves consistently sized data.
    archive_format:
        On-disk container for newly persisted releases: ``"v2"``
        (default) writes page-aligned uncompressed slabs that reloads
        memory-map and forked workers share; ``"v1"`` writes compact
        ``savez_compressed`` blobs.  Reading sniffs per file, so a
        directory holding a mix of both formats serves transparently.
    catalog:
        Optional :class:`~repro.service.catalog.Catalog`.  When set, the
        authoritative ledger moves into the catalog's SQLite tables:
        check-then-spend runs inside one ``BEGIN IMMEDIATE`` transaction
        (replacing the flock protocol), an existing ``budgets.json`` is
        imported bit-for-bit exactly once, and every spend still mirrors
        back out to ``budgets.json`` as a fallback format.
    tenant:
        The tenant namespace this store serves (ledger scope in the
        catalog, stamp applied to every key).  The default keeps
        single-tenant deployments byte-identical to before tenancy.
    """

    def __init__(
        self,
        store_dir: str | Path | None = None,
        dataset_budget: float = 4.0,
        max_entries: int = 16,
        max_bytes: int = 512 * 1024 * 1024,
        n_points: int | None = None,
        archive_format: str = "v2",
        catalog=None,
        tenant: str = "default",
    ):
        if dataset_budget <= 0:
            raise ValueError(f"dataset_budget must be positive, got {dataset_budget}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if archive_format not in ARCHIVE_FORMATS:
            raise ValueError(
                f"unknown archive format {archive_format!r}; expected one "
                f"of {ARCHIVE_FORMATS}"
            )
        self._archive_format = archive_format
        self._store_dir = Path(store_dir) if store_dir is not None else None
        self._dataset_budget = float(dataset_budget)
        self._max_entries = int(max_entries)
        self._max_bytes = int(max_bytes)
        self._n_points = n_points
        self._cache: OrderedDict[ReleaseKey, _Entry] = OrderedDict()
        self._cached_bytes = 0
        self._budgets: dict[str, PrivacyBudget] = {}
        self._lock = threading.RLock()
        self._building: set[ReleaseKey] = set()
        self._loading: set[ReleaseKey] = set()
        self._inflight_done = threading.Condition(self._lock)
        self.stats = StoreStats()
        self._quarantined: dict[ReleaseKey, str] = {}
        self._ledger_corrupt: str | None = None
        self._ingest = None  # attached via set_ingest()
        self._catalog = catalog
        from repro.service.catalog import validate_tenant_id

        self._tenant = validate_tenant_id(tenant)
        if catalog is not None:
            catalog.ensure_tenant(self._tenant)
            if self._store_dir is not None:
                # One-shot, idempotent: a pre-catalog budgets.json spend
                # history becomes catalog rows bit-for-bit; the marker in
                # the catalog's meta table stops a second import from
                # doubling the recorded privacy loss.
                catalog.import_budgets_json(
                    self._tenant, self._store_dir / _BUDGET_FILE
                )
        if self._store_dir is not None:
            self._store_dir.mkdir(parents=True, exist_ok=True)
            self._sweep_crash_debris()
        if self._store_dir is not None or catalog is not None:
            self._load_budgets()

    def _sweep_crash_debris(self) -> None:
        """Remove temp files a crash mid-write left behind.

        Every durable write goes through temp + rename, so a ``*.tmp``
        file is by construction an incomplete artifact from a dead
        process — never live state.  Sweeping at init keeps the debris
        from accumulating and from ever being mistaken for a release.
        """
        for stale in self._store_dir.glob("*.tmp"):
            try:
                stale.unlink()
            except OSError:
                continue

    def set_ingest(self, ingest) -> None:
        """Attach a streaming-ingestion manager.

        The manager supplies a build context per key — the durably
        staged points to incorporate, the epoch salt for the noise
        stream, and the epoch spend label — and is notified after each
        successful release so it can commit a WAL marker.  Duck-typed
        (``build_context(key)`` / ``note_released(key, context)``) to
        keep the store importable without the ingest subsystem.
        """
        with self._lock:
            self._ingest = ingest

    # ------------------------------------------------------------------
    # Lookup and build
    # ------------------------------------------------------------------

    def get(self, key: ReleaseKey, deadline: Deadline | None = None) -> Synopsis:
        """Return the release for ``key`` from memory or disk.

        Raises :class:`ReleaseNotFound` when the release has never been
        built (serving never implicitly spends privacy budget) and
        :class:`ReleaseQuarantined` when its archive failed to load and
        was quarantined (rebuild to restore).  Disk reloads run outside
        the lock (guarded per key) so one slow decompress never stalls
        cache hits for other keys; a request for a key whose fit is in
        flight waits for that result, bounded by ``deadline``.
        """
        key = key.with_tenant(self._tenant)
        synopsis = self._lookup_or_load(key, deadline)
        if synopsis is None:
            with self._lock:
                reason = self._quarantined.get(key)
            if reason is not None:
                raise ReleaseQuarantined(
                    f"the persisted archive for {key.slug()!r} was corrupt "
                    f"and has been quarantined ({reason}); rebuild it "
                    "(POST /releases) to restore service for this key"
                )
            raise ReleaseNotFound(
                f"no release for {key.slug()!r}; build it first (POST /releases)"
            )
        return synopsis

    def _wait_inflight(self, deadline: Deadline | None) -> None:
        """One bounded wait on the in-flight condition (lock held)."""
        if deadline is None:
            self._inflight_done.wait()
        else:
            deadline.check("waiting for an in-flight build or reload")
            self._inflight_done.wait(deadline.remaining())

    def _lookup_or_load(
        self, key: ReleaseKey, deadline: Deadline | None = None
    ) -> Synopsis | None:
        """Cache lookup with per-key guarded disk reload; ``None`` if absent.

        Loads and builds of the same key are mutually exclusive: a reload
        never races a forced rebuild into inserting a stale synopsis over
        the fresh one.  An archive that fails to parse — truncated, bit
        flipped, checksum mismatch — is quarantined (renamed to
        ``*.corrupt``) instead of crashing the request, and the key is
        remembered so later reads answer 503 rather than rediscovering
        the corpse.
        """
        with self._lock:
            while True:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                    self.stats.hits += 1
                    return entry.synopsis
                if key in self._loading or key in self._building:
                    # Another thread is reloading or fitting this key;
                    # its result will land in the cache.
                    self._wait_inflight(deadline)
                    continue
                break
            self.stats.misses += 1
            path = self._release_path(key)
            if path is None or not path.exists():
                return None
            self._loading.add(key)
        try:
            # Path-based load: v2 archives are memory-mapped (workers
            # share pages), v1 archives stream their checksum instead of
            # double-buffering the file in memory.
            synopsis = synopsis_from_path(path)
        except Exception as error:
            # The archive is unreadable.  Quarantine it: rename preserves
            # the bytes for forensics while guaranteeing the file is never
            # parsed (and never crashes a request) again.
            self._quarantine_archive(path, key, error)
            with self._lock:
                self._loading.discard(key)
                self._inflight_done.notify_all()
            return None
        except BaseException:
            with self._lock:
                self._loading.discard(key)
                self._inflight_done.notify_all()
            raise
        with self._lock:
            try:
                self.stats.loads += 1
                self._insert(key, synopsis)
            finally:
                # Always clear the in-flight marker: leaving it would
                # deadlock every later request for this key.
                self._loading.discard(key)
                self._inflight_done.notify_all()
        return synopsis

    def build(
        self,
        key: ReleaseKey,
        force: bool = False,
        deadline: Deadline | None = None,
    ) -> tuple[Synopsis, bool]:
        """Return the release for ``key``, fitting it if necessary.

        Returns ``(synopsis, built)`` where ``built`` says whether a fit
        (and hence a budget spend) happened.  ``force=True`` refits even
        when a cached/persisted release exists — e.g. after raising
        ``n_points`` — and is charged like any other build.  A key whose
        archive was quarantined is rebuilt here (charged like any build),
        which clears the quarantine.

        Raises :class:`BudgetRefused`, before touching the sensitive
        data, when the dataset instance's remaining budget cannot cover
        ``key.epsilon`` — or, unconditionally, when the budget ledger
        itself was found corrupt: with the spending history unprovable,
        the only safe assumption is that nothing remains.

        The fit itself runs *outside* the store lock so concurrent reads
        are never stalled by a build.  The epsilon is reserved (spent and
        persisted) under the lock beforehand: the fit draws noise against
        that epsilon, so a crashed fit stays charged — conservative, and
        it prevents concurrent builds from overdrawing between check and
        fit.  A concurrent non-forced build of the same key waits for the
        in-flight fit instead of double-spending.  ``deadline`` bounds
        the waits and is checked before the fit starts.

        With an ingest manager attached, the build incorporates the
        staged streamed points and charges under the manager's epoch
        label; a spend whose epoch label is *already* in the ledger is
        skipped entirely — that is the crash-replay path, where the
        charge landed before the crash and the refit is a free,
        deterministic reconstruction of the identical release.
        """
        key = key.with_tenant(self._tenant)
        ingest = self._ingest
        context = ingest.build_context(key) if ingest is not None else None
        if not force:
            # Pre-check outside the store lock: serves the common
            # repeat-build case, including a disk reload, without
            # stalling other requests.
            synopsis = self._lookup_or_load(key, deadline)
            if synopsis is not None:
                return synopsis, False
        with self._lock:
            while True:
                if not force:
                    # Memory-only re-check: a load cannot be in flight
                    # past this point (the loop below excludes it), and
                    # hitting disk here would hold the lock through a
                    # decompress.
                    entry = self._cache.get(key)
                    if entry is not None:
                        self._cache.move_to_end(key)
                        self.stats.hits += 1
                        return entry.synopsis, False
                if key not in self._building and key not in self._loading:
                    break
                # Another thread is fitting or reloading this key; wait
                # so same-key loads and builds never interleave.
                self._wait_inflight(deadline)
            spend_label = context.spend_label if context is not None else key.slug()
            with self._ledger_lock():
                # Another process sharing this store_dir may have spent
                # since our last read; the flock plus a fresh read makes
                # check-then-spend atomic across processes.
                self._reload_budgets()
                if self._ledger_corrupt is not None:
                    self.stats.refusals += 1
                    raise BudgetRefused(
                        f"the budget ledger was corrupt and has been "
                        f"quarantined ({self._ledger_corrupt}); the spending "
                        "history cannot be proven, so all builds are refused — "
                        "restore the ledger or point the store at a fresh "
                        "directory"
                    )
                budget = self._budget_for(key.data_id)
                already_charged = (
                    context is not None
                    and context.salt > 0
                    and any(
                        entry.label == spend_label for entry in budget.ledger
                    )
                )
                if not already_charged:
                    if not budget.can_spend(key.epsilon):
                        self.stats.refusals += 1
                        raise BudgetRefused(
                            f"building {key.slug()!r} needs "
                            f"epsilon={key.epsilon:g} but dataset instance "
                            f"{key.data_id!r} has only "
                            f"{budget.remaining:g} of {budget.total:g} left "
                            f"(spent {budget.spent:g} across "
                            f"{len(budget.ledger)} "
                            f"release(s)); serve an existing release instead"
                        )
                    if deadline is not None:
                        deadline.check("reserving budget for the build")
                    budget.spend(key.epsilon, label=spend_label)
                    self._save_budgets()
            self._building.add(key)
        try:
            faultinject.fire("store.fit", key=key)
            if deadline is not None:
                deadline.check("fitting the release")
            spec = get_spec(key.dataset)
            dataset = spec.make(n=self._n_points, rng=key.seed)
            salt = 0
            if context is not None:
                salt = context.salt
                if context.points is not None and len(context.points):
                    dataset = dataset.extend(context.points)
            builder = make_builder(key.method)
            synopsis = builder.fit(dataset, key.epsilon, key.build_rng(salt))
            self._persist(key, synopsis)
        except BaseException:
            with self._lock:
                self._building.discard(key)
                self._inflight_done.notify_all()
            raise
        with self._lock:
            try:
                self.stats.builds += 1
                self._insert(key, synopsis)
                # A fresh, persisted release supersedes any quarantined
                # predecessor: the key serves again.
                self._quarantined.pop(key, None)
            finally:
                # Always clear the in-flight marker: leaving it would
                # deadlock every later request for this key.
                self._building.discard(key)
                self._inflight_done.notify_all()
        if ingest is not None and context is not None:
            # Commit the release to the ingestion log *after* the archive
            # and ledger are durable: a crash before this marker replays
            # into a free, bit-identical re-release (the epoch label is
            # already charged), after it into a clean no-op.
            ingest.note_released(key, context)
        if self._catalog is not None:
            # Best-effort metadata: the release itself (archive + spend)
            # is already durable, so a catalog hiccup here must not turn
            # a successful build into an error.
            with contextlib.suppress(Exception):
                self._catalog.note_release(self._tenant, key)
        return synopsis, True

    def for_tenant(self, tenant: str) -> "SynopsisStore":
        """A sibling store serving ``tenant`` with this store's config.

        Archives and the mirrored JSON ledger partition under
        ``<store_dir>/tenants/<tenant>``; the catalog (shared) scopes the
        authoritative ledger rows by tenant id.  Call on the *default*
        store — its directory is the partition root.
        """
        if tenant == self._tenant:
            return self
        store_dir = None
        if self._store_dir is not None:
            store_dir = self._store_dir / "tenants" / tenant
        return SynopsisStore(
            store_dir=store_dir,
            dataset_budget=self._dataset_budget,
            max_entries=self._max_entries,
            max_bytes=self._max_bytes,
            n_points=self._n_points,
            archive_format=self._archive_format,
            catalog=self._catalog,
            tenant=tenant,
        )

    def evict(self, key: ReleaseKey) -> bool:
        """Drop a release from the in-memory cache (disk copy untouched)."""
        key = key.with_tenant(self._tenant)
        with self._lock:
            entry = self._cache.pop(key, None)
            if entry is None:
                return False
            self._cached_bytes -= entry.nbytes
            self.stats.evictions += 1
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cached_keys(self) -> list[ReleaseKey]:
        """Keys currently held in memory, least recently used first."""
        with self._lock:
            return list(self._cache)

    def persisted_keys(self) -> list[ReleaseKey]:
        """Keys with an artifact on disk (empty for in-memory stores)."""
        if self._store_dir is None:
            return []
        keys = []
        for path in sorted(self._store_dir.glob("*.npz")):
            try:
                # Slugs never carry the tenant (archives live in the
                # tenant's own directory); stamp it back on so persisted
                # keys compare equal to request keys.
                keys.append(
                    ReleaseKey.from_slug(path.stem).with_tenant(self._tenant)
                )
            except Exception:
                continue  # unrelated file in the store directory
        return keys

    def cached_bytes(self) -> int:
        with self._lock:
            return self._cached_bytes

    @property
    def archive_format(self) -> str:
        """Container format written for newly persisted releases."""
        return self._archive_format

    @property
    def tenant(self) -> str:
        """The tenant namespace this store serves."""
        return self._tenant

    @property
    def store_dir(self) -> Path | None:
        """This store's persistence directory (``None`` for in-memory)."""
        return self._store_dir

    @property
    def catalog(self):
        """The attached metadata catalog (``None`` in JSON-ledger mode)."""
        return self._catalog

    def memory_payload(self) -> dict:
        """Process-memory view of the cache (for ``/health``).

        ``mapped`` lists, per cached release, the bytes served from a
        read-only archive mapping — pages the kernel shares across
        forked workers, so they cost roughly ``1/N``-th of their size
        per worker.  ``rss_bytes`` is this process's total resident set
        (``None`` off-Linux); private (v1 or freshly built) releases
        appear only there.
        """
        with self._lock:
            mapped = {
                key.slug(): entry.mapped_nbytes
                for key, entry in self._cache.items()
                if entry.mapped_nbytes
            }
        return {
            "rss_bytes": _process_rss_bytes(),
            "mapped_bytes": sum(mapped.values()),
            "mapped": mapped,
            "archive_format": self._archive_format,
        }

    def quarantined_keys(self) -> dict[ReleaseKey, str]:
        """Keys whose archives were quarantined, with the load error."""
        with self._lock:
            return dict(self._quarantined)

    @property
    def ledger_corrupt(self) -> str | None:
        """Why the budget ledger was quarantined (``None`` when healthy)."""
        return self._ledger_corrupt

    def budget_state(self) -> dict[str, dict]:
        """Per-dataset-instance budget summary (for ``GET /releases``)."""
        with self._lock:
            return {
                data_id: {
                    "total": budget.total,
                    "spent": budget.spent,
                    "remaining": budget.remaining,
                    "releases": [entry.label for entry in budget.ledger],
                }
                for data_id, budget in sorted(self._budgets.items())
            }

    def to_payload(self) -> dict:
        """Full JSON-friendly store state."""
        with self._lock:
            payload = {
                "cached": [key.to_payload() for key in self._cache],
                "cached_bytes": self._cached_bytes,
                "archive_format": self._archive_format,
                "max_entries": self._max_entries,
                "max_bytes": self._max_bytes,
                "dataset_budget": self._dataset_budget,
                "budgets": self.budget_state(),
                "stats": self.stats.to_payload(),
                "quarantined": {
                    key.slug(): reason
                    for key, reason in sorted(
                        self._quarantined.items(), key=lambda item: item[0].slug()
                    )
                },
                "ledger_corrupt": self._ledger_corrupt,
            }
        # The directory scan does disk I/O; run it outside the lock so a
        # slow listing never stalls cache hits.
        payload["persisted"] = [key.to_payload() for key in self.persisted_keys()]
        return payload

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _insert(self, key: ReleaseKey, synopsis: Synopsis) -> None:
        previous = self._cache.pop(key, None)
        if previous is not None:
            self._cached_bytes -= previous.nbytes
        entry = _Entry(
            synopsis,
            synopsis_nbytes(synopsis),
            getattr(synopsis, "mapped_nbytes", 0),
        )
        self._cache[key] = entry
        self._cached_bytes += entry.nbytes
        while len(self._cache) > 1 and (
            len(self._cache) > self._max_entries
            or self._cached_bytes > self._max_bytes
        ):
            _, evicted = self._cache.popitem(last=False)
            self._cached_bytes -= evicted.nbytes
            self.stats.evictions += 1

    def _release_path(self, key: ReleaseKey) -> Path | None:
        if self._store_dir is None:
            return None
        return self._store_dir / f"{key.slug()}.npz"

    def _persist(self, key: ReleaseKey, synopsis: Synopsis) -> None:
        """Crash-safely write the release artifact (checksummed bytes).

        A reader racing a forced rebuild, or a crash mid-write, must
        never observe a half-written archive: the checksummed payload is
        written to a temp file, fsync'd, renamed over the target, and
        the directory entry fsync'd (see :func:`_atomic_write`).
        """
        path = self._release_path(key)
        if path is None:
            return
        _atomic_write(
            path,
            synopsis_to_bytes(synopsis, self._archive_format),
            fault_prefix="archive",
        )

    def _quarantine_archive(
        self, path: Path, key: ReleaseKey, error: Exception
    ) -> None:
        """Move an unreadable archive aside and record why."""
        reason = f"{type(error).__name__}: {error}"
        try:
            os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))
        except OSError:
            # Racing quarantines / an already-vanished file: the key is
            # marked either way, which is what stops the crash loop.
            pass
        with self._lock:
            self.stats.quarantined += 1
            self._quarantined[key] = reason

    def _budget_for(self, data_id: str) -> PrivacyBudget:
        budget = self._budgets.get(data_id)
        if budget is None:
            budget = PrivacyBudget(self._dataset_budget)
            self._budgets[data_id] = budget
        return budget

    @contextlib.contextmanager
    def _ledger_lock(self):
        """Cross-process exclusion around ledger check-then-spend.

        An ``fcntl.flock`` on a dedicated lock file (the ledger itself
        is replaced by rename on every write, so its inode cannot carry
        a lock).  In-memory stores, and platforms without ``fcntl``,
        fall back to the in-process lock already held by the caller.
        The lock orders strictly after the store's thread lock — every
        caller already holds ``self._lock`` — so there is no
        lock-ordering cycle.
        """
        if self._catalog is not None:
            # Catalog mode: the SQLite transaction *is* the cross-process
            # exclusion — BEGIN IMMEDIATE takes the write lock up front,
            # so reload + check + spend commit atomically against every
            # process sharing the catalog file.
            with self._catalog.exclusive():
                yield
            return
        if self._store_dir is None or fcntl is None:
            yield
            return
        fd = os.open(
            self._store_dir / _LEDGER_LOCK_FILE, os.O_CREAT | os.O_RDWR, 0o644
        )
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _reload_budgets(self) -> None:
        """Refresh in-memory budgets from disk (call under the flock).

        Re-reading immediately before check-then-spend is what makes the
        flock effective: without it, a spend by another process between
        our init-time load and now would be invisible and the check
        would approve an overdraw.
        """
        if self._ledger_corrupt is not None:
            return
        if self._store_dir is None and self._catalog is None:
            return
        self._load_budgets()

    def _budgets_from_payload(self, raw: dict) -> dict[str, PrivacyBudget]:
        """Replay a ``{data_id: {total, ledger}}`` payload into budgets.

        Raises the same family of errors for malformed state as the JSON
        parser does, so both ledger backends share one corruption path.
        """
        budgets: dict[str, PrivacyBudget] = {}
        for data_id, state in raw.items():
            # Keep the persisted total: weakening it would break the
            # guarantee already promised to the data's owners.
            budget = PrivacyBudget(float(state["total"]))
            for epsilon, label in state["ledger"]:
                budget.spend(float(epsilon), str(label))
            budgets[data_id] = budget
        return budgets

    def _load_budgets_catalog(self) -> None:
        """Load the tenant's ledger from the catalog.

        A catalog that cannot be read or replayed puts the store into
        the same refuse-all-builds mode as a corrupt JSON ledger — the
        spending history is unprovable either way.
        """
        import sqlite3

        try:
            raw = self._catalog.load_budgets(self._tenant)
            budgets = self._budgets_from_payload(raw)
        except (
            sqlite3.Error,
            ValueError,
            KeyError,
            TypeError,
            AttributeError,
            BudgetExceededError,
        ) as error:
            self._ledger_corrupt = f"{type(error).__name__}: {error}"
            return
        self._budgets.update(budgets)

    def _load_budgets(self) -> None:
        """Load the ledger; quarantine it and refuse builds when corrupt.

        The ledger is written atomically, so after any crash it is a
        complete old or new file — but on-disk bit-rot or manual edits
        can still corrupt it.  A corrupt ledger must never be silently
        reset: an empty ledger would let every past spend be repeated,
        doubling the real privacy loss.  Instead the file is renamed to
        ``budgets.json.corrupt`` and the store enters a conservative
        mode where *all* builds are refused (serving persisted releases
        is post-processing and remains safe).

        In catalog mode the SQLite tables are authoritative and this
        loads from them instead; the JSON file on disk is then only the
        mirrored fallback copy and is never parsed for truth.
        """
        if self._catalog is not None:
            self._load_budgets_catalog()
            return
        path = self._store_dir / _BUDGET_FILE
        if not path.exists():
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") != _BUDGET_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported budget ledger version {payload.get('version')!r}"
                )
            budgets: dict[str, PrivacyBudget] = {}
            for data_id, state in payload["budgets"].items():
                # Keep the persisted total: weakening it would break the
                # guarantee already promised to the data's owners.
                budget = PrivacyBudget(float(state["total"]))
                for epsilon, label in state["ledger"]:
                    budget.spend(float(epsilon), str(label))
                budgets[data_id] = budget
        except (
            ValueError,  # bad JSON, bad version, bad floats
            KeyError,
            TypeError,
            AttributeError,
            BudgetExceededError,  # ledger entries overdraw their own total
        ) as error:
            reason = f"{type(error).__name__}: {error}"
            try:
                os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))
            except OSError:
                pass
            self._ledger_corrupt = reason
            return
        self._budgets.update(budgets)

    def _save_budgets(self) -> None:
        """Durably persist the ledger (atomic temp + fsync + rename).

        Called with the spend already applied in memory, *before* the
        fit touches sensitive data — so after a crash at any byte
        boundary the on-disk ledger is either the complete pre-spend or
        the complete post-spend state, and restart can only ever
        over-count (conservative), never under-count, the epsilon spent.

        In catalog mode the spend lands as catalog rows *inside* the
        surrounding ``BEGIN IMMEDIATE`` transaction (authoritative), and
        the JSON file is then rewritten as a mirror.  A crash between
        mirror write and commit leaves the JSON over-counting — the
        conservative direction, identical to the JSON-only protocol —
        and the next committed spend rewrites the mirror from truth.
        """
        if self._store_dir is None and self._catalog is None:
            return
        state = {
            data_id: {
                "total": budget.total,
                "ledger": [
                    [entry.epsilon, entry.label] for entry in budget.ledger
                ],
            }
            for data_id, budget in self._budgets.items()
        }
        if self._catalog is not None:
            self._catalog.replace_budgets(self._tenant, state)
        if self._store_dir is None:
            return
        payload = {"version": _BUDGET_FORMAT_VERSION, "budgets": state}
        _atomic_write(
            self._store_dir / _BUDGET_FILE,
            json.dumps(payload, indent=2).encode("utf-8"),
            fault_prefix="ledger",
        )
