"""``python -m repro`` — run the experiment CLI or the synopsis server.

``python -m repro <experiment>`` regenerates a paper table/figure;
``python -m repro serve`` starts the HTTP serving layer (see
:mod:`repro.service.cli`).
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
