"""Exact batched ground-truth counting over a CSR bucket grid.

Evaluating a synopsis means comparing its estimates against the exact
count ``A(r)`` for thousands of query rectangles over the same dataset
(Section V-A: 200 random queries per size, six sizes, many trials and
epsilons).  The scalar oracle — one full boolean mask per rectangle —
pays O(N) per query, which makes ground truth the slowest layer of the
evaluation pipeline once the synopsis engines are vectorised.

:class:`GroundTruthIndex` removes that cost with the same layout
machinery as the flat AG kernel (:mod:`repro.queries.engine`): the
points are bucketed once into an ``m x m`` equi-width grid with
``m ~ sqrt(N)`` (so ~1 point per bucket on average), stored as CSR
arrays — per-bucket offsets into coordinate arrays sorted by bucket id —
alongside a zero-bordered 2-D prefix sum of the bucket counts.  A batch
of closed rectangles is then answered exactly in one vectorised pass:

1. each query's bucket-index ranges come from the *same* binning
   function the points were bucketed with
   (:meth:`~repro.core.grid.GridLayout.cell_indices`),
2. the fully covered interior block of buckets — everything strictly
   between the lo and hi bucket indices on both axes — is answered O(1)
   per query from the prefix sum,
3. only the O(sqrt N) border-ring buckets are expanded into
   (query, bucket) pairs and then into candidate points with
   ``repeat``/``arange`` arithmetic, and filtered with closed-rectangle
   masks against the sorted coordinate arrays.

Exactness does not rest on any floating-point edge reasoning: every
arithmetic step of the binning function (subtract, divide, multiply,
truncate, clip) is monotone non-decreasing, so a point binned strictly
between ``bin(lo)`` and ``bin(hi)`` provably lies strictly inside
``[lo, hi]``, and a point binned outside ``[bin(lo), bin(hi)]`` provably
lies outside.  Border buckets — where the query boundary could fall —
are always resolved by explicit point-level masks, which are the same
comparisons :meth:`repro.core.geometry.Rect.mask` performs.

``GeoDataset`` builds one of these lazily (:meth:`GeoDataset.count_many`)
so workload generation and evaluation share a single index per dataset;
the scalar mask loop remains available as the equivalence reference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.geometry import Domain2D, rects_to_boxes
from repro.core.grid import GridLayout

__all__ = ["GroundTruthIndex"]

#: Largest per-axis bucket count: the 1024 cap bounds the prefix-sum
#: matrix at ``1025^2`` int64 entries (~8 MB); doubling past ~4096 would
#: cost ~134 MB for no border-ring benefit at realistic N.
_MAX_RESOLUTION = 1024


def _ragged_arange(sizes: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(sizes[0]), arange(sizes[1]), ...`` as one array.

    The building block of every CSR ragged expansion here: combined with
    ``np.repeat`` of per-segment bases it enumerates all (segment, local
    offset) pairs without a Python loop.
    """
    total = int(sizes.sum())
    starts = np.cumsum(sizes) - sizes
    return np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)


class GroundTruthIndex:
    """Exact closed-rectangle counting over a static 2-D point set.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of points inside ``domain``.
    domain:
        The rectangular domain queries are clipped to.  Points outside
        are rejected (the index's exactness argument needs every point
        binned).
    resolution:
        Per-axis bucket count ``m``.  Defaults to ``~sqrt(N)`` (clamped
        to ``[1, 1024]``) so buckets hold ~1 point on average and a
        query's border ring touches O(sqrt N) points.
    """

    def __init__(
        self,
        points: np.ndarray,
        domain: Domain2D,
        resolution: int | None = None,
    ):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        bounds = domain.bounds
        if points.size and (
            points[:, 0].min() < bounds.x_lo
            or points[:, 0].max() > bounds.x_hi
            or points[:, 1].min() < bounds.y_lo
            or points[:, 1].max() > bounds.y_hi
        ):
            # An outside point would be clipped into an edge bucket yet
            # excluded by the domain-clipped query masks — silently
            # wrong counts instead of a loud failure.
            raise ValueError("points fall outside the domain")
        n = points.shape[0]
        if resolution is None:
            resolution = max(1, min(_MAX_RESOLUTION, math.isqrt(max(n, 1))))
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")

        layout = GridLayout(domain, resolution, resolution)
        self._layout = layout
        self._n = n
        m = resolution
        if n:
            ix, iy = layout.cell_indices(points)
            flat = ix * m + iy
        else:
            flat = np.zeros(0, dtype=np.int64)
        # CSR over buckets: order maps sorted position -> original index,
        # offsets[c] .. offsets[c + 1] is bucket c's slice of xs/ys.
        order = np.argsort(flat, kind="stable")
        bucket_counts = np.bincount(flat, minlength=m * m).astype(np.int64)
        offsets = np.zeros(m * m + 1, dtype=np.int64)
        np.cumsum(bucket_counts, out=offsets[1:])
        self._order = order
        self._offsets = offsets
        self._xs = points[order, 0]
        self._ys = points[order, 1]
        # Zero-bordered 2-D prefix sum of bucket counts (int64: counts
        # stay exact, no float accumulation).
        prefix = np.zeros((m + 1, m + 1), dtype=np.int64)
        np.cumsum(
            np.cumsum(bucket_counts.reshape(m, m), axis=0), axis=1,
            out=prefix[1:, 1:],
        )
        self._prefix = prefix

    @property
    def resolution(self) -> int:
        """Per-axis bucket count ``m``."""
        return self._layout.mx

    @property
    def n_points(self) -> int:
        return self._n

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the index arrays."""
        arrays = (self._order, self._offsets, self._xs, self._ys, self._prefix)
        return sum(a.nbytes for a in arrays)

    # ------------------------------------------------------------------
    # Batch counting
    # ------------------------------------------------------------------

    def _query_bins(self, boxes: np.ndarray):
        """Clip a box batch to the domain and bin its corner coordinates.

        Returns ``(valid, clipped, i_lo, i_hi, j_lo, j_hi)`` where
        ``valid`` marks boxes whose closed intersection with the domain
        is non-empty (everything else counts 0) and the index arrays are
        only meaningful on valid rows.  Binning goes through the same
        :meth:`GridLayout.cell_indices` call the points were bucketed
        with, which is what makes the interior/border split exact.
        """
        bounds = self._layout.domain.bounds
        # A rectangle only counts points if its *original* closed extent
        # meets the closed domain; clipping first would silently snap an
        # outside rectangle onto the boundary and count edge points.
        valid = (
            (boxes[:, 2] >= boxes[:, 0])
            & (boxes[:, 3] >= boxes[:, 1])
            & (boxes[:, 0] <= bounds.x_hi)
            & (boxes[:, 2] >= bounds.x_lo)
            & (boxes[:, 1] <= bounds.y_hi)
            & (boxes[:, 3] >= bounds.y_lo)
        )
        clipped = np.empty_like(boxes)
        clipped[:, 0] = np.clip(boxes[:, 0], bounds.x_lo, bounds.x_hi)
        clipped[:, 1] = np.clip(boxes[:, 1], bounds.y_lo, bounds.y_hi)
        clipped[:, 2] = np.clip(boxes[:, 2], bounds.x_lo, bounds.x_hi)
        clipped[:, 3] = np.clip(boxes[:, 3], bounds.y_lo, bounds.y_hi)
        i_lo, j_lo = self._layout.cell_indices(clipped[:, (0, 1)])
        i_hi, j_hi = self._layout.cell_indices(clipped[:, (2, 3)])
        return valid, clipped, i_lo, i_hi, j_lo, j_hi

    def count_batch(self, rects) -> np.ndarray:
        """Exact point counts for a batch of closed rectangles.

        Accepts the same batch forms as the query engines (a list of
        :class:`Rect` or an ``(n, 4)`` array); inverted rows
        (``x_hi < x_lo`` or ``y_hi < y_lo``) count 0.  Returns an
        ``int64`` array of length ``n``.
        """
        boxes = rects_to_boxes(rects)
        n_queries = boxes.shape[0]
        out = np.zeros(n_queries, dtype=np.int64)
        if n_queries == 0 or self._n == 0:
            return out

        valid, clipped, i_lo, i_hi, j_lo, j_hi = self._query_bins(boxes)
        q = np.flatnonzero(valid)
        if q.size == 0:
            return out
        i_lo, i_hi = i_lo[q], i_hi[q]
        j_lo, j_hi = j_lo[q], j_hi[q]

        # Interior block: buckets strictly between the corner bins on
        # both axes lie strictly inside the closed query (monotone
        # binning), so the prefix sum answers them exactly in O(1).
        a_lo, a_hi = i_lo + 1, i_hi - 1
        b_lo, b_hi = j_lo + 1, j_hi - 1
        interior = (a_lo <= a_hi) & (b_lo <= b_hi)
        if interior.any():
            p = self._prefix
            qi = q[interior]
            x0, x1 = a_lo[interior], a_hi[interior] + 1
            y0, y1 = b_lo[interior], b_hi[interior] + 1
            out[qi] = p[x1, y1] - p[x0, y1] - p[x1, y0] + p[x0, y0]

        # Border ring: the lo/hi bucket columns full-height plus the
        # lo/hi bucket rows between them, as four disjoint bands
        # expanded to (query, bucket) pairs — at most O(sqrt N) buckets
        # per query at the default resolution.
        band_q = np.concatenate([q, q, q, q])
        band_i_lo = np.concatenate([i_lo, i_hi, a_lo, a_lo])
        band_i_hi = np.concatenate([i_lo, i_hi, a_hi, a_hi])
        band_j_lo = np.concatenate([j_lo, j_lo, j_lo, j_hi])
        band_j_hi = np.concatenate([j_hi, j_hi, j_lo, j_hi])
        # Collapse duplicated bands so no bucket is visited twice: the
        # hi column when i_hi == i_lo, and the hi row when j_hi == j_lo.
        dup_col = i_hi == i_lo
        dup_row = j_hi == j_lo
        n_valid = q.size
        band_i_hi[n_valid : 2 * n_valid][dup_col] = (
            band_i_lo[n_valid : 2 * n_valid][dup_col] - 1
        )
        band_j_hi[3 * n_valid :][dup_row] = band_j_lo[3 * n_valid :][dup_row] - 1

        nx = np.maximum(0, band_i_hi - band_i_lo + 1)
        ny = np.maximum(0, band_j_hi - band_j_lo + 1)
        k = nx * ny
        occupied = k > 0
        band_q = band_q[occupied]
        band_i_lo, band_j_lo = band_i_lo[occupied], band_j_lo[occupied]
        ny, k = ny[occupied], k[occupied]
        total_pairs = int(k.sum())
        if total_pairs == 0:
            return out
        pair_q = np.repeat(band_q, k)
        local = _ragged_arange(k)
        ny_rep = np.repeat(ny, k)
        di = local // ny_rep
        dj = local - di * ny_rep
        m = self._layout.my
        bucket = (np.repeat(band_i_lo, k) + di) * m + (np.repeat(band_j_lo, k) + dj)

        # Expand border pairs to candidate points and filter with the
        # closed-rectangle comparisons Rect.mask performs.
        sizes = self._offsets[bucket + 1] - self._offsets[bucket]
        nonempty = sizes > 0
        pair_q, bucket, sizes = pair_q[nonempty], bucket[nonempty], sizes[nonempty]
        total_points = int(sizes.sum())
        if total_points == 0:
            return out
        pos = np.repeat(self._offsets[bucket], sizes) + _ragged_arange(sizes)
        pt_q = np.repeat(pair_q, sizes)
        px, py = self._xs[pos], self._ys[pos]
        inside = (
            (px >= clipped[pt_q, 0])
            & (px <= clipped[pt_q, 2])
            & (py >= clipped[pt_q, 1])
            & (py <= clipped[pt_q, 3])
        )
        out += np.bincount(pt_q[inside], minlength=n_queries)
        return out

    def _member_positions(self, rect) -> np.ndarray:
        """Sorted-array positions of every point inside one closed rect.

        Touches only the interior buckets' CSR slices plus the filtered
        border ring — O(result + sqrt N) work at the default resolution.
        """
        boxes = rects_to_boxes([rect])
        if self._n == 0:
            return np.empty(0, dtype=np.int64)
        valid, clipped, i_lo, i_hi, j_lo, j_hi = self._query_bins(boxes)
        if not valid[0]:
            return np.empty(0, dtype=np.int64)
        i_lo, i_hi = int(i_lo[0]), int(i_hi[0])
        j_lo, j_hi = int(j_lo[0]), int(j_hi[0])
        m = self._layout.my
        chunks = []

        # Interior buckets: every point belongs, straight from the CSR
        # slices (contiguous per bucket row segment).
        if i_hi - i_lo >= 2 and j_hi - j_lo >= 2:
            rows = np.arange(i_lo + 1, i_hi)
            seg_lo = self._offsets[rows * m + (j_lo + 1)]
            seg_hi = self._offsets[rows * m + j_hi]
            lens = seg_hi - seg_lo
            if lens.sum():
                chunks.append(np.repeat(seg_lo, lens) + _ragged_arange(lens))

        # Border ring buckets: gather candidates, filter explicitly.
        cols = np.arange(i_lo, i_hi + 1)
        border = [cols * m + j_lo]
        if j_hi != j_lo:
            border.append(cols * m + j_hi)
        if j_hi - j_lo >= 2:
            rows_j = np.arange(j_lo + 1, j_hi)
            border.append(i_lo * m + rows_j)
            if i_hi != i_lo:
                border.append(i_hi * m + rows_j)
        buckets = np.concatenate(border)
        sizes = self._offsets[buckets + 1] - self._offsets[buckets]
        if sizes.sum():
            pos = np.repeat(self._offsets[buckets], sizes) + _ragged_arange(sizes)
            px, py = self._xs[pos], self._ys[pos]
            x_lo, y_lo, x_hi, y_hi = clipped[0]
            inside = (px >= x_lo) & (px <= x_hi) & (py >= y_lo) & (py <= y_hi)
            chunks.append(pos[inside])

        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def indices_for(self, rect) -> np.ndarray:
        """Original-order indices of the points inside one closed rect.

        ``points[index.indices_for(r)]`` equals ``points[r.mask(...)]``
        (same points, same order) in O(result log result + sqrt N)
        instead of O(N) — this is the sublinear path behind
        :meth:`GeoDataset.subset`.
        """
        return np.sort(self._order[self._member_positions(rect)])

    def mask_for(self, rect) -> np.ndarray:
        """Boolean membership mask (in *original* point order) for one rect.

        Equivalent to ``rect.mask(xs, ys)``.  Note the returned mask is
        necessarily N long, so this is O(N) however few points match;
        use :meth:`indices_for` when the caller only needs the members.
        """
        mask = np.zeros(self._n, dtype=bool)
        mask[self._order[self._member_positions(rect)]] = True
        return mask
