"""The geospatial dataset container.

A :class:`GeoDataset` is an immutable bag of 2-D points together with the
:class:`~repro.core.geometry.Domain2D` they live in.  It is the single
input to every synopsis method, and also serves as the ground truth oracle
(:meth:`GeoDataset.count_in`) when evaluating query error.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.core.geometry import Domain2D, Rect

__all__ = ["GeoDataset"]


class GeoDataset:
    """An immutable set of 2-D points inside a rectangular domain.

    Parameters
    ----------
    points:
        Array of shape ``(n, 2)`` with columns ``(x, y)``.  Points must lie
        within ``domain`` (use :meth:`from_points` with ``clip=True`` to
        clamp outliers).
    domain:
        The data domain; queries are rectangles inside it.
    name:
        Optional human-readable label used in experiment reports.
    """

    def __init__(
        self,
        points: np.ndarray,
        domain: Domain2D,
        name: str = "unnamed",
    ):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        bounds = domain.bounds
        if points.size and (
            points[:, 0].min() < bounds.x_lo
            or points[:, 0].max() > bounds.x_hi
            or points[:, 1].min() < bounds.y_lo
            or points[:, 1].max() > bounds.y_hi
        ):
            raise ValueError(
                "points fall outside the domain; use GeoDataset.from_points(..., "
                "clip=True) to clamp them"
            )
        self._points = points
        self._points.setflags(write=False)
        self._domain = domain
        self._name = name

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        domain: Domain2D | None = None,
        name: str = "unnamed",
        clip: bool = False,
    ) -> "GeoDataset":
        """Build a dataset, optionally inferring the domain or clipping points.

        When ``domain`` is ``None`` the bounding box of the points (expanded
        by a tiny margin so no point sits exactly on the boundary of a
        degenerate domain) is used.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        if domain is None:
            if points.shape[0] == 0:
                raise ValueError("cannot infer a domain from an empty point set")
            x_lo, y_lo = points.min(axis=0)
            x_hi, y_hi = points.max(axis=0)
            margin_x = max(1e-9, (x_hi - x_lo) * 1e-9)
            margin_y = max(1e-9, (y_hi - y_lo) * 1e-9)
            domain = Domain2D(
                x_lo - margin_x, y_lo - margin_y, x_hi + margin_x, y_hi + margin_y
            )
        if clip:
            points = domain.clip_points(points)
        return cls(points, domain, name=name)

    @property
    def points(self) -> np.ndarray:
        """Read-only ``(n, 2)`` point array."""
        return self._points

    @property
    def xs(self) -> np.ndarray:
        return self._points[:, 0]

    @property
    def ys(self) -> np.ndarray:
        return self._points[:, 1]

    @property
    def domain(self) -> Domain2D:
        return self._domain

    @property
    def name(self) -> str:
        return self._name

    @property
    def size(self) -> int:
        """Number of data points N."""
        return self._points.shape[0]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"GeoDataset({self._name!r}, n={self.size}, domain={self._domain!r})"

    def count_in(self, rect: Rect) -> int:
        """Exact number of points inside the closed rectangle ``rect``.

        This is the ground-truth answer ``A(r)`` used to measure synopsis
        error; it is *not* differentially private.
        """
        return int(np.count_nonzero(rect.mask(self.xs, self.ys)))

    def count_many(self, rects: list[Rect]) -> np.ndarray:
        """Exact counts for a list of query rectangles."""
        return np.array([self.count_in(rect) for rect in rects], dtype=float)

    def subset(self, rect: Rect, name: str | None = None) -> "GeoDataset":
        """Points falling inside ``rect``, with ``rect`` as the new domain."""
        mask = rect.mask(self.xs, self.ys)
        sub_domain = Domain2D(rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)
        return GeoDataset(
            self._points[mask], sub_domain, name=name or f"{self._name}-subset"
        )

    def sample(self, n: int, rng: np.random.Generator) -> "GeoDataset":
        """A uniform random sample of ``n`` points (without replacement)."""
        if n > self.size:
            raise ValueError(f"cannot sample {n} from {self.size} points")
        index = rng.choice(self.size, size=n, replace=False)
        return GeoDataset(
            self._points[index], self._domain, name=f"{self._name}-sample{n}"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist points and domain to an ``.npz`` file."""
        bounds = self._domain.bounds
        np.savez_compressed(
            Path(path),
            points=self._points,
            domain=np.array(bounds.as_tuple()),
            name=np.array(self._name),
        )

    @classmethod
    def load(cls, path: str | Path) -> "GeoDataset":
        """Load a dataset previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as archive:
            points = archive["points"]
            x_lo, y_lo, x_hi, y_hi = archive["domain"]
            name = str(archive["name"])
        return cls(points, Domain2D(x_lo, y_lo, x_hi, y_hi), name=name)

    def to_csv(self, path_or_buffer: str | Path | io.TextIOBase) -> None:
        """Write ``x,y`` rows (with header) to a CSV file or buffer."""
        if isinstance(path_or_buffer, (str, Path)):
            with open(path_or_buffer, "w", encoding="utf-8") as handle:
                self._write_csv(handle)
        else:
            self._write_csv(path_or_buffer)

    def _write_csv(self, handle: io.TextIOBase) -> None:
        handle.write("x,y\n")
        for x, y in self._points:
            handle.write(f"{float(x)!r},{float(y)!r}\n")

    @classmethod
    def from_csv(
        cls,
        path_or_buffer: str | Path | io.TextIOBase,
        domain: Domain2D | None = None,
        name: str = "csv",
    ) -> "GeoDataset":
        """Read a dataset from a two-column ``x,y`` CSV with a header row."""
        if isinstance(path_or_buffer, (str, Path)):
            data = np.loadtxt(path_or_buffer, delimiter=",", skiprows=1, ndmin=2)
        else:
            data = np.loadtxt(path_or_buffer, delimiter=",", skiprows=1, ndmin=2)
        if data.size == 0:
            data = data.reshape(0, 2)
        return cls.from_points(data, domain=domain, name=name)
