"""The geospatial dataset container.

A :class:`GeoDataset` is an immutable bag of 2-D points together with the
:class:`~repro.core.geometry.Domain2D` they live in.  It is the single
input to every synopsis method, and also serves as the ground truth oracle
(:meth:`GeoDataset.count_in`) when evaluating query error.

Batched ground truth (:meth:`GeoDataset.count_many`) is served by a
lazily built :class:`~repro.core.point_index.GroundTruthIndex` — a CSR
bucket grid with a 2-D prefix sum — once the dataset and the batch are
large enough to amortise the build; the scalar mask loop
(:meth:`GeoDataset.count_many_scalar`) remains the equivalence reference.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.core.geometry import Domain2D, Rect, rects_to_boxes
from repro.core.point_index import GroundTruthIndex

__all__ = ["GeoDataset"]

#: Below this point count the scalar mask loop beats building an index.
_INDEX_MIN_POINTS = 4096

#: Below this batch size a one-off scalar loop beats building an index.
_INDEX_MIN_BATCH = 16


class GeoDataset:
    """An immutable set of 2-D points inside a rectangular domain.

    Parameters
    ----------
    points:
        Array of shape ``(n, 2)`` with columns ``(x, y)``.  Points must lie
        within ``domain`` (use :meth:`from_points` with ``clip=True`` to
        clamp outliers).
    domain:
        The data domain; queries are rectangles inside it.
    name:
        Optional human-readable label used in experiment reports.
    """

    def __init__(
        self,
        points: np.ndarray,
        domain: Domain2D,
        name: str = "unnamed",
    ):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        bounds = domain.bounds
        if points.size and (
            points[:, 0].min() < bounds.x_lo
            or points[:, 0].max() > bounds.x_hi
            or points[:, 1].min() < bounds.y_lo
            or points[:, 1].max() > bounds.y_hi
        ):
            raise ValueError(
                "points fall outside the domain; use GeoDataset.from_points(..., "
                "clip=True) to clamp them"
            )
        self._points = points
        self._points.setflags(write=False)
        self._domain = domain
        self._name = name
        self._gt_index: GroundTruthIndex | None = None  # lazy, see count_many

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        domain: Domain2D | None = None,
        name: str = "unnamed",
        clip: bool = False,
    ) -> "GeoDataset":
        """Build a dataset, optionally inferring the domain or clipping points.

        When ``domain`` is ``None`` the bounding box of the points (expanded
        by a tiny margin so no point sits exactly on the boundary of a
        degenerate domain) is used.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        if domain is None:
            if points.shape[0] == 0:
                raise ValueError("cannot infer a domain from an empty point set")
            x_lo, y_lo = points.min(axis=0)
            x_hi, y_hi = points.max(axis=0)
            margin_x = max(1e-9, (x_hi - x_lo) * 1e-9)
            margin_y = max(1e-9, (y_hi - y_lo) * 1e-9)
            domain = Domain2D(
                x_lo - margin_x, y_lo - margin_y, x_hi + margin_x, y_hi + margin_y
            )
        if clip:
            points = domain.clip_points(points)
        return cls(points, domain, name=name)

    @property
    def points(self) -> np.ndarray:
        """Read-only ``(n, 2)`` point array."""
        return self._points

    @property
    def xs(self) -> np.ndarray:
        return self._points[:, 0]

    @property
    def ys(self) -> np.ndarray:
        return self._points[:, 1]

    @property
    def domain(self) -> Domain2D:
        return self._domain

    @property
    def name(self) -> str:
        return self._name

    @property
    def size(self) -> int:
        """Number of data points N."""
        return self._points.shape[0]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"GeoDataset({self._name!r}, n={self.size}, domain={self._domain!r})"

    def __getstate__(self) -> dict:
        # The ground-truth index can be several times the point array's
        # size; drop it so pickles (e.g. to trial-runner workers) stay
        # lean.  It is rebuilt lazily on first count_many.
        state = self.__dict__.copy()
        state["_gt_index"] = None
        return state

    def count_in(self, rect: Rect) -> int:
        """Exact number of points inside the closed rectangle ``rect``.

        This is the ground-truth answer ``A(r)`` used to measure synopsis
        error; it is *not* differentially private.
        """
        return int(np.count_nonzero(rect.mask(self.xs, self.ys)))

    def ground_truth_index(self) -> GroundTruthIndex:
        """The dataset's CSR ground-truth index, built on first use.

        The index is cached on the dataset (and rebuilt lazily after
        unpickling — it never travels across process boundaries).
        """
        if self._gt_index is None:
            self._gt_index = GroundTruthIndex(self._points, self._domain)
        return self._gt_index

    def count_many(self, rects: list[Rect]) -> np.ndarray:
        """Exact counts for a batch of query rectangles.

        Large batches over large datasets are answered by the CSR
        :class:`GroundTruthIndex` in one vectorised pass; small cases
        fall back to the scalar mask loop, whose answers are identical
        (see ``tests/properties/test_property_point_index.py``).
        """
        boxes = rects_to_boxes(rects)
        use_index = self._gt_index is not None or (
            self.size >= _INDEX_MIN_POINTS and boxes.shape[0] >= _INDEX_MIN_BATCH
        )
        if use_index:
            return self.ground_truth_index().count_batch(boxes).astype(float)
        return self.count_many_scalar(boxes)

    def count_many_scalar(self, rects: list[Rect]) -> np.ndarray:
        """The O(N)-per-query mask loop: the equivalence reference for
        :class:`GroundTruthIndex`.

        Accepts the same batch forms as the index path (a list of
        :class:`Rect` or an ``(n, 4)`` array) with the same contract:
        inverted rows count 0.
        """
        boxes = rects_to_boxes(rects)
        out = np.zeros(boxes.shape[0])
        for idx, (x_lo, y_lo, x_hi, y_hi) in enumerate(boxes):
            if x_hi >= x_lo and y_hi >= y_lo:
                out[idx] = self.count_in(Rect(x_lo, y_lo, x_hi, y_hi))
        return out

    def subset(self, rect: Rect, name: str | None = None) -> "GeoDataset":
        """Points falling inside ``rect``, with ``rect`` as the new domain.

        Point order is preserved.  When the ground-truth index is
        already built, membership comes from its bucket ring
        (:meth:`GroundTruthIndex.indices_for`, sublinear in N) instead
        of a full O(N) mask.
        """
        if self._gt_index is not None:
            selected = self._points[self._gt_index.indices_for(rect)]
        else:
            selected = self._points[rect.mask(self.xs, self.ys)]
        sub_domain = Domain2D(rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)
        return GeoDataset(
            selected, sub_domain, name=name or f"{self._name}-subset"
        )

    def extend(self, points: np.ndarray, clip: bool = True) -> "GeoDataset":
        """A new dataset with ``points`` appended after the existing ones.

        The streaming-ingest append path: the base points keep their
        order and the new points follow them, so re-fitting a synopsis
        on ``base.extend(staged)`` is a pure function of (base dataset,
        staged points) — the property crash replay relies on.  ``clip``
        clamps out-of-domain points to the domain boundary (ingest never
        sees the domain up front, so rejecting at append time would
        poison the whole write-ahead log for one stray coordinate);
        ``clip=False`` keeps the constructor's strict validation.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        if points.shape[0] == 0:
            return self
        if clip:
            points = self._domain.clip_points(points)
        return GeoDataset(
            np.concatenate([self._points, points]), self._domain, name=self._name
        )

    def sample(self, n: int, rng: np.random.Generator) -> "GeoDataset":
        """A uniform random sample of ``n`` points (without replacement)."""
        if n > self.size:
            raise ValueError(f"cannot sample {n} from {self.size} points")
        index = rng.choice(self.size, size=n, replace=False)
        return GeoDataset(
            self._points[index], self._domain, name=f"{self._name}-sample{n}"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist points and domain to an ``.npz`` file."""
        bounds = self._domain.bounds
        np.savez_compressed(
            Path(path),
            points=self._points,
            domain=np.array(bounds.as_tuple()),
            name=np.array(self._name),
        )

    @classmethod
    def load(cls, path: str | Path) -> "GeoDataset":
        """Load a dataset previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as archive:
            points = archive["points"]
            x_lo, y_lo, x_hi, y_hi = archive["domain"]
            name = str(archive["name"])
        return cls(points, Domain2D(x_lo, y_lo, x_hi, y_hi), name=name)

    def to_csv(self, path_or_buffer: str | Path | io.TextIOBase) -> None:
        """Write ``x,y`` rows (with header) to a CSV file or buffer."""
        if isinstance(path_or_buffer, (str, Path)):
            with open(path_or_buffer, "w", encoding="utf-8") as handle:
                self._write_csv(handle)
        else:
            self._write_csv(path_or_buffer)

    def _write_csv(self, handle: io.TextIOBase) -> None:
        handle.write("x,y\n")
        for x, y in self._points:
            handle.write(f"{float(x)!r},{float(y)!r}\n")

    @classmethod
    def from_csv(
        cls,
        path_or_buffer: str | Path | io.TextIOBase,
        domain: Domain2D | None = None,
        name: str = "csv",
    ) -> "GeoDataset":
        """Read a dataset from a two-column ``x,y`` CSV with a header row."""
        if isinstance(path_or_buffer, (str, Path)):
            data = np.loadtxt(path_or_buffer, delimiter=",", skiprows=1, ndmin=2)
        else:
            data = np.loadtxt(path_or_buffer, delimiter=",", skiprows=1, ndmin=2)
        if data.size == 0:
            data = data.reshape(0, 2)
        return cls.from_points(data, domain=domain, name=name)
