"""Serialisation of released synopses.

A differentially private synopsis is a *publishable artifact*: once built,
its noisy state can be shared freely (post-processing preserves DP).  This
module persists synopses to a single archive file and restores them, so a
data curator can run ``fit`` once on the sensitive data and distribute the
file; consumers answer queries without ever seeing the raw points.

Two archive formats are written, both ending in the same SHA-1 integrity
footer:

* **v1** — a ``np.savez_compressed`` payload.  Compact, but every load
  decompresses a private copy per process.
* **v2** — a small binary header and JSON table of contents (per-array
  name/dtype/shape/offset/length) followed by *page-aligned* (4096 B)
  uncompressed array slabs.  :func:`synopsis_from_path` loads v2 via
  ``mmap`` and hands out read-only ``np.frombuffer`` views, so N forked
  workers serving the same release share one set of physical pages, and
  derived engine buffers sealed into the archive at release time (see
  :func:`~repro.queries.engine.register_engine_sealer`) restore without
  a per-worker rebuild.

Supported types: :class:`~repro.core.uniform_grid.UniformGridSynopsis`,
its wavelet and hierarchy subclasses (:class:`~repro.baselines.privelet.
PriveletSynopsis` keeps its coefficient matrix, :class:`~repro.baselines.
hierarchy.HierarchicalGridSynopsis` its raw level stack),
:class:`~repro.core.adaptive_grid.AdaptiveGridSynopsis`,
:class:`~repro.baselines.tree.TreeSynopsis`, and the d = 2 ND-grid
embedding :class:`~repro.extensions.multidim.MultiDimGridSynopsis`.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import struct
from pathlib import Path

import numpy as np

from repro.analysis.one_dim import OneDimHistogramSynopsis
from repro.baselines.hierarchy import HierarchicalGridSynopsis
from repro.baselines.privelet import PriveletSynopsis, reconstruct_counts
from repro.baselines.tree import SpatialNode, TreeArrays, TreeSynopsis
from repro.core.adaptive_grid import AdaptiveGridSynopsis
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.synopsis import Synopsis
from repro.core.uniform_grid import UniformGridSynopsis
from repro.extensions.multidim import (
    MultiDimGridSynopsis,
    NDBox,
    NDGridLayout,
    NDUniformGridSynopsis,
)

__all__ = [
    "ARCHIVE_FORMATS",
    "ChecksumError",
    "load_synopsis",
    "save_synopsis",
    "synopsis_from_bytes",
    "synopsis_from_path",
    "synopsis_nbytes",
    "synopsis_to_bytes",
]

_FORMAT_VERSION = 1

#: Supported on-disk archive container formats (see module docstring).
ARCHIVE_FORMATS = ("v1", "v2")

# v2 container: an 8-byte magic (deliberately not starting with "PK" so
# zip sniffers never mistake it for an npz), a u32 container version, a
# u32 TOC byte length, the JSON TOC, zero padding up to the next 4096 B
# boundary, then the array slabs — each slab offset page-aligned so a
# mapped array view starts exactly on a page and the kernel shares whole
# pages between processes.  TOC offsets are relative to the (computed)
# data start, which avoids a fixed point between TOC length and offsets.
_V2_MAGIC = b"RPNPV2\r\n"
_V2_VERSION = 2
_V2_HEADER = struct.Struct(f"<{len(_V2_MAGIC)}sII")
_V2_ALIGN = 4096

#: Sealed engine buffers ride in the same archive under a reserved name
#: prefix; the marker key distinguishes "sealed with no derived buffers"
#: (e.g. Privelet, whose coefficients are the prepared state) from "not
#: sealed at all".
_ENGINE_SLAB_PREFIX = "engine/"
_SEALED_MARKER = "engine/__sealed__"

_HASH_CHUNK = 1 << 20

# Integrity footer appended after the ``.npz`` payload: 20-byte SHA-1 of
# the payload, its 8-byte little-endian length, then an 8-byte magic.
# Appending (rather than prepending) keeps the file a readable zip for
# legacy ``np.load`` consumers — zip readers treat trailing bytes as the
# archive comment — while letting the loader detect truncation and
# bit-rot before any array is parsed.  Archives written before the
# footer existed (no trailing magic) still load, unverified.
_CHECKSUM_MAGIC = b"RPRSHA1\x00"
_CHECKSUM_FOOTER = struct.Struct(f"<20sQ{len(_CHECKSUM_MAGIC)}s")


class ChecksumError(ValueError):
    """The archive's integrity footer does not match its payload.

    Truncation, a short write, or on-disk bit-rot — the payload cannot be
    trusted and must not be parsed.  The serving layer quarantines the
    file and rebuilds on demand.
    """


def _pack(synopsis: Synopsis) -> dict[str, np.ndarray]:
    """Dispatch to the per-type packer; raises ``TypeError`` for others.

    Subclasses must be tested before their bases (Privelet and hierarchy
    releases *are* ``UniformGridSynopsis`` instances, but carry extra
    state the grid packer would silently drop).
    """
    if isinstance(synopsis, PriveletSynopsis):
        return _pack_wavelet(synopsis)
    if isinstance(synopsis, HierarchicalGridSynopsis):
        return _pack_hierarchy(synopsis)
    if isinstance(synopsis, UniformGridSynopsis):
        return _pack_uniform(synopsis)
    if isinstance(synopsis, AdaptiveGridSynopsis):
        return _pack_adaptive(synopsis)
    if isinstance(synopsis, TreeSynopsis):
        return _pack_tree(synopsis)
    if isinstance(synopsis, MultiDimGridSynopsis):
        return _pack_ndgrid(synopsis)
    if isinstance(synopsis, OneDimHistogramSynopsis):
        return _pack_onedim(synopsis)
    raise TypeError(
        f"cannot serialise synopsis of type {type(synopsis).__name__}"
    )


def synopsis_to_bytes(synopsis: Synopsis, archive_format: str = "v1") -> bytes:
    """Serialise a released synopsis to checksummed archive bytes.

    ``archive_format`` selects the container: ``"v1"`` is the compact
    ``np.savez_compressed`` payload, ``"v2"`` the page-aligned
    uncompressed layout that :func:`synopsis_from_path` memory-maps
    (with the type's derived engine buffers sealed alongside, when a
    sealer is registered).  Either way the payload is followed by the
    same SHA-1 integrity footer (see ``_CHECKSUM_MAGIC``).  Raises
    ``TypeError`` for synopsis types without a registered format.
    """
    payload = _pack(synopsis)
    payload["format_version"] = np.array(_FORMAT_VERSION)
    if archive_format == "v1":
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **payload)
        blob = buffer.getvalue()
    elif archive_format == "v2":
        from repro.queries.engine import compute_engine_slabs

        slabs = compute_engine_slabs(synopsis)
        if slabs is not None:
            payload[_SEALED_MARKER] = np.array(1, dtype=np.int64)
            for name, array in slabs.items():
                payload[_ENGINE_SLAB_PREFIX + name] = array
        blob = _pack_v2_payload(payload)
    else:
        raise ValueError(
            f"unknown archive format {archive_format!r}; expected one of "
            f"{ARCHIVE_FORMATS}"
        )
    footer = _CHECKSUM_FOOTER.pack(
        hashlib.sha1(blob).digest(), len(blob), _CHECKSUM_MAGIC
    )
    return blob + footer


def _align(offset: int) -> int:
    """Round ``offset`` up to the next ``_V2_ALIGN`` boundary."""
    return -(-offset // _V2_ALIGN) * _V2_ALIGN


def _pack_v2_payload(payload: dict[str, np.ndarray]) -> bytes:
    """Lay a named-array dict out as a v2 payload (header + TOC + slabs)."""
    # np.ascontiguousarray would promote 0-d scalars to shape (1,), so
    # only reach for it when the array actually needs a contiguous copy.
    arrays = {}
    for name, value in payload.items():
        array = np.asarray(value)
        if not array.flags["C_CONTIGUOUS"]:
            array = np.ascontiguousarray(array)
        arrays[name] = array
    entries = []
    rel = 0
    for name, array in arrays.items():
        rel = _align(rel)
        entries.append(
            {
                "name": name,
                "descr": np.lib.format.dtype_to_descr(array.dtype),
                "shape": list(array.shape),
                "offset": rel,
                "nbytes": int(array.nbytes),
            }
        )
        rel += array.nbytes
    toc = json.dumps({"arrays": entries}, separators=(",", ":")).encode("utf-8")
    data_start = _align(_V2_HEADER.size + len(toc))
    out = bytearray(data_start + rel)
    out[: _V2_HEADER.size] = _V2_HEADER.pack(_V2_MAGIC, _V2_VERSION, len(toc))
    out[_V2_HEADER.size : _V2_HEADER.size + len(toc)] = toc
    for entry, array in zip(entries, arrays.values()):
        start = data_start + entry["offset"]
        out[start : start + array.nbytes] = array.tobytes()
    return bytes(out)


def _parse_v2(buf) -> dict[str, np.ndarray]:
    """Parse a v2 payload (footer already stripped) into array views.

    ``buf`` may be ``bytes`` or a ``memoryview`` over an ``mmap``; the
    returned arrays are zero-copy ``np.frombuffer`` views either way, so
    mapped archives hand out views the kernel can share across forked
    processes.  Raises ``ValueError`` for any structural inconsistency
    (the SHA-1 footer has already caught bit-rot; these checks catch
    archives whose footer was regenerated around a bad payload).
    """
    n = len(buf)
    if n < _V2_HEADER.size:
        raise ValueError("v2 archive shorter than its header")
    magic, version, toc_len = _V2_HEADER.unpack(bytes(buf[: _V2_HEADER.size]))
    if magic != _V2_MAGIC:
        raise ValueError("v2 archive magic mismatch")
    if version != _V2_VERSION:
        raise ValueError(f"unsupported v2 container version {version}")
    toc_end = _V2_HEADER.size + toc_len
    if toc_len <= 0 or toc_end > n:
        raise ValueError("v2 TOC extends past the archive")
    try:
        toc = json.loads(bytes(buf[_V2_HEADER.size : toc_end]).decode("utf-8"))
        entries = toc["arrays"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"corrupt v2 TOC: {exc}") from exc
    if not isinstance(entries, list):
        raise ValueError("corrupt v2 TOC: arrays is not a list")
    data_start = _align(toc_end)
    arrays: dict[str, np.ndarray] = {}
    for entry in entries:
        try:
            name = str(entry["name"])
            descr = entry["descr"]
            shape = tuple(int(s) for s in entry["shape"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"corrupt v2 TOC entry: {exc}") from exc
        try:
            dtype = np.dtype(descr)
        except TypeError as exc:
            raise ValueError(f"corrupt v2 TOC dtype {descr!r}") from exc
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if any(s < 0 for s in shape) or dtype.itemsize * count != nbytes:
            raise ValueError(
                f"v2 slab {name!r}: shape {shape} x {dtype} does not fill "
                f"{nbytes} bytes"
            )
        start = data_start + offset
        if offset < 0 or start + nbytes > n:
            raise ValueError(f"v2 slab {name!r} extends past the archive")
        arrays[name] = np.frombuffer(
            buf, dtype=dtype, count=count, offset=start
        ).reshape(shape)
    return arrays


def _verify_checksum(data: bytes) -> bytes:
    """Strip and verify the integrity footer; returns the npz payload.

    Data without a trailing magic is passed through unchanged (legacy
    pre-footer archives); anything carrying the magic must verify.
    """
    if len(data) < _CHECKSUM_FOOTER.size or not data.endswith(_CHECKSUM_MAGIC):
        return data
    digest, length, _ = _CHECKSUM_FOOTER.unpack(data[-_CHECKSUM_FOOTER.size:])
    blob = data[: -_CHECKSUM_FOOTER.size]
    if length != len(blob):
        raise ChecksumError(
            f"archive truncated: footer records {length} payload bytes, "
            f"found {len(blob)}"
        )
    if hashlib.sha1(blob).digest() != digest:
        raise ChecksumError(
            "archive payload does not match its SHA-1 footer (bit-rot or "
            "a torn write)"
        )
    return blob


def save_synopsis(
    synopsis: Synopsis, path: str | Path, archive_format: str = "v1"
) -> None:
    """Write a released synopsis to ``path`` (a checksummed archive).

    Raises ``TypeError`` for synopsis types without a registered format.
    The write itself is not atomic — callers that need crash safety
    (the synopsis store does) write :func:`synopsis_to_bytes` to a temp
    file and rename.
    """
    Path(path).write_bytes(synopsis_to_bytes(synopsis, archive_format))


def synopsis_nbytes(synopsis: Synopsis) -> int:
    """Uncompressed in-memory footprint of a synopsis's released state.

    Computed from the same payload :func:`save_synopsis` writes, so it is
    defined for exactly the serialisable types.  The serving layer's
    :class:`~repro.service.store.SynopsisStore` uses it to enforce its
    cache size bound.
    """
    return sum(np.asarray(value).nbytes for value in _pack(synopsis).values())


def load_synopsis(path: str | Path) -> Synopsis:
    """Restore a synopsis previously written by :func:`save_synopsis`.

    Delegates to :func:`synopsis_from_path`: v2 archives are
    memory-mapped, v1 archives are checksum-verified in streaming
    chunks and parsed straight from the file (no full in-memory copy
    of the archive either way).  Raises :class:`ChecksumError` when the
    archive carries an integrity footer that does not match its
    payload, and ``ValueError`` for payloads that parse but violate a
    synopsis invariant.
    """
    return synopsis_from_path(path)


def synopsis_from_path(path: str | Path) -> Synopsis:
    """Restore a synopsis from an archive file, zero-copy where possible.

    v2 archives are verified and parsed over a read-only ``mmap``; the
    returned synopsis's arrays (and any sealed engine slabs) are views
    into the mapping, so forked workers loading the same file share
    physical pages and ``synopsis.mapped_nbytes`` reports the mapping
    size.  v1 and legacy archives stream the SHA-1 verification and
    then parse with ``np.load`` directly from the file, avoiding the
    full byte-string materialisation :func:`synopsis_from_bytes` pays.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        if handle.read(len(_V2_MAGIC)) == _V2_MAGIC:
            return _load_v2_mapped(handle)
        _verify_checksum_stream(handle)
    with np.load(path, allow_pickle=False) as archive:
        data = {key: archive[key] for key in archive.files}
    return _assemble(data)


def _load_v2_mapped(handle) -> Synopsis:
    """Map, verify, and assemble a v2 archive from an open file handle.

    The mapping outlives the handle: numpy views hold the ``mmap``
    through the buffer protocol, and the pages are released when the
    last view is garbage-collected (store eviction drops the synopsis,
    the views die, the kernel reclaims the pages).
    """
    mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mapping)
    size = len(view)
    if size < _CHECKSUM_FOOTER.size or bytes(
        view[-len(_CHECKSUM_MAGIC) :]
    ) != _CHECKSUM_MAGIC:
        raise ChecksumError(
            "v2 archive is missing its integrity footer (truncated)"
        )
    digest, length, _ = _CHECKSUM_FOOTER.unpack(
        bytes(view[-_CHECKSUM_FOOTER.size :])
    )
    payload_len = size - _CHECKSUM_FOOTER.size
    if length != payload_len:
        raise ChecksumError(
            f"archive truncated: footer records {length} payload bytes, "
            f"found {payload_len}"
        )
    if hashlib.sha1(view[:payload_len]).digest() != digest:
        raise ChecksumError(
            "archive payload does not match its SHA-1 footer (bit-rot or "
            "a torn write)"
        )
    synopsis = _assemble(_parse_v2(view[:payload_len]))
    synopsis.mapped_nbytes = size
    return synopsis


def _verify_checksum_stream(handle) -> None:
    """Verify a v1 archive's SHA-1 footer in streaming chunks.

    Same contract as :func:`_verify_checksum` — pre-footer legacy files
    pass unverified, anything carrying the magic must verify — but the
    payload is hashed ``_HASH_CHUNK`` bytes at a time instead of being
    materialised in memory.
    """
    handle.seek(0, os.SEEK_END)
    size = handle.tell()
    if size < _CHECKSUM_FOOTER.size:
        return
    handle.seek(size - _CHECKSUM_FOOTER.size)
    footer = handle.read(_CHECKSUM_FOOTER.size)
    if not footer.endswith(_CHECKSUM_MAGIC):
        return
    digest, length, _ = _CHECKSUM_FOOTER.unpack(footer)
    payload_len = size - _CHECKSUM_FOOTER.size
    if length != payload_len:
        raise ChecksumError(
            f"archive truncated: footer records {length} payload bytes, "
            f"found {payload_len}"
        )
    handle.seek(0)
    sha = hashlib.sha1()
    remaining = payload_len
    while remaining:
        chunk = handle.read(min(_HASH_CHUNK, remaining))
        if not chunk:
            raise ChecksumError("archive shrank while being verified")
        sha.update(chunk)
        remaining -= len(chunk)
    if sha.digest() != digest:
        raise ChecksumError(
            "archive payload does not match its SHA-1 footer (bit-rot or "
            "a torn write)"
        )


def synopsis_from_bytes(data: bytes) -> Synopsis:
    """Restore a synopsis from :func:`synopsis_to_bytes` output.

    Handles both archive formats.  Prefer :func:`synopsis_from_path`
    when the archive lives in a file — it memory-maps v2 payloads and
    streams v1 verification instead of double-buffering the bytes.
    """
    blob = _verify_checksum(data)
    if blob[: len(_V2_MAGIC)] == _V2_MAGIC:
        if blob is data:
            # v2 archives are always written with a footer; reaching the
            # parser without one means the footer (at least) was cut off.
            raise ChecksumError(
                "v2 archive is missing its integrity footer (truncated)"
            )
        return _assemble(_parse_v2(memoryview(blob)))
    with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
        data = {key: archive[key] for key in archive.files}
    return _assemble(data)


def _assemble(data: dict[str, np.ndarray]) -> Synopsis:
    """Dispatch a parsed payload dict to the per-kind unpacker.

    Shared by both container formats; sealed engine slabs (v2) are
    split off their reserved prefix and attached to the synopsis so
    :func:`~repro.queries.engine.make_engine` restores the engine
    without rebuilding.
    """
    data = dict(data)
    sealed = data.pop(_SEALED_MARKER, None) is not None
    engine_slabs = {
        name[len(_ENGINE_SLAB_PREFIX) :]: value
        for name, value in data.items()
        if name.startswith(_ENGINE_SLAB_PREFIX)
    }
    for name in engine_slabs:
        del data[_ENGINE_SLAB_PREFIX + name]
    version = int(data.pop("format_version"))
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported synopsis format version {version}")
    kind = str(data["kind"])
    if kind == "uniform_grid":
        synopsis = _unpack_uniform(data)
    elif kind == "adaptive_grid":
        synopsis = _unpack_adaptive(data)
    elif kind == "tree":
        synopsis = _unpack_tree(data)
    elif kind == "wavelet":
        synopsis = _unpack_wavelet(data)
    elif kind == "hierarchy":
        synopsis = _unpack_hierarchy(data)
    elif kind == "ndgrid":
        synopsis = _unpack_ndgrid(data)
    elif kind == "one_dim":
        synopsis = _unpack_onedim(data)
    else:
        raise ValueError(f"unknown synopsis kind {kind!r}")
    if sealed:
        synopsis.seal_engine_slabs(engine_slabs)
    return synopsis


# ----------------------------------------------------------------------
# Uniform grid
# ----------------------------------------------------------------------


def _domain_array(domain: Domain2D) -> np.ndarray:
    return np.array(domain.bounds.as_tuple())


def _domain_from_array(values: np.ndarray) -> Domain2D:
    x_lo, y_lo, x_hi, y_hi = (float(v) for v in values)
    return Domain2D(x_lo, y_lo, x_hi, y_hi)


def _pack_onedim(synopsis: OneDimHistogramSynopsis) -> dict[str, np.ndarray]:
    return {
        "kind": np.array("one_dim"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "released": synopsis.released,
    }


def _unpack_onedim(data: dict[str, np.ndarray]) -> OneDimHistogramSynopsis:
    try:
        return OneDimHistogramSynopsis(
            _domain_from_array(data["domain"]),
            float(data["epsilon"]),
            np.asarray(data["released"], dtype=float),
        )
    except ValueError as exc:
        raise ValueError(f"corrupt one-dim archive: {exc}") from exc


def _pack_uniform(synopsis: UniformGridSynopsis) -> dict[str, np.ndarray]:
    return {
        "kind": np.array("uniform_grid"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "counts": synopsis.counts,
    }


def _unpack_uniform(data: dict[str, np.ndarray]) -> UniformGridSynopsis:
    domain = _domain_from_array(data["domain"])
    counts = np.asarray(data["counts"], dtype=float)
    layout = GridLayout(domain, counts.shape[0], counts.shape[1])
    return UniformGridSynopsis(domain, float(data["epsilon"]), layout, counts)


# ----------------------------------------------------------------------
# Privelet (wavelet)
# ----------------------------------------------------------------------


def _pack_wavelet(synopsis: PriveletSynopsis) -> dict[str, np.ndarray]:
    # The coefficient matrix is the release; the reconstructed grid is
    # deterministic post-processing and is rebuilt on load (bit-identical
    # — the loader runs the same reconstruct_counts the builder ran).
    return {
        "kind": np.array("wavelet"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "grid_size": np.array(synopsis.grid_size[0]),
        "coefficients": synopsis.coefficients,
    }


def _unpack_wavelet(data: dict[str, np.ndarray]) -> PriveletSynopsis:
    domain = _domain_from_array(data["domain"])
    m = int(data["grid_size"])
    coefficients = np.asarray(data["coefficients"], dtype=float)
    layout = GridLayout(domain, m, m)
    try:
        return PriveletSynopsis(
            domain,
            float(data["epsilon"]),
            layout,
            reconstruct_counts(coefficients, m),
            coefficients,
        )
    except ValueError as exc:
        raise ValueError(f"corrupt wavelet archive: {exc}") from exc


# ----------------------------------------------------------------------
# Hierarchy
# ----------------------------------------------------------------------


def _pack_hierarchy(synopsis: HierarchicalGridSynopsis) -> dict[str, np.ndarray]:
    # Leaf counts *and* the raw measurement stack both persist: counts so
    # the loaded release answers bit-identically without re-running
    # inference, the stack so inference remains re-runnable downstream.
    return {
        "kind": np.array("hierarchy"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "branching": np.array(synopsis.branching),
        "level_sizes": np.asarray(synopsis.level_sizes, dtype=np.int64),
        "measurements": synopsis.measurements,
        "level_variances": synopsis.level_variances,
        "counts": synopsis.counts,
    }


def _unpack_hierarchy(data: dict[str, np.ndarray]) -> HierarchicalGridSynopsis:
    domain = _domain_from_array(data["domain"])
    level_sizes = [int(size) for size in data["level_sizes"]]
    leaf_size = level_sizes[-1] if level_sizes else 0
    counts = np.asarray(data["counts"], dtype=float)
    try:
        layout = GridLayout(domain, leaf_size, leaf_size)
        return HierarchicalGridSynopsis(
            domain,
            float(data["epsilon"]),
            layout,
            counts,
            int(data["branching"]),
            level_sizes,
            np.asarray(data["measurements"], dtype=float),
            np.asarray(data["level_variances"], dtype=float),
        )
    except ValueError as exc:
        raise ValueError(f"corrupt hierarchy archive: {exc}") from exc


# ----------------------------------------------------------------------
# d-dimensional grid (servable d = 2 embedding)
# ----------------------------------------------------------------------


def _pack_ndgrid(synopsis: MultiDimGridSynopsis) -> dict[str, np.ndarray]:
    nd = synopsis.nd
    return {
        "kind": np.array("ndgrid"),
        "epsilon": np.array(nd.epsilon),
        "lows": nd.layout.box.lows,
        "highs": nd.layout.box.highs,
        "per_axis_size": np.array(nd.layout.m),
        "counts": nd.counts.ravel(),
    }


def _unpack_ndgrid(data: dict[str, np.ndarray]) -> MultiDimGridSynopsis:
    lows = np.asarray(data["lows"], dtype=float)
    highs = np.asarray(data["highs"], dtype=float)
    m = int(data["per_axis_size"])
    try:
        layout = NDGridLayout(NDBox(lows, highs), m)
        counts = np.asarray(data["counts"], dtype=float).reshape(layout.shape)
        return MultiDimGridSynopsis(
            NDUniformGridSynopsis(layout, counts, float(data["epsilon"]))
        )
    except ValueError as exc:
        raise ValueError(f"corrupt ndgrid archive: {exc}") from exc


# ----------------------------------------------------------------------
# Adaptive grid
# ----------------------------------------------------------------------


def _pack_adaptive(synopsis: AdaptiveGridSynopsis) -> dict[str, np.ndarray]:
    # The synopsis already *is* the archive layout: flat CSR arrays.
    m1x, m1y = synopsis.first_level_size
    return {
        "kind": np.array("adaptive_grid"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "first_level": np.array([m1x, m1y]),
        "cell_sizes": synopsis.cell_sizes,
        "cell_totals": synopsis.cell_totals,
        "leaf_counts": synopsis.leaf_counts,
    }


def _unpack_adaptive(data: dict[str, np.ndarray]) -> AdaptiveGridSynopsis:
    domain = _domain_from_array(data["domain"])
    m1x, m1y = (int(v) for v in data["first_level"])
    level1 = GridLayout(domain, m1x, m1y)
    sizes = np.asarray(data["cell_sizes"], dtype=np.int64)
    totals = np.asarray(data["cell_totals"], dtype=float)
    flat_leaves = np.asarray(data["leaf_counts"], dtype=float)
    try:
        return AdaptiveGridSynopsis(
            domain, float(data["epsilon"]), level1, sizes, totals, flat_leaves
        )
    except ValueError as exc:
        raise ValueError(f"corrupt adaptive-grid archive: {exc}") from exc


# ----------------------------------------------------------------------
# Spatial trees
# ----------------------------------------------------------------------


def _pack_tree(synopsis: TreeSynopsis) -> dict[str, np.ndarray]:
    # The flat TreeArrays state *is* the archive layout: level-order node
    # arrays with CSR child offsets.  noisy_counts / variances ride along
    # so constrained inference can be re-run on a loaded release.
    arrays = synopsis.arrays
    return {
        "kind": np.array("tree"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "rects": arrays.rects,
        "counts": arrays.counts,
        "noisy_counts": arrays.noisy_counts,
        "variances": arrays.variances,
        "depths": arrays.depths,
        "child_offsets": arrays.child_offsets,
        "level_offsets": arrays.level_offsets,
    }


def _unpack_tree(data: dict[str, np.ndarray]) -> TreeSynopsis:
    if "child_offsets" not in data:
        return _unpack_tree_legacy(data)
    arrays = TreeArrays(
        rects=np.asarray(data["rects"], dtype=float),
        depths=np.asarray(data["depths"], dtype=np.int64),
        child_offsets=np.asarray(data["child_offsets"], dtype=np.int64),
        noisy_counts=np.asarray(data["noisy_counts"], dtype=float),
        variances=np.asarray(data["variances"], dtype=float),
        counts=np.asarray(data["counts"], dtype=float),
        level_offsets=np.asarray(data["level_offsets"], dtype=np.int64),
    )
    try:
        arrays.validate()
    except ValueError as exc:
        raise ValueError(f"corrupt tree archive: {exc}") from exc
    return TreeSynopsis(
        _domain_from_array(data["domain"]), float(data["epsilon"]), arrays
    )


def _unpack_tree_legacy(data: dict[str, np.ndarray]) -> TreeSynopsis:
    """Restore the pre-flat-kernel pre-order archive layout.

    Older archives stored per-node child *counts* in DFS pre-order (and
    no raw measurements); the object graph is rebuilt recursively and
    converted, so releases persisted before the flat tree kernel stay
    loadable.
    """
    rects = np.asarray(data["rects"], dtype=float)
    counts = np.asarray(data["counts"], dtype=float)
    child_counts = np.asarray(data["child_counts"], dtype=np.int64)
    depths = np.asarray(data["depths"], dtype=np.int64)
    cursor = 0

    def build() -> SpatialNode:
        nonlocal cursor
        index = cursor
        cursor += 1
        node = SpatialNode(
            rect=Rect(*rects[index]),
            count=float(counts[index]),
            depth=int(depths[index]),
        )
        for _ in range(int(child_counts[index])):
            node.children.append(build())
        return node

    root = build()
    if cursor != counts.size:
        raise ValueError("corrupt tree archive: node count mismatch")
    return TreeSynopsis(
        _domain_from_array(data["domain"]), float(data["epsilon"]), root
    )
