"""Serialisation of released synopses.

A differentially private synopsis is a *publishable artifact*: once built,
its noisy state can be shared freely (post-processing preserves DP).  This
module persists synopses to a single ``.npz`` file and restores them, so a
data curator can run ``fit`` once on the sensitive data and distribute the
file; consumers answer queries without ever seeing the raw points.

Supported types: :class:`~repro.core.uniform_grid.UniformGridSynopsis`,
its wavelet and hierarchy subclasses (:class:`~repro.baselines.privelet.
PriveletSynopsis` keeps its coefficient matrix, :class:`~repro.baselines.
hierarchy.HierarchicalGridSynopsis` its raw level stack),
:class:`~repro.core.adaptive_grid.AdaptiveGridSynopsis`,
:class:`~repro.baselines.tree.TreeSynopsis`, and the d = 2 ND-grid
embedding :class:`~repro.extensions.multidim.MultiDimGridSynopsis`.
"""

from __future__ import annotations

import hashlib
import io
import struct
from pathlib import Path

import numpy as np

from repro.baselines.hierarchy import HierarchicalGridSynopsis
from repro.baselines.privelet import PriveletSynopsis, reconstruct_counts
from repro.baselines.tree import SpatialNode, TreeArrays, TreeSynopsis
from repro.core.adaptive_grid import AdaptiveGridSynopsis
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.synopsis import Synopsis
from repro.core.uniform_grid import UniformGridSynopsis
from repro.extensions.multidim import (
    MultiDimGridSynopsis,
    NDBox,
    NDGridLayout,
    NDUniformGridSynopsis,
)

__all__ = [
    "ChecksumError",
    "load_synopsis",
    "save_synopsis",
    "synopsis_from_bytes",
    "synopsis_nbytes",
    "synopsis_to_bytes",
]

_FORMAT_VERSION = 1

# Integrity footer appended after the ``.npz`` payload: 20-byte SHA-1 of
# the payload, its 8-byte little-endian length, then an 8-byte magic.
# Appending (rather than prepending) keeps the file a readable zip for
# legacy ``np.load`` consumers — zip readers treat trailing bytes as the
# archive comment — while letting the loader detect truncation and
# bit-rot before any array is parsed.  Archives written before the
# footer existed (no trailing magic) still load, unverified.
_CHECKSUM_MAGIC = b"RPRSHA1\x00"
_CHECKSUM_FOOTER = struct.Struct(f"<20sQ{len(_CHECKSUM_MAGIC)}s")


class ChecksumError(ValueError):
    """The archive's integrity footer does not match its payload.

    Truncation, a short write, or on-disk bit-rot — the payload cannot be
    trusted and must not be parsed.  The serving layer quarantines the
    file and rebuilds on demand.
    """


def _pack(synopsis: Synopsis) -> dict[str, np.ndarray]:
    """Dispatch to the per-type packer; raises ``TypeError`` for others.

    Subclasses must be tested before their bases (Privelet and hierarchy
    releases *are* ``UniformGridSynopsis`` instances, but carry extra
    state the grid packer would silently drop).
    """
    if isinstance(synopsis, PriveletSynopsis):
        return _pack_wavelet(synopsis)
    if isinstance(synopsis, HierarchicalGridSynopsis):
        return _pack_hierarchy(synopsis)
    if isinstance(synopsis, UniformGridSynopsis):
        return _pack_uniform(synopsis)
    if isinstance(synopsis, AdaptiveGridSynopsis):
        return _pack_adaptive(synopsis)
    if isinstance(synopsis, TreeSynopsis):
        return _pack_tree(synopsis)
    if isinstance(synopsis, MultiDimGridSynopsis):
        return _pack_ndgrid(synopsis)
    raise TypeError(
        f"cannot serialise synopsis of type {type(synopsis).__name__}"
    )


def synopsis_to_bytes(synopsis: Synopsis) -> bytes:
    """Serialise a released synopsis to checksummed archive bytes.

    The result is the ``.npz`` payload followed by a SHA-1 integrity
    footer (see ``_CHECKSUM_MAGIC``).  Raises ``TypeError`` for synopsis
    types without a registered format.
    """
    payload = _pack(synopsis)
    payload["format_version"] = np.array(_FORMAT_VERSION)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    blob = buffer.getvalue()
    footer = _CHECKSUM_FOOTER.pack(
        hashlib.sha1(blob).digest(), len(blob), _CHECKSUM_MAGIC
    )
    return blob + footer


def _verify_checksum(data: bytes) -> bytes:
    """Strip and verify the integrity footer; returns the npz payload.

    Data without a trailing magic is passed through unchanged (legacy
    pre-footer archives); anything carrying the magic must verify.
    """
    if len(data) < _CHECKSUM_FOOTER.size or not data.endswith(_CHECKSUM_MAGIC):
        return data
    digest, length, _ = _CHECKSUM_FOOTER.unpack(data[-_CHECKSUM_FOOTER.size:])
    blob = data[: -_CHECKSUM_FOOTER.size]
    if length != len(blob):
        raise ChecksumError(
            f"archive truncated: footer records {length} payload bytes, "
            f"found {len(blob)}"
        )
    if hashlib.sha1(blob).digest() != digest:
        raise ChecksumError(
            "archive payload does not match its SHA-1 footer (bit-rot or "
            "a torn write)"
        )
    return blob


def save_synopsis(synopsis: Synopsis, path: str | Path) -> None:
    """Write a released synopsis to ``path`` (a checksummed ``.npz``).

    Raises ``TypeError`` for synopsis types without a registered format.
    The write itself is not atomic — callers that need crash safety
    (the synopsis store does) write :func:`synopsis_to_bytes` to a temp
    file and rename.
    """
    Path(path).write_bytes(synopsis_to_bytes(synopsis))


def synopsis_nbytes(synopsis: Synopsis) -> int:
    """Uncompressed in-memory footprint of a synopsis's released state.

    Computed from the same payload :func:`save_synopsis` writes, so it is
    defined for exactly the serialisable types.  The serving layer's
    :class:`~repro.service.store.SynopsisStore` uses it to enforce its
    cache size bound.
    """
    return sum(np.asarray(value).nbytes for value in _pack(synopsis).values())


def load_synopsis(path: str | Path) -> Synopsis:
    """Restore a synopsis previously written by :func:`save_synopsis`.

    Raises :class:`ChecksumError` when the archive carries an integrity
    footer that does not match its payload, and ``ValueError`` for
    payloads that parse but violate a synopsis invariant.
    """
    return synopsis_from_bytes(Path(path).read_bytes())


def synopsis_from_bytes(data: bytes) -> Synopsis:
    """Restore a synopsis from :func:`synopsis_to_bytes` output."""
    blob = _verify_checksum(data)
    with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
        data = {key: archive[key] for key in archive.files}
    version = int(data.pop("format_version"))
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported synopsis format version {version}")
    kind = str(data["kind"])
    if kind == "uniform_grid":
        return _unpack_uniform(data)
    if kind == "adaptive_grid":
        return _unpack_adaptive(data)
    if kind == "tree":
        return _unpack_tree(data)
    if kind == "wavelet":
        return _unpack_wavelet(data)
    if kind == "hierarchy":
        return _unpack_hierarchy(data)
    if kind == "ndgrid":
        return _unpack_ndgrid(data)
    raise ValueError(f"unknown synopsis kind {kind!r}")


# ----------------------------------------------------------------------
# Uniform grid
# ----------------------------------------------------------------------


def _domain_array(domain: Domain2D) -> np.ndarray:
    return np.array(domain.bounds.as_tuple())


def _domain_from_array(values: np.ndarray) -> Domain2D:
    x_lo, y_lo, x_hi, y_hi = (float(v) for v in values)
    return Domain2D(x_lo, y_lo, x_hi, y_hi)


def _pack_uniform(synopsis: UniformGridSynopsis) -> dict[str, np.ndarray]:
    return {
        "kind": np.array("uniform_grid"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "counts": synopsis.counts,
    }


def _unpack_uniform(data: dict[str, np.ndarray]) -> UniformGridSynopsis:
    domain = _domain_from_array(data["domain"])
    counts = np.asarray(data["counts"], dtype=float)
    layout = GridLayout(domain, counts.shape[0], counts.shape[1])
    return UniformGridSynopsis(domain, float(data["epsilon"]), layout, counts)


# ----------------------------------------------------------------------
# Privelet (wavelet)
# ----------------------------------------------------------------------


def _pack_wavelet(synopsis: PriveletSynopsis) -> dict[str, np.ndarray]:
    # The coefficient matrix is the release; the reconstructed grid is
    # deterministic post-processing and is rebuilt on load (bit-identical
    # — the loader runs the same reconstruct_counts the builder ran).
    return {
        "kind": np.array("wavelet"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "grid_size": np.array(synopsis.grid_size[0]),
        "coefficients": synopsis.coefficients,
    }


def _unpack_wavelet(data: dict[str, np.ndarray]) -> PriveletSynopsis:
    domain = _domain_from_array(data["domain"])
    m = int(data["grid_size"])
    coefficients = np.asarray(data["coefficients"], dtype=float)
    layout = GridLayout(domain, m, m)
    try:
        return PriveletSynopsis(
            domain,
            float(data["epsilon"]),
            layout,
            reconstruct_counts(coefficients, m),
            coefficients,
        )
    except ValueError as exc:
        raise ValueError(f"corrupt wavelet archive: {exc}") from exc


# ----------------------------------------------------------------------
# Hierarchy
# ----------------------------------------------------------------------


def _pack_hierarchy(synopsis: HierarchicalGridSynopsis) -> dict[str, np.ndarray]:
    # Leaf counts *and* the raw measurement stack both persist: counts so
    # the loaded release answers bit-identically without re-running
    # inference, the stack so inference remains re-runnable downstream.
    return {
        "kind": np.array("hierarchy"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "branching": np.array(synopsis.branching),
        "level_sizes": np.asarray(synopsis.level_sizes, dtype=np.int64),
        "measurements": synopsis.measurements,
        "level_variances": synopsis.level_variances,
        "counts": synopsis.counts,
    }


def _unpack_hierarchy(data: dict[str, np.ndarray]) -> HierarchicalGridSynopsis:
    domain = _domain_from_array(data["domain"])
    level_sizes = [int(size) for size in data["level_sizes"]]
    leaf_size = level_sizes[-1] if level_sizes else 0
    counts = np.asarray(data["counts"], dtype=float)
    try:
        layout = GridLayout(domain, leaf_size, leaf_size)
        return HierarchicalGridSynopsis(
            domain,
            float(data["epsilon"]),
            layout,
            counts,
            int(data["branching"]),
            level_sizes,
            np.asarray(data["measurements"], dtype=float),
            np.asarray(data["level_variances"], dtype=float),
        )
    except ValueError as exc:
        raise ValueError(f"corrupt hierarchy archive: {exc}") from exc


# ----------------------------------------------------------------------
# d-dimensional grid (servable d = 2 embedding)
# ----------------------------------------------------------------------


def _pack_ndgrid(synopsis: MultiDimGridSynopsis) -> dict[str, np.ndarray]:
    nd = synopsis.nd
    return {
        "kind": np.array("ndgrid"),
        "epsilon": np.array(nd.epsilon),
        "lows": nd.layout.box.lows,
        "highs": nd.layout.box.highs,
        "per_axis_size": np.array(nd.layout.m),
        "counts": nd.counts.ravel(),
    }


def _unpack_ndgrid(data: dict[str, np.ndarray]) -> MultiDimGridSynopsis:
    lows = np.asarray(data["lows"], dtype=float)
    highs = np.asarray(data["highs"], dtype=float)
    m = int(data["per_axis_size"])
    try:
        layout = NDGridLayout(NDBox(lows, highs), m)
        counts = np.asarray(data["counts"], dtype=float).reshape(layout.shape)
        return MultiDimGridSynopsis(
            NDUniformGridSynopsis(layout, counts, float(data["epsilon"]))
        )
    except ValueError as exc:
        raise ValueError(f"corrupt ndgrid archive: {exc}") from exc


# ----------------------------------------------------------------------
# Adaptive grid
# ----------------------------------------------------------------------


def _pack_adaptive(synopsis: AdaptiveGridSynopsis) -> dict[str, np.ndarray]:
    # The synopsis already *is* the archive layout: flat CSR arrays.
    m1x, m1y = synopsis.first_level_size
    return {
        "kind": np.array("adaptive_grid"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "first_level": np.array([m1x, m1y]),
        "cell_sizes": synopsis.cell_sizes,
        "cell_totals": synopsis.cell_totals,
        "leaf_counts": synopsis.leaf_counts,
    }


def _unpack_adaptive(data: dict[str, np.ndarray]) -> AdaptiveGridSynopsis:
    domain = _domain_from_array(data["domain"])
    m1x, m1y = (int(v) for v in data["first_level"])
    level1 = GridLayout(domain, m1x, m1y)
    sizes = np.asarray(data["cell_sizes"], dtype=np.int64)
    totals = np.asarray(data["cell_totals"], dtype=float)
    flat_leaves = np.asarray(data["leaf_counts"], dtype=float)
    try:
        return AdaptiveGridSynopsis(
            domain, float(data["epsilon"]), level1, sizes, totals, flat_leaves
        )
    except ValueError as exc:
        raise ValueError(f"corrupt adaptive-grid archive: {exc}") from exc


# ----------------------------------------------------------------------
# Spatial trees
# ----------------------------------------------------------------------


def _pack_tree(synopsis: TreeSynopsis) -> dict[str, np.ndarray]:
    # The flat TreeArrays state *is* the archive layout: level-order node
    # arrays with CSR child offsets.  noisy_counts / variances ride along
    # so constrained inference can be re-run on a loaded release.
    arrays = synopsis.arrays
    return {
        "kind": np.array("tree"),
        "domain": _domain_array(synopsis.domain),
        "epsilon": np.array(synopsis.epsilon),
        "rects": arrays.rects,
        "counts": arrays.counts,
        "noisy_counts": arrays.noisy_counts,
        "variances": arrays.variances,
        "depths": arrays.depths,
        "child_offsets": arrays.child_offsets,
        "level_offsets": arrays.level_offsets,
    }


def _unpack_tree(data: dict[str, np.ndarray]) -> TreeSynopsis:
    if "child_offsets" not in data:
        return _unpack_tree_legacy(data)
    arrays = TreeArrays(
        rects=np.asarray(data["rects"], dtype=float),
        depths=np.asarray(data["depths"], dtype=np.int64),
        child_offsets=np.asarray(data["child_offsets"], dtype=np.int64),
        noisy_counts=np.asarray(data["noisy_counts"], dtype=float),
        variances=np.asarray(data["variances"], dtype=float),
        counts=np.asarray(data["counts"], dtype=float),
        level_offsets=np.asarray(data["level_offsets"], dtype=np.int64),
    )
    try:
        arrays.validate()
    except ValueError as exc:
        raise ValueError(f"corrupt tree archive: {exc}") from exc
    return TreeSynopsis(
        _domain_from_array(data["domain"]), float(data["epsilon"]), arrays
    )


def _unpack_tree_legacy(data: dict[str, np.ndarray]) -> TreeSynopsis:
    """Restore the pre-flat-kernel pre-order archive layout.

    Older archives stored per-node child *counts* in DFS pre-order (and
    no raw measurements); the object graph is rebuilt recursively and
    converted, so releases persisted before the flat tree kernel stay
    loadable.
    """
    rects = np.asarray(data["rects"], dtype=float)
    counts = np.asarray(data["counts"], dtype=float)
    child_counts = np.asarray(data["child_counts"], dtype=np.int64)
    depths = np.asarray(data["depths"], dtype=np.int64)
    cursor = 0

    def build() -> SpatialNode:
        nonlocal cursor
        index = cursor
        cursor += 1
        node = SpatialNode(
            rect=Rect(*rects[index]),
            count=float(counts[index]),
            depth=int(depths[index]),
        )
        for _ in range(int(child_counts[index])):
            node.children.append(build())
        return node

    root = build()
    if cursor != counts.size:
        raise ValueError("corrupt tree archive: node count mismatch")
    return TreeSynopsis(
        _domain_from_array(data["domain"]), float(data["epsilon"]), root
    )
