"""Planar geometry primitives used throughout the library.

The paper models a geospatial dataset as a set of points in a rectangular
two-dimensional domain, and every query as an axis-aligned rectangle.  This
module provides the two corresponding value types:

* :class:`Rect` -- a closed axis-aligned rectangle ``[x_lo, x_hi] x
  [y_lo, y_hi]``.
* :class:`Domain2D` -- the data domain: a rectangle with convenience helpers
  for clipping, normalisation, and sampling sub-rectangles.

Both types are immutable; all operations return new objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Rect", "Domain2D", "interval_overlap", "rects_to_boxes"]


def interval_overlap(lo1: float, hi1: float, lo2: float, hi2: float) -> float:
    """Return the length of the overlap of intervals ``[lo1, hi1]`` and ``[lo2, hi2]``.

    Returns 0.0 when the intervals are disjoint.  Inputs may be unordered in
    the sense that an empty interval (``lo > hi``) yields zero overlap.
    """
    return max(0.0, min(hi1, hi2) - max(lo1, lo2))


def rects_to_boxes(rects: "list[Rect] | np.ndarray") -> np.ndarray:
    """Normalise a query batch to an ``(n, 4)`` float array.

    Accepts a list of :class:`Rect`, a list of 4-number sequences, or an
    already-shaped array of ``(x_lo, y_lo, x_hi, y_hi)`` rows.  The
    single batch-normalisation used by the query engines
    (:mod:`repro.queries.engine` re-exports it) and the ground-truth
    index (:mod:`repro.core.point_index`).
    """
    if isinstance(rects, np.ndarray):
        boxes = np.asarray(rects, dtype=float)
    else:
        rects = list(rects)  # materialise: generators must survive the scan
        if all(hasattr(rect, "as_tuple") for rect in rects):
            return np.array(
                [rect.as_tuple() for rect in rects], dtype=float
            ).reshape(-1, 4)
        boxes = np.asarray(rects, dtype=float)
    if boxes.size == 0:
        if boxes.ndim == 2 and boxes.shape[1] != 4:
            raise ValueError(f"expected (n, 4) array, got {boxes.shape}")
        return boxes.reshape(0, 4)
    if boxes.ndim != 2 or boxes.shape[1] != 4:
        raise ValueError(f"expected (n, 4) array, got {boxes.shape}")
    return boxes


@dataclass(frozen=True)
class Rect:
    """A closed, axis-aligned rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``.

    Degenerate rectangles (zero width or height) are permitted; negative
    extents are not.
    """

    x_lo: float
    y_lo: float
    x_hi: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_hi < self.x_lo or self.y_hi < self.y_lo:
            raise ValueError(
                f"Rect extents must be non-negative, got "
                f"[{self.x_lo}, {self.x_hi}] x [{self.y_lo}, {self.y_hi}]"
            )

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its center point and side lengths."""
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    @classmethod
    def from_size(cls, x_lo: float, y_lo: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its lower-left corner and side lengths."""
        return cls(x_lo, y_lo, x_lo + width, y_lo + height)

    @property
    def width(self) -> float:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> float:
        return self.y_hi - self.y_lo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x_lo + self.x_hi) / 2.0, (self.y_lo + self.y_hi) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies in the closed rectangle."""
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely within this rectangle."""
        return (
            self.x_lo <= other.x_lo
            and other.x_hi <= self.x_hi
            and self.y_lo <= other.y_lo
            and other.y_hi <= self.y_hi
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two closed rectangles share at least one point."""
        return (
            self.x_lo <= other.x_hi
            and other.x_lo <= self.x_hi
            and self.y_lo <= other.y_hi
            and other.y_lo <= self.y_hi
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        x_lo = max(self.x_lo, other.x_lo)
        y_lo = max(self.y_lo, other.y_lo)
        x_hi = min(self.x_hi, other.x_hi)
        y_hi = min(self.y_hi, other.y_hi)
        if x_hi < x_lo or y_hi < y_lo:
            return None
        return Rect(x_lo, y_lo, x_hi, y_hi)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection with ``other`` (0.0 when disjoint)."""
        dx = interval_overlap(self.x_lo, self.x_hi, other.x_lo, other.x_hi)
        dy = interval_overlap(self.y_lo, self.y_hi, other.y_lo, other.y_hi)
        return dx * dy

    def overlap_fraction(self, other: "Rect") -> float:
        """Fraction of *this* rectangle's area covered by ``other``.

        A degenerate rectangle (zero area) is considered fully covered when
        its location intersects ``other`` and uncovered otherwise.
        """
        if self.area == 0.0:
            return 1.0 if self.intersects(other) else 0.0
        return self.overlap_area(other) / self.area

    def expanded(self, margin: float) -> "Rect":
        """A rectangle grown by ``margin`` on every side (shrunk if negative)."""
        return Rect(
            self.x_lo - margin, self.y_lo - margin,
            self.x_hi + margin, self.y_hi + margin,
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x_lo + dx, self.y_lo + dy, self.x_hi + dx, self.y_hi + dy)

    def mask(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``(xs[i], ys[i])`` points lie in the rectangle."""
        return (
            (xs >= self.x_lo) & (xs <= self.x_hi)
            & (ys >= self.y_lo) & (ys <= self.y_hi)
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.x_lo, self.y_lo, self.x_hi, self.y_hi)


class Domain2D:
    """The rectangular domain that all data points and queries live in.

    A :class:`Domain2D` wraps a :class:`Rect` (its bounding box) and adds the
    operations synopsis construction needs: clipping points into the domain,
    normalising coordinates to the unit square, and sampling random query
    rectangles of a given size.
    """

    def __init__(self, x_lo: float, y_lo: float, x_hi: float, y_hi: float):
        if x_hi <= x_lo or y_hi <= y_lo:
            raise ValueError("Domain2D must have strictly positive extent")
        self._bounds = Rect(x_lo, y_lo, x_hi, y_hi)

    @classmethod
    def from_rect(cls, rect: Rect) -> "Domain2D":
        return cls(rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)

    @classmethod
    def unit(cls) -> "Domain2D":
        """The unit square ``[0, 1] x [0, 1]``."""
        return cls(0.0, 0.0, 1.0, 1.0)

    @property
    def bounds(self) -> Rect:
        return self._bounds

    @property
    def width(self) -> float:
        return self._bounds.width

    @property
    def height(self) -> float:
        return self._bounds.height

    @property
    def area(self) -> float:
        return self._bounds.area

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain2D):
            return NotImplemented
        return self._bounds == other._bounds

    def __hash__(self) -> int:
        return hash(self._bounds)

    def __repr__(self) -> str:
        b = self._bounds
        return f"Domain2D([{b.x_lo}, {b.x_hi}] x [{b.y_lo}, {b.y_hi}])"

    def contains(self, x: float, y: float) -> bool:
        return self._bounds.contains_point(x, y)

    def clip_points(self, points: np.ndarray) -> np.ndarray:
        """Clamp an ``(n, 2)`` point array into the domain's bounding box."""
        points = np.asarray(points, dtype=float)
        clipped = points.copy()
        clipped[:, 0] = np.clip(clipped[:, 0], self._bounds.x_lo, self._bounds.x_hi)
        clipped[:, 1] = np.clip(clipped[:, 1], self._bounds.y_lo, self._bounds.y_hi)
        return clipped

    def normalise(self, points: np.ndarray) -> np.ndarray:
        """Map points affinely into the unit square."""
        points = np.asarray(points, dtype=float)
        out = np.empty_like(points)
        out[:, 0] = (points[:, 0] - self._bounds.x_lo) / self.width
        out[:, 1] = (points[:, 1] - self._bounds.y_lo) / self.height
        return out

    def denormalise(self, unit_points: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalise`."""
        unit_points = np.asarray(unit_points, dtype=float)
        out = np.empty_like(unit_points)
        out[:, 0] = unit_points[:, 0] * self.width + self._bounds.x_lo
        out[:, 1] = unit_points[:, 1] * self.height + self._bounds.y_lo
        return out

    def clip_rect(self, rect: Rect) -> Rect | None:
        """Intersection of ``rect`` with the domain, or ``None`` if outside."""
        return self._bounds.intersection(rect)

    def random_rect(
        self, width: float, height: float, rng: np.random.Generator
    ) -> Rect:
        """Sample a uniformly placed ``width x height`` rectangle inside the domain.

        The rectangle is clamped to fit: the width/height may not exceed the
        domain extent.
        """
        if width > self.width or height > self.height:
            raise ValueError(
                f"query size {width} x {height} exceeds domain "
                f"{self.width} x {self.height}"
            )
        x_lo = self._bounds.x_lo + rng.uniform(0.0, self.width - width)
        y_lo = self._bounds.y_lo + rng.uniform(0.0, self.height - height)
        return Rect.from_size(x_lo, y_lo, width, height)

    def fraction(self, rect: Rect) -> float:
        """What fraction of the domain area ``rect`` covers (after clipping)."""
        return self._bounds.overlap_area(rect) / self.area


def _isclose(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
