"""The Adaptive Grid method (AG) — Section IV-B, the paper's main contribution.

AG addresses UG's weakness of partitioning dense and sparse regions
identically:

1. Lay a coarse ``m1 x m1`` first-level grid (``m1 = max(10,
   ceil(m_UG / 4))``) and obtain a noisy count per cell with budget
   ``alpha * eps``.
2. For each first-level cell with noisy count ``N'``, choose a second-level
   ``m2 x m2`` sub-grid by Guideline 2 (``m2 = ceil(sqrt(N' * (1 - alpha)
   * eps / c2))``, ``c2 = c / 2``) and obtain noisy leaf counts with the
   remaining budget ``(1 - alpha) * eps``.
3. Apply two-level **constrained inference** (Hay et al.) inside each
   first-level cell: combine the cell's own noisy count ``v`` with the sum
   of its leaves by inverse-variance weighting, then distribute the
   correction equally over the leaves::

       v' = (a^2 m2^2 v + (1-a)^2 * sum(u)) / ((1-a)^2 + a^2 m2^2)
       u'_ij = u_ij + (v' - sum(u)) / m2^2

Queries are answered from the inferred leaf counts with the uniformity
assumption, exactly like UG but with per-region granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.guidelines import (
    DEFAULT_ALPHA,
    DEFAULT_C,
    DEFAULT_C2,
    adaptive_first_level_size,
    guideline2_cell_grid_size,
)
from repro.core.synopsis import Synopsis, SynopsisBuilder
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng, noisy_histogram
from repro.core.geometry import Domain2D as _Domain2D

__all__ = [
    "AdaptiveGridSynopsis",
    "AdaptiveGridBuilder",
    "two_level_inference",
]


def two_level_inference(
    parent_count: float,
    leaf_counts: np.ndarray,
    alpha: float,
) -> tuple[float, np.ndarray]:
    """Constrained inference for one AG first-level cell.

    Combines the parent's noisy count (budget ``alpha * eps``) with its
    ``m2 x m2`` noisy leaf counts (budget ``(1 - alpha) * eps``) into a
    consistent, lower-variance pair ``(v', u')`` with
    ``sum(u') == v'``.

    The weights are the inverse-variance optimum from the paper: with
    ``Var(v) = 2 / (alpha eps)^2`` and ``Var(sum u) = m2^2 * 2 /
    ((1-alpha) eps)^2``, the best linear combination of the two estimates
    of the cell total is::

        v' = (a^2 m2^2) / ((1-a)^2 + a^2 m2^2) * v
           + (1-a)^2   / ((1-a)^2 + a^2 m2^2) * sum(u)

    and mean-consistency distributes the residual equally over leaves.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    leaf_counts = np.asarray(leaf_counts, dtype=float)
    n_leaves = leaf_counts.size
    if n_leaves == 0:
        raise ValueError("leaf_counts must be non-empty")
    leaf_sum = float(leaf_counts.sum())
    a2m2 = alpha**2 * n_leaves
    b2 = (1.0 - alpha) ** 2
    combined = (a2m2 * parent_count + b2 * leaf_sum) / (b2 + a2m2)
    adjusted = leaf_counts + (combined - leaf_sum) / n_leaves
    return combined, adjusted


@dataclass
class _CellRelease:
    """Released state for one first-level cell: its sub-grid and counts."""

    layout: GridLayout
    counts: np.ndarray  # inferred leaf counts u', shape = layout.shape
    inferred_total: float  # v'


class AdaptiveGridSynopsis(Synopsis):
    """The released state of AG: per-first-level-cell sub-grids and counts."""

    def __init__(
        self,
        domain: Domain2D,
        epsilon: float,
        level1: GridLayout,
        cells: list[list[_CellRelease]],
    ):
        super().__init__(domain, epsilon)
        if len(cells) != level1.mx or any(len(col) != level1.my for col in cells):
            raise ValueError("cells must be an mx x my nested list")
        self._level1 = level1
        self._cells = cells
        self._engine = None  # lazy AdaptiveGridEngine for answer_many

    @property
    def level1_layout(self) -> GridLayout:
        return self._level1

    @property
    def first_level_size(self) -> tuple[int, int]:
        return self._level1.shape

    def cell_grid_size(self, i: int, j: int) -> int:
        """The ``m2`` chosen for first-level cell ``(i, j)``."""
        return self._cells[i][j].layout.mx

    def cell_layout(self, i: int, j: int) -> GridLayout:
        """The sub-grid layout of first-level cell ``(i, j)``."""
        return self._cells[i][j].layout

    def cell_counts(self, i: int, j: int) -> np.ndarray:
        """Inferred leaf counts of first-level cell ``(i, j)``."""
        return self._cells[i][j].counts

    def cell_total(self, i: int, j: int) -> float:
        """Inferred total count v' of first-level cell ``(i, j)``."""
        return self._cells[i][j].inferred_total

    def leaf_cell_count(self) -> int:
        """Total number of leaf cells across all sub-grids."""
        return sum(
            release.layout.n_cells for column in self._cells for release in column
        )

    #: Batches at least this large are routed through the vectorised
    #: per-cell prefix-sum engine; smaller ones use the scalar path, whose
    #: per-query cost only visits the overlapping first-level cells.
    _BATCH_ENGINE_THRESHOLD = 16

    def answer_many(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Batch answering via per-cell prefix-sum engines (see
        :class:`~repro.queries.engine.AdaptiveGridEngine`); equal to the
        scalar path up to floating-point rounding.  Accepts a list of
        :class:`Rect`, a list of 4-number rows, or an ``(n, 4)`` array."""
        if not isinstance(rects, (list, np.ndarray)):
            rects = list(rects)
        n = rects.shape[0] if isinstance(rects, np.ndarray) else len(rects)
        if n < self._BATCH_ENGINE_THRESHOLD and self._engine is None:
            if isinstance(rects, list) and all(
                isinstance(rect, Rect) for rect in rects
            ):
                return super().answer_many(rects)
            # Match the engine path's semantics for bare bounds rows:
            # inverted bounds contribute 0 instead of raising, so
            # behaviour does not depend on batch size or input kind.
            from repro.queries.engine import rects_to_boxes

            boxes = rects_to_boxes(rects)
            out = np.zeros(boxes.shape[0])
            for idx, row in enumerate(boxes):
                if row[2] >= row[0] and row[3] >= row[1]:
                    out[idx] = self.answer(Rect(*row))
            return out
        if self._engine is None:
            from repro.queries.engine import AdaptiveGridEngine

            self._engine = AdaptiveGridEngine(self)
        return self._engine.answer_batch(rects)

    def answer(self, rect: Rect) -> float:
        # Only first-level cells overlapping the query contribute.  Fully
        # covered cells contribute their inferred total v' (cheap); border
        # cells are estimated from their sub-grid leaves.
        x_slice, y_slice, fx, fy = self._level1.coverage(rect)
        if fx.size == 0:
            return 0.0
        total = 0.0
        for di, i in enumerate(range(x_slice.start, x_slice.stop)):
            for dj, j in enumerate(range(y_slice.start, y_slice.stop)):
                release = self._cells[i][j]
                if fx[di] >= 1.0 and fy[dj] >= 1.0:
                    total += release.inferred_total
                else:
                    total += release.layout.estimate(release.counts, rect)
        return total

    def synthetic_points(self, rng: np.random.Generator) -> np.ndarray:
        rng = ensure_rng(rng)
        clouds = []
        for column in self._cells:
            for release in column:
                cloud = release.layout.sample_points(release.counts, rng)
                if cloud.size:
                    clouds.append(cloud)
        if not clouds:
            return np.empty((0, 2))
        return np.vstack(clouds)


class AdaptiveGridBuilder(SynopsisBuilder):
    """Builds AG synopses (the paper's ``A_{m1, c2}`` notation).

    Parameters
    ----------
    first_level_size:
        Fixed ``m1``; ``None`` applies the paper's rule
        ``m1 = max(10, ceil(sqrt(N eps / c) / 4))``.
    alpha:
        Budget fraction for the first level (default 0.5).
    c2:
        Guideline 2 constant (default ``c / 2 = 5``).
    c:
        Guideline 1 constant used when deriving ``m1`` (default 10).
    constrained_inference:
        Apply the two-level inference step (default ``True``).  Exposed so
        the ablation bench can measure its contribution.
    max_cell_grid_size:
        Safety cap on ``m2`` to bound memory on adversarial inputs.
    """

    name = "AG"

    def __init__(
        self,
        first_level_size: int | None = None,
        alpha: float = DEFAULT_ALPHA,
        c2: float = DEFAULT_C2,
        c: float = DEFAULT_C,
        constrained_inference: bool = True,
        max_cell_grid_size: int = 256,
    ):
        if first_level_size is not None and first_level_size < 1:
            raise ValueError(f"first_level_size must be >= 1, got {first_level_size}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_cell_grid_size < 1:
            raise ValueError("max_cell_grid_size must be >= 1")
        self.first_level_size = first_level_size
        self.alpha = alpha
        self.c2 = c2
        self.c = c
        self.constrained_inference = constrained_inference
        self.max_cell_grid_size = max_cell_grid_size

    def label(self) -> str:
        m1 = self.first_level_size if self.first_level_size is not None else "auto"
        return f"A{m1},{self.c2:g}"

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> AdaptiveGridSynopsis:
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)

        m1 = self.first_level_size
        if m1 is None:
            m1 = adaptive_first_level_size(dataset.size, epsilon, self.c)

        level1 = GridLayout(dataset.domain, m1, m1)
        level1_epsilon = self.alpha * epsilon
        level2_epsilon = (1.0 - self.alpha) * epsilon

        exact_level1 = level1.histogram(dataset.points)
        noisy_level1 = noisy_histogram(
            exact_level1, level1_epsilon, rng, budget=budget, label="level-1 counts"
        )

        # Pre-bucket the points by first-level cell so the second pass over
        # the data is a single group-by rather than m1^2 rectangle scans.
        ix, iy = level1.cell_indices(dataset.points)
        order = np.argsort(ix * m1 + iy, kind="stable")
        sorted_points = dataset.points[order]
        flat_cells = (ix * m1 + iy)[order]
        boundaries = np.searchsorted(flat_cells, np.arange(m1 * m1 + 1))

        # One histogram release per disjoint first-level cell: parallel
        # composition means level 2 costs (1 - alpha) * eps in total.
        budget.spend(level2_epsilon, "level-2 counts (parallel over cells)")

        cells: list[list[_CellRelease]] = []
        for i in range(m1):
            column: list[_CellRelease] = []
            for j in range(m1):
                flat = i * m1 + j
                cell_points = sorted_points[boundaries[flat] : boundaries[flat + 1]]
                release = self._release_cell(
                    level1.cell_rect(i, j),
                    cell_points,
                    float(noisy_level1[i, j]),
                    level2_epsilon,
                    rng,
                )
                column.append(release)
            cells.append(column)

        return AdaptiveGridSynopsis(dataset.domain, epsilon, level1, cells)

    def _release_cell(
        self,
        cell_rect: Rect,
        cell_points: np.ndarray,
        noisy_level1_count: float,
        level2_epsilon: float,
        rng: np.random.Generator,
    ) -> _CellRelease:
        """Build the second-level release for one first-level cell."""
        m2 = guideline2_cell_grid_size(noisy_level1_count, level2_epsilon, self.c2)
        m2 = min(m2, self.max_cell_grid_size)
        cell_domain = _Domain2D(
            cell_rect.x_lo, cell_rect.y_lo, cell_rect.x_hi, cell_rect.y_hi
        )
        layout = GridLayout(cell_domain, m2, m2)
        exact = layout.histogram(cell_points)
        scale = 1.0 / level2_epsilon
        noisy = exact + rng.laplace(0.0, scale, size=exact.shape)

        if self.constrained_inference:
            inferred_total, adjusted = two_level_inference(
                noisy_level1_count, noisy.reshape(-1), self.alpha
            )
            counts = adjusted.reshape(layout.shape)
        else:
            inferred_total = float(noisy.sum())
            counts = noisy
        return _CellRelease(layout, counts, inferred_total)
