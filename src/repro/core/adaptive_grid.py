"""The Adaptive Grid method (AG) — Section IV-B, the paper's main contribution.

AG addresses UG's weakness of partitioning dense and sparse regions
identically:

1. Lay a coarse ``m1 x m1`` first-level grid (``m1 = max(10,
   ceil(m_UG / 4))``) and obtain a noisy count per cell with budget
   ``alpha * eps``.
2. For each first-level cell with noisy count ``N'``, choose a second-level
   ``m2 x m2`` sub-grid by Guideline 2 (``m2 = ceil(sqrt(N' * (1 - alpha)
   * eps / c2))``, ``c2 = c / 2``) and obtain noisy leaf counts with the
   remaining budget ``(1 - alpha) * eps``.
3. Apply two-level **constrained inference** (Hay et al.) inside each
   first-level cell: combine the cell's own noisy count ``v`` with the sum
   of its leaves by inverse-variance weighting, then distribute the
   correction equally over the leaves::

       v' = (a^2 m2^2 v + (1-a)^2 * sum(u)) / ((1-a)^2 + a^2 m2^2)
       u'_ij = u_ij + (v' - sum(u)) / m2^2

Queries are answered from the inferred leaf counts with the uniformity
assumption, exactly like UG but with per-region granularity.

Flat CSR release layout
-----------------------

The released state is stored *flat*: per-first-level-cell sub-grid sizes
and totals as ``(m1x, m1y)`` arrays plus one concatenated ``leaf_counts``
vector indexed by CSR offsets.  Cell ``(i, j)`` (flat id ``c = i * m1y +
j``, row-major) owns the slice ``leaf_counts[leaf_offsets[c] :
leaf_offsets[c + 1]]``, which is its ``m2 x m2`` count matrix in C order.
Both the builder (one pass over the data, one noise draw, one inference
pass) and the batch query engine
(:class:`~repro.queries.engine.FlatAdaptiveGridEngine`) operate directly
on these arrays — no per-cell Python objects anywhere on the hot paths.

Noise-stream-order invariant
----------------------------

``fit`` draws all level-2 Laplace noise in a *single* ``rng.laplace``
call over the concatenated leaf vector.  Because numpy's Laplace sampler
consumes exactly one uniform variate per output element, this is
bit-identical to the historical per-cell loop that drew one ``(m2, m2)``
block per cell in row-major first-level order — the release distribution
is unchanged, draw for draw.  :meth:`AdaptiveGridBuilder.fit_percell_reference`
retains the pre-flat-kernel loop so tests can pin this invariant down.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.guidelines import (
    DEFAULT_ALPHA,
    DEFAULT_C,
    DEFAULT_C2,
    adaptive_first_level_size,
    guideline2_cell_grid_size,
)
from repro.core.synopsis import Synopsis, SynopsisBuilder
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng, noisy_histogram

__all__ = [
    "AdaptiveGridSynopsis",
    "AdaptiveGridBuilder",
    "two_level_inference",
    "two_level_inference_flat",
]


def two_level_inference(
    parent_count: float,
    leaf_counts: np.ndarray,
    alpha: float,
) -> tuple[float, np.ndarray]:
    """Constrained inference for one AG first-level cell.

    Combines the parent's noisy count (budget ``alpha * eps``) with its
    ``m2 x m2`` noisy leaf counts (budget ``(1 - alpha) * eps``) into a
    consistent, lower-variance pair ``(v', u')`` with
    ``sum(u') == v'``.

    The weights are the inverse-variance optimum from the paper: with
    ``Var(v) = 2 / (alpha eps)^2`` and ``Var(sum u) = m2^2 * 2 /
    ((1-alpha) eps)^2``, the best linear combination of the two estimates
    of the cell total is::

        v' = (a^2 m2^2) / ((1-a)^2 + a^2 m2^2) * v
           + (1-a)^2   / ((1-a)^2 + a^2 m2^2) * sum(u)

    and mean-consistency distributes the residual equally over leaves.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    leaf_counts = np.asarray(leaf_counts, dtype=float)
    n_leaves = leaf_counts.size
    if n_leaves == 0:
        raise ValueError("leaf_counts must be non-empty")
    leaf_sum = float(leaf_counts.sum())
    a2m2 = alpha**2 * n_leaves
    b2 = (1.0 - alpha) ** 2
    combined = (a2m2 * parent_count + b2 * leaf_sum) / (b2 + a2m2)
    adjusted = leaf_counts + (combined - leaf_sum) / n_leaves
    return combined, adjusted


def _segment_sums(
    values: np.ndarray, offsets: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Per-cell sums of a CSR leaf vector, grouped by sub-grid size.

    Cells sharing an ``m2`` are gathered into a ``(k, m2^2)`` matrix and
    summed along the last axis, which uses the same pairwise summation as
    ``np.sum`` over one cell's counts — so the result is bit-identical to
    the per-cell loop, unlike ``np.add.reduceat`` (sequential).  The
    number of distinct ``m2`` values is small, so the grouping loop is
    O(distinct sizes), not O(cells).
    """
    sums = np.empty(sizes.size)
    for size in np.unique(sizes):
        cells = np.flatnonzero(sizes == size)
        gather = offsets[cells][:, None] + np.arange(size * size)[None, :]
        sums[cells] = values[gather].sum(axis=1)
    return sums


def two_level_inference_flat(
    parent_counts: np.ndarray,
    leaf_counts: np.ndarray,
    leaf_offsets: np.ndarray,
    cell_sizes: np.ndarray,
    alpha: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Constrained inference for *all* first-level cells at once.

    Vectorised equivalent of calling :func:`two_level_inference` per cell:
    ``parent_counts`` is the flat vector of noisy level-1 counts,
    ``leaf_counts`` the concatenated noisy leaf vector with CSR
    ``leaf_offsets``, and ``cell_sizes`` each cell's ``m2``.  Returns
    ``(combined_totals, adjusted_leaves)`` in the same flat layout,
    bit-identical to the scalar loop (see :func:`_segment_sums`).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    parent_counts = np.asarray(parent_counts, dtype=float)
    leaf_counts = np.asarray(leaf_counts, dtype=float)
    n_leaves = (cell_sizes * cell_sizes).astype(float)
    leaf_sums = _segment_sums(leaf_counts, leaf_offsets, cell_sizes)
    a2m2 = alpha**2 * n_leaves
    b2 = (1.0 - alpha) ** 2
    combined = (a2m2 * parent_counts + b2 * leaf_sums) / (b2 + a2m2)
    per_leaf_shift = (combined - leaf_sums) / n_leaves
    adjusted = leaf_counts + np.repeat(per_leaf_shift, cell_sizes * cell_sizes)
    return combined, adjusted


class AdaptiveGridSynopsis(Synopsis):
    """The released state of AG, stored as flat CSR arrays.

    ``cell_sizes[i, j]`` is the ``m2`` of first-level cell ``(i, j)``,
    ``cell_totals[i, j]`` its inferred total ``v'``, and ``leaf_counts``
    the concatenation of every cell's ``m2 x m2`` inferred leaf matrix
    (C order) in row-major first-level order; ``leaf_offsets`` are the
    CSR offsets (``leaf_offsets[c] .. leaf_offsets[c + 1]`` bounds flat
    cell ``c = i * m1y + j``).
    """

    def __init__(
        self,
        domain: Domain2D,
        epsilon: float,
        level1: GridLayout,
        cell_sizes: np.ndarray,
        cell_totals: np.ndarray,
        leaf_counts: np.ndarray,
    ):
        super().__init__(domain, epsilon)
        cell_sizes = np.asarray(cell_sizes, dtype=np.int64)
        cell_totals = np.asarray(cell_totals, dtype=float)
        leaf_counts = np.asarray(leaf_counts, dtype=float)
        if cell_sizes.shape != level1.shape or cell_totals.shape != level1.shape:
            raise ValueError(
                f"cell_sizes/cell_totals must have the first-level shape "
                f"{level1.shape}, got {cell_sizes.shape} / {cell_totals.shape}"
            )
        if cell_sizes.size and cell_sizes.min() < 1:
            raise ValueError("cell_sizes must all be >= 1")
        sizes_flat = cell_sizes.reshape(-1)
        offsets = np.zeros(sizes_flat.size + 1, dtype=np.int64)
        np.cumsum(sizes_flat * sizes_flat, out=offsets[1:])
        if leaf_counts.ndim != 1 or leaf_counts.size != offsets[-1]:
            raise ValueError(
                f"leaf_counts must be a flat vector of {int(offsets[-1])} "
                f"values, got shape {leaf_counts.shape}"
            )
        self._level1 = level1
        self._cell_sizes = cell_sizes
        self._cell_totals = cell_totals
        self._leaf_counts = leaf_counts
        self._leaf_offsets = offsets
        self._engine = None  # lazy FlatAdaptiveGridEngine for answer_many
        self._layouts: dict[tuple[int, int], GridLayout] = {}  # cell_layout cache

    # ------------------------------------------------------------------
    # Flat released state (what engines and serialisation consume)
    # ------------------------------------------------------------------

    @property
    def level1_layout(self) -> GridLayout:
        return self._level1

    @property
    def first_level_size(self) -> tuple[int, int]:
        return self._level1.shape

    @property
    def cell_sizes(self) -> np.ndarray:
        """Per-first-level-cell sub-grid sizes ``m2``, shape ``(m1x, m1y)``."""
        return self._cell_sizes

    @property
    def cell_totals(self) -> np.ndarray:
        """Per-first-level-cell inferred totals ``v'``, shape ``(m1x, m1y)``."""
        return self._cell_totals

    @property
    def leaf_counts(self) -> np.ndarray:
        """Concatenated inferred leaf counts (CSR values vector)."""
        return self._leaf_counts

    @property
    def leaf_offsets(self) -> np.ndarray:
        """CSR offsets into :attr:`leaf_counts`, length ``m1x * m1y + 1``."""
        return self._leaf_offsets

    # ------------------------------------------------------------------
    # Per-cell accessors (views into the flat arrays)
    # ------------------------------------------------------------------

    def _flat_cell(self, i: int, j: int) -> int:
        mx, my = self._level1.shape
        if not (0 <= i < mx and 0 <= j < my):
            raise IndexError(f"cell ({i}, {j}) out of range for {mx} x {my} grid")
        return i * my + j

    def cell_grid_size(self, i: int, j: int) -> int:
        """The ``m2`` chosen for first-level cell ``(i, j)``."""
        self._flat_cell(i, j)
        return int(self._cell_sizes[i, j])

    def cell_layout(self, i: int, j: int) -> GridLayout:
        """The sub-grid layout of first-level cell ``(i, j)``.

        Layouts are derived from the flat arrays on first use and cached:
        the scalar ``answer`` path visits the same border cells over and
        over, and a :class:`GridLayout` construction (two ``linspace``
        edge arrays plus validation) is not free.
        """
        layout = self._layouts.get((i, j))
        if layout is None:
            rect = self._level1.cell_rect(i, j)
            m2 = self.cell_grid_size(i, j)
            cell_domain = Domain2D(rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)
            layout = GridLayout(cell_domain, m2, m2)
            self._layouts[(i, j)] = layout
        return layout

    def cell_counts(self, i: int, j: int) -> np.ndarray:
        """Inferred leaf counts of first-level cell ``(i, j)`` (a view)."""
        c = self._flat_cell(i, j)
        m2 = int(self._cell_sizes[i, j])
        start = self._leaf_offsets[c]
        return self._leaf_counts[start : start + m2 * m2].reshape(m2, m2)

    def cell_total(self, i: int, j: int) -> float:
        """Inferred total count v' of first-level cell ``(i, j)``."""
        self._flat_cell(i, j)
        return float(self._cell_totals[i, j])

    def leaf_cell_count(self) -> int:
        """Total number of leaf cells across all sub-grids (O(1))."""
        return int(self._leaf_offsets[-1])

    def drift_cells(self, max_cells: int = 1024) -> np.ndarray:
        """The first-level cells (AG's coarse data-adaptive partition).

        Level 1 is where AG reads the data distribution (level-2 grids
        only refine within a cell), so the level-1 cells are the natural
        resolution for a build-vs-fill drift signal; they are also few
        (``m1 x m1``), keeping the per-batch fill histogram cheap.
        """
        if self._level1.n_cells > max_cells:
            return super().drift_cells(max_cells)
        x_lo, y_lo, width, height = self._level1.flat_cell_geometry()
        return np.column_stack([x_lo, y_lo, x_lo + width, y_lo + height])

    #: Batches at least this large are routed through the vectorised flat
    #: CSR engine; smaller ones use the scalar path, whose per-query cost
    #: only visits the overlapping first-level cells.
    _BATCH_ENGINE_THRESHOLD = 16

    def answer_many(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Batch answering via the flat CSR prefix-sum engine (see
        :class:`~repro.queries.engine.FlatAdaptiveGridEngine`); equal to
        the scalar path up to floating-point rounding.  Accepts a list of
        :class:`Rect`, a list of 4-number rows, or an ``(n, 4)`` array."""
        if not isinstance(rects, (list, np.ndarray)):
            rects = list(rects)
        n = rects.shape[0] if isinstance(rects, np.ndarray) else len(rects)
        if n < self._BATCH_ENGINE_THRESHOLD and self._engine is None:
            if isinstance(rects, list) and all(
                isinstance(rect, Rect) for rect in rects
            ):
                return super().answer_many(rects)
            # Match the engine path's semantics for bare bounds rows:
            # inverted bounds contribute 0 instead of raising, so
            # behaviour does not depend on batch size or input kind.
            from repro.queries.engine import scalar_answer_batch

            return scalar_answer_batch(self, rects)
        if self._engine is None:
            from repro.queries.engine import make_engine

            self._engine = make_engine(self)
        return self._engine.answer_batch(rects)

    def answer(self, rect: Rect) -> float:
        # Only first-level cells overlapping the query contribute.  Fully
        # covered cells contribute their inferred total v' (cheap); border
        # cells are estimated from their sub-grid leaves.
        x_slice, y_slice, fx, fy = self._level1.coverage(rect)
        if fx.size == 0:
            return 0.0
        total = 0.0
        for di, i in enumerate(range(x_slice.start, x_slice.stop)):
            for dj, j in enumerate(range(y_slice.start, y_slice.stop)):
                if fx[di] >= 1.0 and fy[dj] >= 1.0:
                    total += float(self._cell_totals[i, j])
                else:
                    total += self.cell_layout(i, j).estimate(
                        self.cell_counts(i, j), rect
                    )
        return total

    def synthetic_points(self, rng: np.random.Generator) -> np.ndarray:
        rng = ensure_rng(rng)
        mx, my = self._level1.shape
        clouds = []
        for i in range(mx):
            for j in range(my):
                cloud = self.cell_layout(i, j).sample_points(
                    self.cell_counts(i, j), rng
                )
                if cloud.size:
                    clouds.append(cloud)
        if not clouds:
            return np.empty((0, 2))
        return np.vstack(clouds)


class AdaptiveGridBuilder(SynopsisBuilder):
    """Builds AG synopses (the paper's ``A_{m1, c2}`` notation).

    Parameters
    ----------
    first_level_size:
        Fixed ``m1``; ``None`` applies the paper's rule
        ``m1 = max(10, ceil(sqrt(N eps / c) / 4))``.
    alpha:
        Budget fraction for the first level (default 0.5).
    c2:
        Guideline 2 constant (default ``c / 2 = 5``).
    c:
        Guideline 1 constant used when deriving ``m1`` (default 10).
    constrained_inference:
        Apply the two-level inference step (default ``True``).  Exposed so
        the ablation bench can measure its contribution.
    max_cell_grid_size:
        Safety cap on ``m2`` to bound memory on adversarial inputs.
    """

    name = "AG"

    def __init__(
        self,
        first_level_size: int | None = None,
        alpha: float = DEFAULT_ALPHA,
        c2: float = DEFAULT_C2,
        c: float = DEFAULT_C,
        constrained_inference: bool = True,
        max_cell_grid_size: int = 256,
    ):
        if first_level_size is not None and first_level_size < 1:
            raise ValueError(f"first_level_size must be >= 1, got {first_level_size}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_cell_grid_size < 1:
            raise ValueError("max_cell_grid_size must be >= 1")
        self.first_level_size = first_level_size
        self.alpha = alpha
        self.c2 = c2
        self.c = c
        self.constrained_inference = constrained_inference
        self.max_cell_grid_size = max_cell_grid_size

    def label(self) -> str:
        m1 = self.first_level_size if self.first_level_size is not None else "auto"
        return f"A{m1},{self.c2:g}"

    def _level1_layout(self, dataset: GeoDataset, epsilon: float) -> GridLayout:
        """The first-level grid: fixed ``m1`` or the paper's auto rule."""
        m1 = self.first_level_size
        if m1 is None:
            m1 = adaptive_first_level_size(dataset.size, epsilon, self.c)
        return GridLayout(dataset.domain, m1, m1)

    def _release_level1(
        self,
        exact_level1: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget,
    ) -> tuple[np.ndarray, float]:
        """Noisy level-1 counts plus the alpha-split budget accounting.

        The single place both build paths spend the budget: ``alpha *
        epsilon`` on the level-1 histogram, then ``(1 - alpha) * epsilon``
        for level 2 — one histogram release per *disjoint* first-level
        cell, so parallel composition prices all of level 2 at one spend.
        """
        level2_epsilon = (1.0 - self.alpha) * epsilon
        noisy_level1 = noisy_histogram(
            exact_level1, self.alpha * epsilon, rng,
            budget=budget, label="level-1 counts",
        )
        budget.spend(level2_epsilon, "level-2 counts (parallel over cells)")
        return noisy_level1, level2_epsilon

    def _cell_grid_sizes(
        self, noisy_level1: np.ndarray, level2_epsilon: float
    ) -> np.ndarray:
        """Guideline 2 for every first-level cell at once.

        Element-wise identical to :func:`guideline2_cell_grid_size` capped
        at ``max_cell_grid_size`` (same expression order, so the same IEEE
        roundings).
        """
        noisy = np.maximum(0.0, noisy_level1.reshape(-1).astype(float))
        m2 = np.ceil(np.sqrt(noisy * level2_epsilon / self.c2))
        m2 = np.maximum(1, m2.astype(np.int64))
        return np.minimum(m2, self.max_cell_grid_size)

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> AdaptiveGridSynopsis:
        """Build the release with single vectorised passes over all cells.

        Noise-stream order (documented invariant, tested against
        :meth:`fit_percell_reference`): level-1 noise first, then one
        ``rng.laplace`` draw covering every leaf of every cell in
        row-major first-level order — bit-identical to the historical
        per-cell loop, which drew one ``(m2, m2)`` block at a time.
        """
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)

        level1 = self._level1_layout(dataset, epsilon)
        m1x, m1y = level1.shape

        # One pass over the points serves both levels: the level-1 cell ids
        # feed the level-1 histogram *and* the leaf assignment below.  Both
        # passes run in cache-sized chunks — the temporaries stay resident
        # instead of streaming through memory, which roughly halves the
        # per-point cost at service-scale N.  Chunking cannot change the
        # result (elementwise ops, integer bincounts), and only the int64
        # cell id per point is materialised whole.
        points = np.asarray(dataset.points, dtype=float)
        n_points = points.shape[0]
        chunk = 32_768
        cell_of_point = np.empty(n_points, dtype=np.int64)
        for start in range(0, n_points, chunk):
            stop = start + chunk
            ix_c, iy_c = level1.cell_indices(points[start:stop])
            np.add(ix_c * m1y, iy_c, out=cell_of_point[start:stop])
        exact_level1 = (
            np.bincount(cell_of_point, minlength=m1x * m1y)
            .reshape(m1x, m1y)
            .astype(float)
        )
        noisy_level1, level2_epsilon = self._release_level1(
            exact_level1, epsilon, rng, budget
        )

        sizes_flat = self._cell_grid_sizes(noisy_level1, level2_epsilon)
        n_leaves = sizes_flat * sizes_flat
        offsets = np.zeros(sizes_flat.size + 1, dtype=np.int64)
        np.cumsum(n_leaves, out=offsets[1:])
        total_leaves = int(offsets[-1])

        # Global flat leaf index per point: the within-cell sub-index uses
        # exactly the per-cell GridLayout binning expressions, so
        # assignments match the per-cell histogram bit for bit.  Cell
        # origins and extents come as flat-cell-indexed tables, so the
        # inner loop does one L1-resident gather per quantity instead of
        # recovering level-1 indices and re-gathering edges.
        cell_x_lo, cell_y_lo, cell_w, cell_h = level1.flat_cell_geometry()
        leaf_of_point = np.empty(n_points, dtype=np.int64)
        for start in range(0, n_points, chunk):
            stop = start + chunk
            cell_c = cell_of_point[start:stop]
            m2_pt = sizes_flat[cell_c]
            x_rel = (points[start:stop, 0] - cell_x_lo[cell_c]) / cell_w[cell_c]
            y_rel = (points[start:stop, 1] - cell_y_lo[cell_c]) / cell_h[cell_c]
            sub_ix = np.clip((x_rel * m2_pt).astype(np.int64), 0, m2_pt - 1)
            sub_iy = np.clip((y_rel * m2_pt).astype(np.int64), 0, m2_pt - 1)
            np.add(
                offsets[cell_c] + sub_ix * m2_pt, sub_iy,
                out=leaf_of_point[start:stop],
            )
        # One bincount over all points (not per chunk, which would cost
        # O(n_chunks * total_leaves) in accumulation alone at service N).
        exact_leaves = np.bincount(leaf_of_point, minlength=total_leaves).astype(
            float
        )

        # All level-2 noise in one draw (see the module docstring for why
        # this preserves the per-cell stream order bit for bit).
        scale = 1.0 / level2_epsilon
        noisy_leaves = exact_leaves + rng.laplace(0.0, scale, size=total_leaves)

        parent_flat = noisy_level1.reshape(-1)
        if self.constrained_inference:
            totals_flat, leaves = two_level_inference_flat(
                parent_flat, noisy_leaves, offsets, sizes_flat, self.alpha
            )
        else:
            totals_flat = _segment_sums(noisy_leaves, offsets, sizes_flat)
            leaves = noisy_leaves

        return AdaptiveGridSynopsis(
            dataset.domain,
            epsilon,
            level1,
            sizes_flat.reshape(m1x, m1y),
            totals_flat.reshape(m1x, m1y),
            leaves,
        )

    def fit_percell_reference(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> AdaptiveGridSynopsis:
        """The pre-flat-kernel per-cell build loop, retained as reference.

        Produces a bit-identical release to :meth:`fit` given the same
        ``rng`` state: one histogram, one ``(m2, m2)`` Laplace draw, and
        one :func:`two_level_inference` call per first-level cell, in
        row-major order.  Used by the equivalence tests and by
        ``benchmarks/bench_flat_kernel.py`` to measure the flat kernel's
        speedup; not intended for production use.
        """
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)
        level1 = self._level1_layout(dataset, epsilon)
        m1x, m1y = level1.shape
        noisy_level1, level2_epsilon = self._release_level1(
            level1.histogram(dataset.points), epsilon, rng, budget
        )

        # Pre-bucket the points by first-level cell so the second pass over
        # the data is a single group-by rather than m1^2 rectangle scans.
        ix, iy = level1.cell_indices(dataset.points)
        order = np.argsort(ix * m1y + iy, kind="stable")
        sorted_points = dataset.points[order]
        flat_cells = (ix * m1y + iy)[order]
        boundaries = np.searchsorted(flat_cells, np.arange(m1x * m1y + 1))

        sizes = np.empty((m1x, m1y), dtype=np.int64)
        totals = np.empty((m1x, m1y))
        leaf_chunks: list[np.ndarray] = []
        scale = 1.0 / level2_epsilon
        for i in range(m1x):
            for j in range(m1y):
                flat = i * m1y + j
                cell_points = sorted_points[boundaries[flat] : boundaries[flat + 1]]
                noisy_parent = float(noisy_level1[i, j])
                m2 = guideline2_cell_grid_size(
                    noisy_parent, level2_epsilon, self.c2
                )
                m2 = min(m2, self.max_cell_grid_size)
                rect = level1.cell_rect(i, j)
                layout = GridLayout(
                    Domain2D(rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi), m2, m2
                )
                exact = layout.histogram(cell_points)
                noisy = exact + rng.laplace(0.0, scale, size=exact.shape)
                if self.constrained_inference:
                    inferred_total, adjusted = two_level_inference(
                        noisy_parent, noisy.reshape(-1), self.alpha
                    )
                else:
                    inferred_total = float(noisy.sum())
                    adjusted = noisy.reshape(-1)
                sizes[i, j] = m2
                totals[i, j] = inferred_total
                leaf_chunks.append(np.asarray(adjusted, dtype=float))

        return AdaptiveGridSynopsis(
            dataset.domain,
            epsilon,
            level1,
            sizes,
            totals,
            np.concatenate(leaf_chunks),
        )


def _register_engine() -> None:
    # Self-registration keeps queries.engine's make_engine registry in
    # sync without that module having to know about grid synopses.
    from repro.queries.engine import (
        FlatAdaptiveGridEngine,
        register_engine,
        register_engine_sealer,
    )

    register_engine(AdaptiveGridSynopsis, FlatAdaptiveGridEngine)
    register_engine_sealer(
        AdaptiveGridSynopsis,
        FlatAdaptiveGridEngine.precompute,
        FlatAdaptiveGridEngine.from_slabs,
    )


_register_engine()
