"""The Uniform Grid method (UG) — Section IV-A of the paper.

UG partitions the domain into an ``m x m`` equi-width grid and releases an
independent noisy count per cell.  Because the cells partition the data,
parallel composition makes the whole histogram cost a single ``epsilon``.
The only design decision is ``m``; :func:`~repro.core.guidelines.
guideline1_grid_size` supplies the paper's choice ``m = sqrt(N * eps / c)``
with ``c = 10``.

The builder optionally spends a small slice of the budget on a noisy
estimate of ``N`` for the guideline (``n_estimation_fraction``); the
paper's experiments size the grid from the true ``N``, which corresponds to
the default of 0.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.guidelines import DEFAULT_C, guideline1_grid_size
from repro.core.postprocess import POSTPROCESS_CHOICES, apply_postprocess
from repro.core.synopsis import Synopsis, SynopsisBuilder
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng, noisy_count, noisy_histogram

__all__ = ["UniformGridSynopsis", "UniformGridBuilder"]


class UniformGridSynopsis(Synopsis):
    """The released state of UG: a grid layout plus noisy cell counts."""

    def __init__(
        self,
        domain: Domain2D,
        epsilon: float,
        layout: GridLayout,
        counts: np.ndarray,
    ):
        super().__init__(domain, epsilon)
        counts = np.asarray(counts, dtype=float)
        if counts.shape != layout.shape:
            raise ValueError(
                f"counts shape {counts.shape} does not match grid {layout.shape}"
            )
        self._layout = layout
        self._counts = counts
        self._engine = None  # lazy BatchQueryEngine for answer_many

    @property
    def layout(self) -> GridLayout:
        return self._layout

    @property
    def counts(self) -> np.ndarray:
        """The noisy per-cell counts (may contain negative values)."""
        return self._counts

    @property
    def grid_size(self) -> tuple[int, int]:
        return self._layout.shape

    def answer(self, rect: Rect) -> float:
        return self._layout.estimate(self._counts, rect)

    def _batch_engine(self):
        """The registered batch engine for this synopsis, built lazily.

        Routing through :func:`~repro.queries.engine.make_engine` (rather
        than hard-coding ``BatchQueryEngine``) lets subclasses that carry
        richer released state — wavelet coefficients, hierarchy levels —
        answer batches through their own registered engines.
        """
        if self._engine is None:
            from repro.queries.engine import make_engine

            self._engine = make_engine(self)
        return self._engine

    def answer_many(self, rects: list[Rect]) -> np.ndarray:
        """Vectorised batch answering via the registered engine."""
        return self._batch_engine().answer_batch(rects)

    def synthetic_points(self, rng: np.random.Generator) -> np.ndarray:
        return self._layout.sample_points(self._counts, ensure_rng(rng))

    def drift_cells(self, max_cells: int = 1024) -> np.ndarray:
        """The grid's own cells (the default cover when there are too many).

        Measuring drift on the release's own partition makes the signal
        exactly Dasu et al.'s build-vs-fill comparison: the released
        counts are the build histogram, new points fill the same cells.
        """
        if self._layout.n_cells > max_cells:
            return super().drift_cells(max_cells)
        x_lo, y_lo, width, height = self._layout.flat_cell_geometry()
        return np.column_stack([x_lo, y_lo, x_lo + width, y_lo + height])


class UniformGridBuilder(SynopsisBuilder):
    """Builds UG synopses.

    Parameters
    ----------
    grid_size:
        Fixed grid size ``m`` (the paper's ``U_m`` notation).  When ``None``
        the builder applies Guideline 1.
    c:
        Guideline 1 constant (default 10).
    n_estimation_fraction:
        Fraction of the budget spent on a noisy estimate of ``N`` used only
        to size the grid.  0 (the default, matching the paper's
        experiments) sizes from the exact count.
    aspect_adaptive:
        Extension beyond the paper: split the guideline's cell count
        ``m^2`` across the axes proportionally to the domain's aspect
        ratio so cells come out square (``mx / my = width / height``).
        The paper always uses ``m x m`` even on its 360 x 150 domain;
        this option is ablated in ``bench_ablations``.
    postprocess:
        ``"none"`` (default, the paper's setting), ``"clamp"`` (zero out
        negative counts), or ``"project"`` (non-negativity projection
        preserving the noisy total).  Post-processing costs no budget.
    """

    name = "UG"

    def __init__(
        self,
        grid_size: int | None = None,
        c: float = DEFAULT_C,
        n_estimation_fraction: float = 0.0,
        aspect_adaptive: bool = False,
        postprocess: str = "none",
    ):
        if grid_size is not None and grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {grid_size}")
        if not 0.0 <= n_estimation_fraction < 1.0:
            raise ValueError(
                f"n_estimation_fraction must be in [0, 1), got {n_estimation_fraction}"
            )
        if postprocess not in POSTPROCESS_CHOICES:
            raise ValueError(
                f"postprocess must be one of {POSTPROCESS_CHOICES}, "
                f"got {postprocess!r}"
            )
        self.grid_size = grid_size
        self.c = c
        self.n_estimation_fraction = n_estimation_fraction
        self.aspect_adaptive = aspect_adaptive
        self.postprocess = postprocess

    def label(self) -> str:
        if self.grid_size is None:
            return f"UG(c={self.c:g})"
        return f"U{self.grid_size}"

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> UniformGridSynopsis:
        rng = ensure_rng(rng)
        budget = self._budget(epsilon, budget)

        histogram_epsilon = epsilon
        m = self.grid_size
        if m is None:
            n_estimate = float(dataset.size)
            if self.n_estimation_fraction > 0.0:
                estimation_epsilon = epsilon * self.n_estimation_fraction
                histogram_epsilon = epsilon - estimation_epsilon
                n_estimate = noisy_count(
                    dataset.size, estimation_epsilon, rng, budget=budget,
                    label="N estimate",
                )
            m = guideline1_grid_size(n_estimate, epsilon, self.c)

        mx, my = self._axis_sizes(m, dataset.domain)
        layout = GridLayout(dataset.domain, mx, my)
        exact = layout.histogram(dataset.points)
        counts = noisy_histogram(
            exact, histogram_epsilon, rng, budget=budget, label="cell counts"
        )
        if self.postprocess != "none":
            counts = apply_postprocess(counts, self.postprocess)
        return UniformGridSynopsis(dataset.domain, epsilon, layout, counts)

    def _axis_sizes(self, m: int, domain) -> tuple[int, int]:
        """Per-axis sizes: square ``m x m`` or aspect-matched cells."""
        if not self.aspect_adaptive:
            return m, m
        # Keep the total cell count ~ m^2 while making cells square:
        # mx / my = width / height and mx * my = m^2.
        aspect = domain.width / domain.height
        mx = max(1, round(m * math.sqrt(aspect)))
        my = max(1, round(m / math.sqrt(aspect)))
        return mx, my


def _register_engine() -> None:
    # Self-registration keeps queries.engine's make_engine registry in
    # sync without that module having to know about grid synopses.
    from repro.queries.engine import (
        BatchQueryEngine,
        register_engine,
        register_engine_sealer,
    )

    register_engine(
        UniformGridSynopsis,
        lambda synopsis: BatchQueryEngine(synopsis.layout, synopsis.counts),
    )
    register_engine_sealer(
        UniformGridSynopsis,
        lambda synopsis: BatchQueryEngine.precompute(
            synopsis.layout, synopsis.counts
        ),
        lambda synopsis, slabs: BatchQueryEngine.from_slabs(
            synopsis.layout, slabs
        ),
    )


_register_engine()
