"""The synopsis abstraction.

A *synopsis* is the differentially private release described in Section II
of the paper: a partition of the domain into cells together with noisy
per-cell counts.  Once built (``fit``), a synopsis answers rectangular
count queries using only its released state — it never looks at the raw
data again, which is what makes the release safe to publish.

Concrete synopses (UG, AG, KD trees, hierarchies, Privelet, ...) subclass
:class:`Synopsis` and implement :meth:`Synopsis.answer`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.privacy.budget import PrivacyBudget

__all__ = ["Synopsis", "SynopsisBuilder"]


class Synopsis(abc.ABC):
    """A differentially private synopsis of a 2-D dataset.

    Subclasses are constructed by their builder's ``fit`` and must populate
    ``domain`` and ``epsilon``.
    """

    #: Engine slabs sealed into the archive this synopsis was loaded
    #: from (archive format v2), attached by the loader so
    #: :func:`~repro.queries.engine.make_engine` can skip the derived-
    #: buffer rebuild.  ``None`` when the synopsis was built in-process
    #: or loaded from a v1 archive.
    _sealed_engine_slabs: "dict[str, np.ndarray] | None" = None

    #: Size in bytes of the read-only file mapping backing this
    #: synopsis's arrays (archive format v2); 0 when the synopsis owns
    #: private copies.  The serving layer surfaces this per release in
    #: ``/health`` so shared-page footprint is observable.
    mapped_nbytes: int = 0

    def __init__(self, domain: Domain2D, epsilon: float):
        self._domain = domain
        self._epsilon = epsilon

    @property
    def domain(self) -> Domain2D:
        return self._domain

    @property
    def sealed_engine_slabs(self) -> "dict[str, np.ndarray] | None":
        """Engine buffers sealed into the archive this release came from."""
        return self._sealed_engine_slabs

    def seal_engine_slabs(self, slabs: "dict[str, np.ndarray]") -> None:
        """Attach precomputed engine buffers (called by the v2 loader)."""
        self._sealed_engine_slabs = dict(slabs)

    @property
    def epsilon(self) -> float:
        """The total privacy budget consumed to build this synopsis."""
        return self._epsilon

    @abc.abstractmethod
    def answer(self, rect: Rect) -> float:
        """Estimated number of data points in the query rectangle.

        Uses the uniformity assumption for cells partially covered by the
        query.  Estimates may be negative because of Laplace noise; callers
        who need non-negative counts can clamp.
        """

    def answer_many(self, rects: "list[Rect] | np.ndarray") -> np.ndarray:
        """Vector of estimates for a batch of query rectangles.

        The default routes through :func:`~repro.queries.engine.
        scalar_answer_batch` — still a per-rect Python loop, but with the
        engines' shared batch contract (empty batches return ``(0,)``,
        inverted/NaN rows answer 0, ``(n, 4)`` arrays accepted).
        Subclasses with a registered batch engine override this with a
        vectorised path; anything left on this default shows up in
        :func:`~repro.queries.engine.fallback_engine_count` when served.
        """
        from repro.queries.engine import scalar_answer_batch

        return scalar_answer_batch(self, rects)

    def total(self) -> float:
        """Estimated total number of points (query over the whole domain)."""
        return self.answer(self._domain.bounds)

    def drift_cells(self, max_cells: int = 1024) -> np.ndarray:
        """Partition cells used to compare the release against new data.

        Returns ``(k, 4)`` rows of ``(x_lo, y_lo, x_hi, y_hi)`` covering
        the domain.  Streaming ingestion histograms newly arrived points
        over these cells and compares the distribution against what the
        release itself estimates for the same cells (the build-vs-fill
        drift signal of Dasu et al.'s kdq-trees): when the two diverge,
        the release no longer describes the data and a re-release is
        due.  The default is an equi-width grid of at most ``max_cells``
        cells; subclasses whose released state *is* a partition override
        this so drift is measured on the cells the release actually
        uses.
        """
        return _default_drift_cells(self._domain, max_cells)

    def synthetic_points(self, rng: np.random.Generator) -> np.ndarray:
        """Generate a synthetic point cloud from the released synopsis.

        The default implementation raises; grid-backed synopses override it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support synthetic data generation"
        )


def _default_drift_cells(domain: Domain2D, max_cells: int) -> np.ndarray:
    """An ``m x m`` equi-width cell cover with ``m*m <= max_cells``."""
    from repro.core.grid import GridLayout

    m = max(1, int(np.sqrt(max_cells)))
    layout = GridLayout(domain, m)
    x_lo, y_lo, width, height = layout.flat_cell_geometry()
    return np.column_stack([x_lo, y_lo, x_lo + width, y_lo + height])


class SynopsisBuilder(abc.ABC):
    """Factory that fits a :class:`Synopsis` to a dataset under a budget.

    Builders carry the method's hyper-parameters (grid sizes, budget splits,
    tree depths); ``fit`` consumes the dataset once and returns the released
    synopsis.  A fresh :class:`~repro.privacy.budget.PrivacyBudget` is
    created per fit unless the caller supplies one (e.g. to share a budget
    across a pipeline).
    """

    #: Short algorithm label used in experiment reports (e.g. ``"UG"``).
    name: str = "synopsis"

    @abc.abstractmethod
    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> Synopsis:
        """Build a differentially private synopsis of ``dataset``.

        Parameters
        ----------
        dataset:
            The sensitive input data.
        epsilon:
            Total privacy budget for the release.
        rng:
            Source of randomness for the DP mechanisms.
        budget:
            Optional externally managed budget; when omitted the builder
            creates one of size ``epsilon`` and must exhaust at most that.
        """

    def label(self) -> str:
        """Human-readable description including hyper-parameters."""
        return self.name

    def _budget(self, epsilon: float, budget: PrivacyBudget | None) -> PrivacyBudget:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        return budget if budget is not None else PrivacyBudget(epsilon)
