"""Core: geometry, datasets, grids, and the UG/AG contributions."""

from repro.core.adaptive_grid import AdaptiveGridBuilder, AdaptiveGridSynopsis
from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.point_index import GroundTruthIndex
from repro.core.postprocess import (
    apply_postprocess,
    clamp_nonnegative,
    project_nonnegative_preserving_total,
)
from repro.core.serialization import load_synopsis, save_synopsis
from repro.core.synopsis import Synopsis, SynopsisBuilder
from repro.core.uniform_grid import UniformGridBuilder, UniformGridSynopsis

__all__ = [
    "apply_postprocess",
    "clamp_nonnegative",
    "load_synopsis",
    "project_nonnegative_preserving_total",
    "save_synopsis",
    "AdaptiveGridBuilder",
    "AdaptiveGridSynopsis",
    "Domain2D",
    "GeoDataset",
    "GridLayout",
    "GroundTruthIndex",
    "Rect",
    "Synopsis",
    "SynopsisBuilder",
    "UniformGridBuilder",
    "UniformGridSynopsis",
]
