"""Equi-width grid layout and histogramming.

The grid is the workhorse data structure of the paper: both UG and AG (and
the Privelet / hierarchy baselines) reduce to computing a histogram over an
``mx x my`` equi-width grid and answering rectangle queries from per-cell
counts under the uniformity assumption.

:class:`GridLayout` knows only about geometry (cell edges, indices, overlap
fractions); it holds no counts, so the same layout can be shared by exact
histograms, noisy histograms, and wavelet-transformed histograms.

Query answering under the uniformity assumption is a rank-1 bilinear form:
for a query rectangle ``r`` the estimate is ``fx @ C @ fy`` where ``C`` is
the (noisy) count matrix and ``fx[i]`` / ``fy[j]`` are the fractions of
column ``i`` / row ``j`` covered by ``r``.  This is exactly the estimator
described in Section II-B of the paper (full cells contribute their whole
count, border cells contribute proportionally to overlap area) but runs in
``O(mx + my)`` plus a sliced matrix product instead of a cell loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Domain2D, Rect

__all__ = ["GridLayout"]


class GridLayout:
    """An ``mx x my`` equi-width grid over a rectangular domain.

    Cell ``(i, j)`` spans ``[x_edges[i], x_edges[i+1]] x
    [y_edges[j], y_edges[j+1]]``; ``i`` indexes the x axis (columns of the
    domain) and ``j`` the y axis.  Count matrices associated with the layout
    therefore have shape ``(mx, my)``.
    """

    def __init__(self, domain: Domain2D, mx: int, my: int | None = None):
        if my is None:
            my = mx
        if mx < 1 or my < 1:
            raise ValueError(f"grid size must be >= 1, got {mx} x {my}")
        self._domain = domain
        self._mx = int(mx)
        self._my = int(my)
        bounds = domain.bounds
        self._x_edges = np.linspace(bounds.x_lo, bounds.x_hi, self._mx + 1)
        self._y_edges = np.linspace(bounds.y_lo, bounds.y_hi, self._my + 1)

    @property
    def domain(self) -> Domain2D:
        return self._domain

    @property
    def shape(self) -> tuple[int, int]:
        return (self._mx, self._my)

    @property
    def mx(self) -> int:
        return self._mx

    @property
    def my(self) -> int:
        return self._my

    @property
    def n_cells(self) -> int:
        return self._mx * self._my

    @property
    def x_edges(self) -> np.ndarray:
        return self._x_edges

    @property
    def y_edges(self) -> np.ndarray:
        return self._y_edges

    @property
    def cell_width(self) -> float:
        return self._domain.width / self._mx

    @property
    def cell_height(self) -> float:
        return self._domain.height / self._my

    def __repr__(self) -> str:
        return f"GridLayout({self._mx} x {self._my} over {self._domain!r})"

    def cell_rect(self, i: int, j: int) -> Rect:
        """The rectangle of cell ``(i, j)``."""
        if not (0 <= i < self._mx and 0 <= j < self._my):
            raise IndexError(f"cell ({i}, {j}) out of range for {self.shape} grid")
        return Rect(
            self._x_edges[i], self._y_edges[j],
            self._x_edges[i + 1], self._y_edges[j + 1],
        )

    def flat_cell_geometry(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-cell origins and extents, indexed by flat cell id.

        Returns ``(x_lo, y_lo, width, height)`` arrays of length
        ``n_cells`` for cells in row-major order (``c = i * my + j``).
        Extents are the same edge subtractions a per-cell
        :class:`GridLayout` would perform (``edges[i + 1] - edges[i]``,
        not the constant ``domain extent / m``), so binning and coverage
        computed from these stay bit-identical to per-cell layouts —
        the invariant the flat AG kernel relies on.
        """
        x_lo = np.repeat(self._x_edges[:-1], self._my)
        y_lo = np.tile(self._y_edges[:-1], self._mx)
        width = np.repeat(np.diff(self._x_edges), self._my)
        height = np.tile(np.diff(self._y_edges), self._mx)
        return x_lo, y_lo, width, height

    def cell_indices(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map ``(n, 2)`` points to integer cell indices ``(ix, iy)``.

        Points on the shared edge of two cells are assigned to the
        higher-index cell except on the domain's far boundary, which belongs
        to the last cell (the standard half-open binning convention, closed
        at the top).
        """
        points = np.asarray(points, dtype=float)
        bounds = self._domain.bounds
        x_rel = (points[:, 0] - bounds.x_lo) / self._domain.width
        y_rel = (points[:, 1] - bounds.y_lo) / self._domain.height
        ix = np.clip((x_rel * self._mx).astype(np.int64), 0, self._mx - 1)
        iy = np.clip((y_rel * self._my).astype(np.int64), 0, self._my - 1)
        return ix, iy

    def histogram(self, points: np.ndarray) -> np.ndarray:
        """Exact per-cell counts of the given points, shape ``(mx, my)``."""
        points = np.asarray(points, dtype=float)
        if points.shape[0] == 0:
            return np.zeros(self.shape, dtype=float)
        ix, iy = self.cell_indices(points)
        flat = np.bincount(ix * self._my + iy, minlength=self.n_cells)
        return flat.reshape(self.shape).astype(float)

    # ------------------------------------------------------------------
    # Query answering support
    # ------------------------------------------------------------------

    def axis_coverage(
        self, edges: np.ndarray, lo: float, hi: float
    ) -> tuple[int, int, np.ndarray]:
        """Per-cell coverage fractions of ``[lo, hi]`` along one axis.

        Returns ``(first, last, fractions)`` where cells ``first .. last``
        (inclusive) are the only ones with non-zero overlap and
        ``fractions[k]`` is the fraction of cell ``first + k`` covered.
        When the interval misses the axis range entirely, ``fractions`` is
        empty and ``first > last``.
        """
        n = edges.size - 1
        lo = max(lo, edges[0])
        hi = min(hi, edges[-1])
        if hi <= lo:
            return 1, 0, np.empty(0)
        width = (edges[-1] - edges[0]) / n
        first = min(int((lo - edges[0]) / width), n - 1)
        last = min(int(np.nextafter((hi - edges[0]) / width, -np.inf)), n - 1)
        last = max(last, first)
        cell_los = edges[first : last + 1]
        cell_his = edges[first + 1 : last + 2]
        overlap = np.minimum(cell_his, hi) - np.maximum(cell_los, lo)
        fractions = np.clip(overlap / width, 0.0, 1.0)
        return first, last, fractions

    def coverage(self, rect: Rect) -> tuple[slice, slice, np.ndarray, np.ndarray]:
        """Coverage slices and fraction vectors for a query rectangle.

        Returns ``(x_slice, y_slice, fx, fy)`` such that the uniformity
        estimate for any count matrix ``C`` is ``fx @ C[x_slice, y_slice] @
        fy``.  Empty slices mean no overlap.
        """
        x_first, x_last, fx = self.axis_coverage(self._x_edges, rect.x_lo, rect.x_hi)
        y_first, y_last, fy = self.axis_coverage(self._y_edges, rect.y_lo, rect.y_hi)
        if fx.size == 0 or fy.size == 0:
            return slice(0, 0), slice(0, 0), np.empty(0), np.empty(0)
        return (
            slice(x_first, x_last + 1),
            slice(y_first, y_last + 1),
            fx,
            fy,
        )

    def estimate(self, counts: np.ndarray, rect: Rect) -> float:
        """Uniformity-assumption estimate of the count inside ``rect``.

        ``counts`` must have shape ``(mx, my)``.  Full cells contribute
        their whole count; border cells contribute proportionally to the
        covered area, exactly as Section II-B prescribes.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.shape != self.shape:
            raise ValueError(
                f"counts shape {counts.shape} does not match grid {self.shape}"
            )
        x_slice, y_slice, fx, fy = self.coverage(rect)
        if fx.size == 0:
            return 0.0
        return float(fx @ counts[x_slice, y_slice] @ fy)

    def cells_touched(self, rect: Rect) -> int:
        """How many grid cells the rectangle overlaps (q in the error model)."""
        x_slice, y_slice, fx, fy = self.coverage(rect)
        return fx.size * fy.size

    def total_area_fractions(self) -> np.ndarray:
        """Fraction of the domain area in each cell (uniform: all equal)."""
        return np.full(self.shape, 1.0 / self.n_cells)

    def sample_points(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw a synthetic point cloud matching non-negative cell counts.

        Each cell ``(i, j)`` receives ``round(counts[i, j])`` points placed
        uniformly at random inside it; negative counts contribute nothing.
        This is how a released synopsis is turned into a synthetic dataset.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.shape != self.shape:
            raise ValueError(
                f"counts shape {counts.shape} does not match grid {self.shape}"
            )
        per_cell = np.maximum(0, np.rint(counts)).astype(np.int64)
        total = int(per_cell.sum())
        if total == 0:
            return np.empty((0, 2))
        ix = np.repeat(np.arange(self._mx), per_cell.sum(axis=1))
        iy = np.repeat(
            np.tile(np.arange(self._my), self._mx), per_cell.reshape(-1)
        )
        xs = self._x_edges[ix] + rng.uniform(0.0, self.cell_width, size=total)
        ys = self._y_edges[iy] + rng.uniform(0.0, self.cell_height, size=total)
        return np.column_stack([xs, ys])
