"""Grid-size guidelines (the paper's Guidelines 1 and 2).

These closed-form rules are the analytic heart of the paper.  Both come
from minimising the sum of the two error sources of Section II-B:

* noise error, which grows with partition granularity (more cells in a
  query means more independent Laplace noises), and
* non-uniformity error, which shrinks with granularity (smaller border
  cells mean smaller uniformity-assumption mistakes).

**Guideline 1 (UG)** — for a uniform ``m x m`` grid, choose::

    m = sqrt(N * eps / c)        with  c = 10  (c = sqrt(2) * c0)

**Guideline 2 (AG level 2)** — a first-level cell with noisy count ``N'``
is split into an ``m2 x m2`` sub-grid with::

    m2 = ceil( sqrt(N' * (1 - alpha) * eps / c2) )   with  c2 = c / 2 = 5

**AG level 1** — the paper sets the coarse grid to::

    m1 = max(10, ceil(sqrt(N * eps / c) / 4))

The module also exposes the underlying error-sum objective so tests (and
the ablation benches) can verify that the guideline value indeed minimises
it.
"""

from __future__ import annotations

import math

__all__ = [
    "DEFAULT_C",
    "DEFAULT_C2",
    "DEFAULT_ALPHA",
    "guideline1_grid_size",
    "guideline2_cell_grid_size",
    "adaptive_first_level_size",
    "ug_error_objective",
    "ag_cell_error_objective",
]

#: The constant ``c`` of Guideline 1.  The paper's experiments find
#: ``c = 10`` works well across datasets of very different sizes.
DEFAULT_C = 10.0

#: The constant ``c2 = c / 2`` of Guideline 2.
DEFAULT_C2 = DEFAULT_C / 2.0

#: Default budget split between AG's two levels (paper: alpha in [0.2, 0.6]
#: all behave similarly; 0.5 is the default used in the experiments).
DEFAULT_ALPHA = 0.5


def guideline1_grid_size(
    n_points: float, epsilon: float, c: float = DEFAULT_C
) -> int:
    """Guideline 1: the UG grid size ``m = sqrt(N * eps / c)``.

    Returns at least 1.  ``n_points`` may be a noisy estimate of N (the
    paper notes a small budget slice suffices to estimate it).

    >>> guideline1_grid_size(1_600_000, 1.0)
    400
    >>> guideline1_grid_size(1_600_000, 0.1)
    126
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    n_points = max(0.0, float(n_points))
    return max(1, round(math.sqrt(n_points * epsilon / c)))


def guideline2_cell_grid_size(
    noisy_count: float,
    remaining_epsilon: float,
    c2: float = DEFAULT_C2,
) -> int:
    """Guideline 2: sub-grid size for an AG first-level cell.

    ``m2 = ceil(sqrt(N' * eps_2 / c2))`` where ``eps_2 = (1 - alpha) * eps``
    is the budget left for leaf counts and ``N'`` the cell's noisy count.
    Noisy counts can be negative; they are treated as zero, giving
    ``m2 = 1`` (no further split).

    >>> guideline2_cell_grid_size(500, 0.5)
    8
    """
    if remaining_epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {remaining_epsilon}")
    if c2 <= 0:
        raise ValueError(f"c2 must be positive, got {c2}")
    noisy_count = max(0.0, float(noisy_count))
    return max(1, math.ceil(math.sqrt(noisy_count * remaining_epsilon / c2)))


def adaptive_first_level_size(
    n_points: float, epsilon: float, c: float = DEFAULT_C
) -> int:
    """AG's first-level grid size ``m1 = max(10, ceil(m_UG / 4))``.

    ``m1`` should be coarser than the UG size (each cell gets split again)
    but not degenerate; the paper fixes the floor at 10.

    The quarter is taken of the *rounded* UG size, matching the paper's
    reported suggestions (e.g. checkin at eps = 1: UG 316 -> m1 = 79).

    >>> adaptive_first_level_size(1_000_000, 0.1)
    25
    >>> adaptive_first_level_size(1_000_000, 1.0)
    79
    >>> adaptive_first_level_size(9_000, 1.0)
    10
    """
    ug_size = guideline1_grid_size(n_points, epsilon, c)
    return max(10, math.ceil(ug_size / 4.0))


def ug_error_objective(
    m: float,
    n_points: float,
    epsilon: float,
    query_fraction: float = 1.0,
    c0: float = DEFAULT_C / math.sqrt(2.0),
) -> float:
    """The error sum Guideline 1 minimises, as a function of grid size ``m``.

    ``sqrt(2 r) * m / eps  +  sqrt(r) * N / (c0 * m)`` — noise error plus
    non-uniformity error for a query covering fraction ``r`` of the domain.
    Exposed so tests can check the guideline's optimality numerically.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    r = query_fraction
    noise_error = math.sqrt(2.0 * r) * m / epsilon
    non_uniformity_error = math.sqrt(r) * n_points / (c0 * m)
    return noise_error + non_uniformity_error


def ag_cell_error_objective(
    m2: float,
    noisy_count: float,
    remaining_epsilon: float,
    c0: float = DEFAULT_C / math.sqrt(2.0),
) -> float:
    """The per-cell error sum Guideline 2 minimises, as a function of ``m2``.

    With constrained inference a border query is answered by about
    ``m2^2 / 4`` leaves, giving noise error ``(m2 / 2) * sqrt(2) / eps_2``
    plus non-uniformity error ``N' / (c0 * m2)``.
    """
    if m2 <= 0:
        raise ValueError(f"m2 must be positive, got {m2}")
    noise_error = (m2 / 2.0) * math.sqrt(2.0) / remaining_epsilon
    non_uniformity_error = noisy_count / (c0 * m2)
    return noise_error + non_uniformity_error
