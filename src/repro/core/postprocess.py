"""Post-processing of released counts.

Differential privacy is closed under post-processing, so any transform of
a released synopsis is free (no extra budget).  Two standard clean-ups for
noisy histograms are provided:

* :func:`clamp_nonnegative` — zero out negative counts.  Simple, but
  biases the total upward (it removes only negative noise).
* :func:`project_nonnegative_preserving_total` — the standard "waterfill"
  projection: clamp negatives to zero, then uniformly subtract from the
  remaining positive cells so the (noisy) total is preserved, iterating
  until no cell goes negative.  This is the L2 projection onto
  ``{x >= 0, sum(x) = total}`` for the uniform-weights case.

Both operate on arbitrary-dimensional count arrays, so they apply to UG
grids, AG sub-grids, and the d-dimensional extension alike.
:class:`~repro.core.uniform_grid.UniformGridBuilder` exposes them via its
``postprocess`` parameter.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "clamp_nonnegative",
    "project_nonnegative_preserving_total",
    "apply_postprocess",
    "POSTPROCESS_CHOICES",
]

POSTPROCESS_CHOICES = ("none", "clamp", "project")


def clamp_nonnegative(counts: np.ndarray) -> np.ndarray:
    """Element-wise ``max(counts, 0)``."""
    return np.maximum(np.asarray(counts, dtype=float), 0.0)


def project_nonnegative_preserving_total(
    counts: np.ndarray, max_iterations: int = 64
) -> np.ndarray:
    """Project onto the non-negative simplex slice ``sum(x) = sum(counts)``.

    When the noisy total itself is negative, there is no non-negative
    array with that total; the all-zeros array (the closest boundary
    point) is returned.

    The iteration clamps negatives and redistributes the (negative)
    surplus equally over the still-positive cells; it terminates when no
    cell goes negative, which happens in at most ``n`` iterations and in
    practice a handful.
    """
    counts = np.asarray(counts, dtype=float).copy()
    total = counts.sum()
    if total <= 0.0:
        return np.zeros_like(counts)
    flat = counts.reshape(-1)
    for _ in range(max_iterations):
        negative = flat < 0.0
        if not negative.any():
            break
        deficit = flat[negative].sum()  # negative number
        flat[negative] = 0.0
        positive = flat > 0.0
        n_positive = int(np.count_nonzero(positive))
        if n_positive == 0:
            break
        flat[positive] += deficit / n_positive
    # A final clamp guards the rare case where max_iterations was hit.
    flat[flat < 0.0] = 0.0
    result = flat.reshape(counts.shape)
    # Restore the exact total (the clamp in the last step can drift it).
    current = result.sum()
    if current > 0.0:
        result *= total / current
    return result


def apply_postprocess(counts: np.ndarray, mode: str) -> np.ndarray:
    """Dispatch on a postprocess mode name (``none``/``clamp``/``project``)."""
    if mode == "none":
        return np.asarray(counts, dtype=float)
    if mode == "clamp":
        return clamp_nonnegative(counts)
    if mode == "project":
        return project_nonnegative_preserving_total(counts)
    raise ValueError(
        f"unknown postprocess mode {mode!r}; choose from {POSTPROCESS_CHOICES}"
    )
