"""One-dimensional counterparts of UG and the hierarchy.

Section IV-C's argument rests on a contrast: binary hierarchies with
constrained inference are *very* effective for 1-D range queries (Hay et
al.) but much less so in 2-D.  To reproduce that contrast empirically —
not just via the closed-form border model — this module implements the
1-D versions of both methods over an ``m``-bucket histogram:

* :func:`flat_histogram` — noisy counts per bucket (1-D "UG");
* :func:`hierarchical_histogram` — a binary tree of interval counts with
  uniform per-level budgets and constrained inference, answered at the
  leaves;
* :func:`range_query` — interval sums with fractional end buckets;
* :func:`compare_methods` — Monte-Carlo mean error of both on random
  interval queries, the measurement behind the "hierarchies win big in
  1-D" claim.

The module is also servable: :class:`OneDimHistogramSynopsis` releases
the hierarchical histogram over a 2-D dataset's *x-marginal* and answers
rectangle queries as (interval estimate) x (fractional y-coverage of the
domain) — the uniformity assumption applied on the unmodelled axis.  It
registers in all three service registries (method ``Hier1d`` in
:mod:`repro.service.keys`, serialization kind ``one_dim``, and
:class:`OneDimIntervalEngine` in the engine registry), closing the last
analysis family with no registration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.hierarchy import hierarchy_inference
from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect, interval_overlap, rects_to_boxes
from repro.core.synopsis import Synopsis, SynopsisBuilder
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng, laplace_scale

__all__ = [
    "flat_histogram",
    "hierarchical_histogram",
    "wavelet_histogram",
    "range_query",
    "OneDimComparison",
    "compare_methods",
    "OneDimHistogramSynopsis",
    "OneDimHistogramBuilder",
    "OneDimIntervalEngine",
]


def _check_counts(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("counts must be a non-empty 1-D array")
    return counts


def flat_histogram(
    counts: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    budget: PrivacyBudget | None = None,
) -> np.ndarray:
    """1-D UG: independent Laplace noise on every bucket (one spend)."""
    counts = _check_counts(counts)
    budget = budget if budget is not None else PrivacyBudget(epsilon)
    budget.spend(epsilon, "1-d histogram")
    scale = laplace_scale(1.0, epsilon)
    return counts + rng.laplace(0.0, scale, size=counts.shape)


def hierarchical_histogram(
    counts: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    budget: PrivacyBudget | None = None,
) -> np.ndarray:
    """1-D binary hierarchy with constrained inference, returned as leaves.

    The bucket count must be a power of two.  The budget is split evenly
    across the ``log2(m) + 1`` levels; each level is a disjoint partition
    (one parallel-composition spend per level).  After inference the tree
    is consistent, so releasing the leaf vector loses nothing.

    Implementation note: the 2-D array inference engine is reused by
    viewing the histogram as an ``m x 1`` grid would break the branching
    arithmetic, so levels are built as ``(m / 2^l,)`` vectors and fed to
    :func:`~repro.baselines.hierarchy.hierarchy_inference` reshaped as
    ``(k, 1)`` matrices with branching applied on the first axis only via
    pairwise sums.
    """
    counts = _check_counts(counts)
    m = counts.size
    if m & (m - 1):
        raise ValueError(f"bucket count must be a power of two, got {m}")
    depth = int(np.log2(m)) + 1
    budget = budget if budget is not None else PrivacyBudget(epsilon)
    level_epsilon = epsilon / depth

    # Build exact level sums from the root (1 bucket) down to the leaves.
    exact_levels: list[np.ndarray] = [counts]
    while exact_levels[-1].size > 1:
        level = exact_levels[-1]
        exact_levels.append(level[0::2] + level[1::2])
    exact_levels.reverse()  # coarsest first

    noisy_levels = []
    variances = []
    scale = laplace_scale(1.0, level_epsilon)
    for index, level in enumerate(exact_levels):
        budget.spend(level_epsilon, f"1-d level {index} ({level.size} buckets)")
        noisy_levels.append(level + rng.laplace(0.0, scale, size=level.shape))
        variances.append(2.0 * scale**2)

    # Reuse the 2-D inference engine on (k, 1)-shaped matrices with a
    # synthetic second axis: branching b=2 on axis 0 requires square
    # blocks, so instead run the generic scalar-weight recursion here.
    inferred = _infer_1d(noisy_levels, variances)
    return inferred[-1]


def wavelet_histogram(
    counts: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    budget: PrivacyBudget | None = None,
) -> np.ndarray:
    """1-D Privelet: Haar-transform, noise coefficients, invert.

    Uses the same weighting as the 2-D baseline
    (:mod:`repro.baselines.privelet`): coefficient weight = subtree size,
    generalised sensitivity ``1 + log2(m)``, noise
    ``Lap(GS / (eps * weight))`` per coefficient.  The bucket count must
    be a power of two.
    """
    from repro.baselines.privelet import (
        coefficient_weights,
        generalised_sensitivity,
        haar_forward,
        haar_inverse,
    )

    counts = _check_counts(counts)
    m = counts.size
    if m & (m - 1):
        raise ValueError(f"bucket count must be a power of two, got {m}")
    budget = budget if budget is not None else PrivacyBudget(epsilon)
    budget.spend(epsilon, "1-d wavelet coefficients")
    coefficients = haar_forward(counts)
    weights = coefficient_weights(m)
    scales = generalised_sensitivity(m) / (epsilon * weights)
    noisy = coefficients + rng.laplace(0.0, 1.0, size=m) * scales
    return haar_inverse(noisy)


def _infer_1d(
    noisy_levels: list[np.ndarray], variances: list[float]
) -> list[np.ndarray]:
    """Two-pass WLS inference for a binary 1-D hierarchy (coarsest first)."""
    depth = len(noisy_levels)
    z_levels: list[np.ndarray] = [None] * depth  # type: ignore[list-item]
    z_variances = [0.0] * depth
    z_levels[-1] = noisy_levels[-1]
    z_variances[-1] = variances[-1]
    for level in range(depth - 2, -1, -1):
        below = z_levels[level + 1]
        child_sum = below[0::2] + below[1::2]
        child_variance = 2.0 * z_variances[level + 1]
        own = variances[level]
        weight_own = child_variance / (own + child_variance)
        z_levels[level] = weight_own * noisy_levels[level] + (
            1.0 - weight_own
        ) * child_sum
        z_variances[level] = own * child_variance / (own + child_variance)

    inferred: list[np.ndarray] = [None] * depth  # type: ignore[list-item]
    inferred[0] = z_levels[0]
    for level in range(1, depth):
        z = z_levels[level]
        parent_residual = inferred[level - 1] - (z[0::2] + z[1::2])
        inferred[level] = z + np.repeat(parent_residual, 2) / 2.0
    return inferred


def range_query(released: np.ndarray, lo: float, hi: float) -> float:
    """Interval-sum estimate over ``[lo, hi]`` in bucket coordinates.

    ``lo`` and ``hi`` are fractional bucket positions in ``[0, m]``;
    partially covered end buckets contribute proportionally (the 1-D
    uniformity assumption).
    """
    released = _check_counts(released)
    m = released.size
    lo = max(0.0, min(float(lo), m))
    hi = max(0.0, min(float(hi), m))
    if hi <= lo:
        return 0.0
    first = int(lo)
    last = min(int(np.ceil(hi)) - 1, m - 1)
    total = float(released[first : last + 1].sum())
    total -= released[first] * (lo - first)
    total -= released[last] * (last + 1 - hi)
    return total


@dataclass(frozen=True)
class OneDimComparison:
    """Mean absolute range-query errors of the two 1-D methods."""

    flat_error: float
    hierarchy_error: float

    @property
    def improvement(self) -> float:
        """How many times better the hierarchy is (> 1 means it wins)."""
        if self.hierarchy_error == 0:
            return float("inf")
        return self.flat_error / self.hierarchy_error


def compare_methods(
    counts: np.ndarray,
    epsilon: float,
    rng: np.random.Generator | int | None,
    n_queries: int = 200,
    n_trials: int = 5,
) -> OneDimComparison:
    """Monte-Carlo comparison of flat vs hierarchical 1-D release.

    Random intervals of random lengths are asked of both releases; the
    returned means quantify Section IV-C's premise that hierarchies are
    very effective in 1-D.
    """
    counts = _check_counts(counts)
    rng = ensure_rng(rng)
    m = counts.size
    queries = []
    for _ in range(n_queries):
        length = rng.uniform(1.0, m)
        start = rng.uniform(0.0, m - length)
        queries.append((start, start + length))
    truths = np.array([range_query(counts, lo, hi) for lo, hi in queries])

    flat_errors, hierarchy_errors = [], []
    for _ in range(n_trials):
        flat = flat_histogram(counts, epsilon, rng)
        tree = hierarchical_histogram(counts, epsilon, rng)
        flat_answers = np.array([range_query(flat, lo, hi) for lo, hi in queries])
        tree_answers = np.array([range_query(tree, lo, hi) for lo, hi in queries])
        flat_errors.append(np.abs(flat_answers - truths).mean())
        hierarchy_errors.append(np.abs(tree_answers - truths).mean())
    return OneDimComparison(
        flat_error=float(np.mean(flat_errors)),
        hierarchy_error=float(np.mean(hierarchy_errors)),
    )


# ----------------------------------------------------------------------
# Servable release: the 1-D hierarchy over a 2-D dataset's x-marginal
# ----------------------------------------------------------------------


class OneDimHistogramSynopsis(Synopsis):
    """Released 1-D hierarchical histogram of a dataset's x-marginal.

    The released state is the inferred leaf vector of
    :func:`hierarchical_histogram` over ``m`` equi-width buckets spanning
    the domain's x-extent.  A rectangle query is answered as the
    fractional interval sum over x (:func:`range_query` semantics) scaled
    by the fraction of the domain's y-extent the rectangle covers — the
    uniformity assumption applied to the axis the release does not model.
    This is the 1-D contrast method of Section IV-C made servable, not a
    competitor to the 2-D families.
    """

    def __init__(self, domain: Domain2D, epsilon: float, released: np.ndarray):
        super().__init__(domain, epsilon)
        released = _check_counts(released)
        if released.size & (released.size - 1):
            raise ValueError(
                f"bucket count must be a power of two, got {released.size}"
            )
        self._released = released
        self._engine = None  # lazy OneDimIntervalEngine for answer_many

    @property
    def released(self) -> np.ndarray:
        """The inferred leaf counts (may contain negative values)."""
        return self._released

    @property
    def n_buckets(self) -> int:
        return self._released.size

    def _fractions(self, rect: Rect) -> tuple[float, float, float]:
        """Map a rect to (x bucket interval, y coverage fraction)."""
        bounds = self._domain.bounds
        if bounds.width <= 0 or bounds.height <= 0:
            return 0.0, 0.0, 0.0
        scale = self._released.size / bounds.width
        lo = (rect.x_lo - bounds.x_lo) * scale
        hi = (rect.x_hi - bounds.x_lo) * scale
        y_fraction = (
            interval_overlap(rect.y_lo, rect.y_hi, bounds.y_lo, bounds.y_hi)
            / bounds.height
        )
        return lo, hi, y_fraction

    def answer(self, rect: Rect) -> float:
        lo, hi, y_fraction = self._fractions(rect)
        if y_fraction == 0.0:
            return 0.0
        return range_query(self._released, lo, hi) * y_fraction

    def answer_many(self, rects: "list[Rect] | np.ndarray") -> np.ndarray:
        """Vectorised batch answering via the registered engine."""
        if self._engine is None:
            from repro.queries.engine import make_engine

            self._engine = make_engine(self)
        return self._engine.answer_batch(rects)


class OneDimIntervalEngine:
    """Prefix-sum batch engine for :class:`OneDimHistogramSynopsis`.

    ``S(t)``, the released mass in buckets ``[0, t)`` for fractional
    ``t``, is a single prefix-sum lookup plus a partial-bucket term;
    an interval answers ``S(hi) - S(lo)``, identical (to rounding) to
    the scalar :func:`range_query` formula.  O(m) build, O(1) per query.
    """

    def __init__(self, synopsis: OneDimHistogramSynopsis):
        self._domain = synopsis.domain.bounds.as_tuple()
        released = synopsis.released
        slabs = self.precompute(released)
        self._finish_init(released, slabs)

    def _finish_init(self, released: np.ndarray, slabs: dict) -> None:
        self._released = released
        self._prefix = slabs["prefix"]

    @staticmethod
    def precompute(released: np.ndarray) -> dict[str, np.ndarray]:
        """Derived buffers to seal into a v2 archive at release time."""
        prefix = np.zeros(released.size + 1)
        np.cumsum(released, out=prefix[1:])
        return {"prefix": prefix}

    @classmethod
    def from_slabs(
        cls, synopsis: OneDimHistogramSynopsis, slabs: dict
    ) -> "OneDimIntervalEngine":
        """Restore from sealed (possibly read-only mmap) slabs."""
        engine = cls.__new__(cls)
        engine._domain = synopsis.domain.bounds.as_tuple()
        engine._finish_init(synopsis.released, dict(slabs))
        return engine

    def _mass_below(self, positions: np.ndarray) -> np.ndarray:
        """Vector of ``S(t)`` for fractional bucket positions ``t``."""
        m = self._released.size
        whole = np.minimum(positions.astype(int), m - 1)
        return self._prefix[whole] + self._released[whole] * (positions - whole)

    def answer_batch(self, rects: "list[Rect] | np.ndarray") -> np.ndarray:
        boxes = rects_to_boxes(rects)
        out = np.zeros(boxes.shape[0])
        if boxes.shape[0] == 0:
            return out
        x_lo, y_lo, x_hi, y_hi = self._domain
        width, height = x_hi - x_lo, y_hi - y_lo
        if width <= 0 or height <= 0:
            return out
        m = self._released.size
        with np.errstate(invalid="ignore"):
            valid = (boxes[:, 2] >= boxes[:, 0]) & (boxes[:, 3] >= boxes[:, 1])
            scale = m / width
            # Invalid rows (inverted or NaN bounds) answer 0; zero their
            # positions before indexing so NaNs never reach astype(int).
            lo = np.where(
                valid, np.clip((boxes[:, 0] - x_lo) * scale, 0.0, m), 0.0
            )
            hi = np.where(
                valid, np.clip((boxes[:, 2] - x_lo) * scale, 0.0, m), 0.0
            )
            y_fraction = np.where(
                valid,
                (
                    np.clip(boxes[:, 3], y_lo, y_hi)
                    - np.clip(boxes[:, 1], y_lo, y_hi)
                )
                / height,
                0.0,
            )
        estimates = (self._mass_below(hi) - self._mass_below(lo)) * y_fraction
        out[valid] = estimates[valid]
        return out


class OneDimHistogramBuilder(SynopsisBuilder):
    """Builds :class:`OneDimHistogramSynopsis` releases.

    Histograms the x-coordinates into ``n_buckets`` equi-width buckets
    (a disjoint partition of the domain, so the full hierarchy costs one
    ``epsilon`` under the per-level split of
    :func:`hierarchical_histogram`).
    """

    name = "Hier1d"

    def __init__(self, n_buckets: int = 256):
        if n_buckets < 1 or n_buckets & (n_buckets - 1):
            raise ValueError(
                f"n_buckets must be a power of two, got {n_buckets}"
            )
        self.n_buckets = n_buckets

    def label(self) -> str:
        return f"{self.name}(m={self.n_buckets})"

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> OneDimHistogramSynopsis:
        budget = self._budget(epsilon, budget)
        rng = ensure_rng(rng)
        bounds = dataset.domain.bounds
        counts, _ = np.histogram(
            dataset.xs, bins=self.n_buckets, range=(bounds.x_lo, bounds.x_hi)
        )
        released = hierarchical_histogram(
            counts.astype(float), epsilon, rng, budget
        )
        return OneDimHistogramSynopsis(dataset.domain, epsilon, released)


def _register_engine() -> None:
    # Registered here (not in queries.engine) so the engine registry
    # never has to import analysis modules.
    from repro.queries.engine import register_engine, register_engine_sealer

    register_engine(OneDimHistogramSynopsis, OneDimIntervalEngine)
    register_engine_sealer(
        OneDimHistogramSynopsis,
        lambda synopsis: OneDimIntervalEngine.precompute(synopsis.released),
        OneDimIntervalEngine.from_slabs,
    )


_register_engine()
