"""Effect of dimensionality on hierarchies (Section IV-C of the paper).

A hierarchy helps a range query by answering its *interior* with
higher-level nodes; only the query's *border* must be answered by leaves.
The paper's argument: with ``M`` leaf cells grouped ``b`` at a time,

* in 1-D a query has 2 border regions of size ``b / M`` of the domain each
  → border fraction ``2 b / M``;
* in 2-D (an ``m x m = M`` grid grouped ``sqrt(b) x sqrt(b)``) a query has
  4 border sides of size ``sqrt(b) / sqrt(M)`` each → border fraction
  ``4 sqrt(b) / sqrt(M)``;
* in d dimensions, ``2 d`` hyperplane borders of size
  ``b^(1/d) / M^(1/d)`` each.

Because ``M >> b``, the border fraction explodes with dimension — the
paper's worked example (``M = 10,000``, ``b = 4``) gives 0.0008 in 1-D but
0.08 in 2-D, which is why deep hierarchies pay off so much less over
2-D grids.  These closed forms back the Figure 3 discussion and the
``bench_dimensionality`` target.
"""

from __future__ import annotations

__all__ = [
    "border_fraction",
    "border_fraction_1d",
    "border_fraction_2d",
    "paper_example",
    "hierarchy_benefit_ratio",
]


def border_fraction(n_cells: float, group_size: float, dimension: int) -> float:
    """Fraction of the domain a query's border occupies, in d dimensions.

    ``n_cells`` is the total number of leaf cells ``M``; ``group_size`` the
    number of leaves grouped into one higher-level node ``b``.
    """
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if n_cells <= 0 or group_size <= 0:
        raise ValueError("n_cells and group_size must be positive")
    if group_size > n_cells:
        raise ValueError(
            f"group size {group_size} cannot exceed cell count {n_cells}"
        )
    side = (group_size / n_cells) ** (1.0 / dimension)
    return min(1.0, 2.0 * dimension * side)


def border_fraction_1d(n_cells: float, group_size: float) -> float:
    """1-D special case: ``2 b / M``."""
    return border_fraction(n_cells, group_size, 1)


def border_fraction_2d(n_cells: float, group_size: float) -> float:
    """2-D special case: ``4 sqrt(b) / sqrt(M)``."""
    return border_fraction(n_cells, group_size, 2)


def paper_example() -> dict[str, float]:
    """The worked example of Section IV-C: M = 10,000 and b = 4.

    >>> example = paper_example()
    >>> round(example["2d"], 4), round(example["1d"], 4)
    (0.08, 0.0008)
    """
    n_cells = 10_000.0
    group = 4.0
    return {
        "1d": border_fraction_1d(n_cells, group),
        "2d": border_fraction_2d(n_cells, group),
        "ratio": border_fraction_2d(n_cells, group)
        / border_fraction_1d(n_cells, group),
    }


def hierarchy_benefit_ratio(n_cells: float, group_size: float, dimension: int) -> float:
    """How much of a query a hierarchy can shortcut: 1 - border fraction.

    Values near 1 mean the hierarchy answers almost everything with
    high-level nodes (the 1-D regime); values near 0 mean almost the whole
    query is border work at the leaves (the high-dimensional regime), so
    the hierarchy's extra levels mostly just dilute the leaf budget.
    """
    return max(0.0, 1.0 - border_fraction(n_cells, group_size, dimension))
