"""The paper's two-source error model, measurable on real synopses.

Section II-B decomposes a grid synopsis's query error into:

* **noise error** — the sum of per-cell Laplace noises inside the query:
  standard deviation ``sqrt(2 r) * m / eps`` for a query covering fraction
  ``r`` of an ``m x m`` grid;
* **non-uniformity error** — the uniformity assumption applied to border
  cells: on the order of ``sqrt(r) * N / (c0 * m)``.

This module provides both the closed-form *predictions* and an empirical
*decomposition*: given a dataset, a grid size and a workload, it measures
the two components separately (non-uniformity from a noise-free exact
grid; noise by differencing noisy and exact grid answers), which is how the
tests validate Guideline 1 end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.grid import GridLayout
from repro.core.guidelines import DEFAULT_C
from repro.privacy.mechanisms import ensure_rng
from repro.queries.workload import QueryWorkload

__all__ = [
    "predicted_noise_error",
    "predicted_nonuniformity_error",
    "predicted_total_error",
    "optimal_grid_size_numeric",
    "ErrorDecomposition",
    "measure_decomposition",
]


def predicted_noise_error(
    m: float, epsilon: float, query_fraction: float
) -> float:
    """Predicted noise-error standard deviation ``sqrt(2 r) m / eps``."""
    if m <= 0 or epsilon <= 0:
        raise ValueError("m and epsilon must be positive")
    if not 0.0 <= query_fraction <= 1.0:
        raise ValueError(f"query fraction must be in [0, 1], got {query_fraction}")
    return math.sqrt(2.0 * query_fraction) * m / epsilon


def predicted_nonuniformity_error(
    m: float,
    n_points: float,
    query_fraction: float,
    c0: float = DEFAULT_C / math.sqrt(2.0),
) -> float:
    """Predicted non-uniformity error ``sqrt(r) N / (c0 m)``."""
    if m <= 0:
        raise ValueError("m must be positive")
    return math.sqrt(query_fraction) * n_points / (c0 * m)


def predicted_total_error(
    m: float,
    n_points: float,
    epsilon: float,
    query_fraction: float,
    c0: float = DEFAULT_C / math.sqrt(2.0),
) -> float:
    """Sum of the two predicted error components."""
    return predicted_noise_error(m, epsilon, query_fraction) + (
        predicted_nonuniformity_error(m, n_points, query_fraction, c0)
    )


def optimal_grid_size_numeric(
    n_points: float,
    epsilon: float,
    query_fraction: float = 0.25,
    c0: float = DEFAULT_C / math.sqrt(2.0),
    m_max: int = 4096,
) -> int:
    """Numerically minimise the predicted total error over integer ``m``.

    Exists so tests can confirm Guideline 1's closed form agrees with a
    brute-force search over the model.
    """
    best_m, best_value = 1, math.inf
    for m in range(1, m_max + 1):
        value = predicted_total_error(m, n_points, epsilon, query_fraction, c0)
        if value < best_value:
            best_m, best_value = m, value
    return best_m


@dataclass(frozen=True)
class ErrorDecomposition:
    """Measured mean absolute errors of the two components on a workload."""

    noise_error: float
    nonuniformity_error: float
    total_error: float

    def dominant(self) -> str:
        """Which component dominates ('noise' or 'nonuniformity')."""
        if self.noise_error >= self.nonuniformity_error:
            return "noise"
        return "nonuniformity"


def measure_decomposition(
    dataset: GeoDataset,
    grid_size: int,
    epsilon: float,
    workload: QueryWorkload,
    rng: np.random.Generator | int | None,
) -> ErrorDecomposition:
    """Empirically split a UG synopsis's error into its two sources.

    For every workload query: the *non-uniformity* component is the error
    of a noise-free exact grid (pure uniformity assumption); the *noise*
    component is the difference between noisy-grid and exact-grid answers.
    Their absolute means are returned alongside the total.
    """
    rng = ensure_rng(rng)
    layout = GridLayout(dataset.domain, grid_size)
    exact_counts = layout.histogram(dataset.points)
    noise = rng.laplace(0.0, 1.0 / epsilon, size=exact_counts.shape)

    noise_errors = []
    nonuniformity_errors = []
    total_errors = []
    for query_set in workload.query_sets:
        for rect, truth in zip(query_set.rects, query_set.true_answers):
            exact_answer = layout.estimate(exact_counts, rect)
            noise_answer = layout.estimate(noise, rect)
            nonuniformity_errors.append(abs(exact_answer - truth))
            noise_errors.append(abs(noise_answer))
            total_errors.append(abs(exact_answer + noise_answer - truth))
    return ErrorDecomposition(
        noise_error=float(np.mean(noise_errors)),
        nonuniformity_error=float(np.mean(nonuniformity_errors)),
        total_error=float(np.mean(total_errors)),
    )
