"""Analysis: the paper's error model and dimensionality arguments."""

from repro.analysis.dimensionality import (
    border_fraction,
    border_fraction_1d,
    border_fraction_2d,
    hierarchy_benefit_ratio,
    paper_example,
)
from repro.analysis.error_model import (
    ErrorDecomposition,
    measure_decomposition,
    optimal_grid_size_numeric,
    predicted_noise_error,
    predicted_nonuniformity_error,
    predicted_total_error,
)
from repro.analysis.one_dim import (
    OneDimComparison,
    compare_methods,
    flat_histogram,
    hierarchical_histogram,
    range_query,
    wavelet_histogram,
)
from repro.analysis.scaling import (
    SweepResult,
    epsilon_sweep,
    log_log_slope,
    size_sweep,
)
from repro.analysis.uniformity import (
    UniformityProfile,
    estimate_c,
    nonuniformity_coefficient,
    uniformity_profile,
)

__all__ = [
    "ErrorDecomposition",
    "OneDimComparison",
    "SweepResult",
    "UniformityProfile",
    "epsilon_sweep",
    "log_log_slope",
    "size_sweep",
    "wavelet_histogram",
    "border_fraction",
    "border_fraction_1d",
    "border_fraction_2d",
    "compare_methods",
    "estimate_c",
    "flat_histogram",
    "hierarchical_histogram",
    "hierarchy_benefit_ratio",
    "measure_decomposition",
    "nonuniformity_coefficient",
    "optimal_grid_size_numeric",
    "paper_example",
    "predicted_noise_error",
    "predicted_nonuniformity_error",
    "predicted_total_error",
    "range_query",
    "uniformity_profile",
]
