"""Scaling laws: how synopsis error moves with epsilon and N.

The error analysis of Section II-B implies concrete scaling behaviour
that the experiments only sample at two epsilon values.  This module
measures the full curves:

* :func:`epsilon_sweep` — mean error of a builder across a grid of
  epsilon values (same dataset, same workload);
* :func:`size_sweep` — mean error across dataset sizes drawn from the
  same generator;
* :func:`log_log_slope` — least-squares slope in log-log space, used to
  check predictions like "UG error at the guideline size scales as
  ``(N eps)^(-1/2)``" (both error terms scale as ``sqrt(r) / m`` with
  ``m = sqrt(N eps / c)``, up to the relative-error denominator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.synopsis import SynopsisBuilder
from repro.experiments.runner import evaluate_builder
from repro.queries.workload import QueryWorkload

__all__ = ["SweepResult", "epsilon_sweep", "size_sweep", "log_log_slope"]


@dataclass
class SweepResult:
    """One measured curve: parameter values and mean errors."""

    parameter_name: str
    values: list[float] = field(default_factory=list)
    mean_relative_errors: list[float] = field(default_factory=list)

    def add(self, value: float, error: float) -> None:
        self.values.append(float(value))
        self.mean_relative_errors.append(float(error))

    def slope(self) -> float:
        """Log-log slope of error against the swept parameter."""
        return log_log_slope(self.values, self.mean_relative_errors)

    def as_rows(self) -> list[tuple[float, float]]:
        return list(zip(self.values, self.mean_relative_errors))


def log_log_slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Requires at least two strictly positive points.
    """
    xs = [float(x) for x in xs]
    ys = [float(y) for y in ys]
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log slope requires positive values")
    log_x = np.log(xs)
    log_y = np.log(ys)
    slope, _ = np.polyfit(log_x, log_y, 1)
    return float(slope)


def epsilon_sweep(
    builder: SynopsisBuilder,
    dataset: GeoDataset,
    workload: QueryWorkload,
    epsilons: list[float],
    n_trials: int = 2,
    seed: int = 0,
) -> SweepResult:
    """Measure mean relative error across privacy budgets."""
    if not epsilons:
        raise ValueError("epsilons must be non-empty")
    result = SweepResult(parameter_name="epsilon")
    for epsilon in sorted(epsilons):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        evaluation = evaluate_builder(
            builder, dataset, workload, epsilon, n_trials=n_trials, seed=seed
        )
        result.add(epsilon, evaluation.mean_relative())
    return result


def size_sweep(
    builder: SynopsisBuilder,
    make_dataset,
    make_workload,
    sizes: list[int],
    epsilon: float,
    n_trials: int = 2,
    seed: int = 0,
) -> SweepResult:
    """Measure mean relative error across dataset sizes.

    ``make_dataset(n)`` must return a :class:`GeoDataset` of ``n`` points
    from a fixed generator; ``make_workload(dataset)`` its workload.
    Relative error normalises by the (size-dependent) true counts, so this
    isolates the ``N`` dependence of the *relative* accuracy.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    result = SweepResult(parameter_name="n_points")
    for n in sorted(sizes):
        if n < 1:
            raise ValueError(f"sizes must be positive, got {n}")
        dataset = make_dataset(n)
        workload = make_workload(dataset)
        evaluation = evaluate_builder(
            builder, dataset, workload, epsilon, n_trials=n_trials, seed=seed
        )
        result.add(n, evaluation.mean_relative())
    return result


def predicted_ug_epsilon_slope() -> float:
    """The model's prediction for UG's log-log slope in epsilon.

    At the guideline size ``m ~ sqrt(N eps)``, both error terms scale as
    ``1 / m ~ (N eps)^(-1/2)`` relative to the data mass, so mean relative
    error should fall with slope about ``-1/2`` in epsilon.
    """
    return -0.5


def predicted_ug_size_slope() -> float:
    """The model's prediction for UG's log-log slope in N (also ``-1/2``)."""
    return -0.5
