"""Dataset non-uniformity measurement and the constant ``c0``.

Guideline 1 hides a dataset-dependent constant: the non-uniformity error
of a border cell is "some portion" ``1 / c0`` of the cell's density, and
``c = sqrt(2) * c0``.  The paper fixes ``c = 10`` empirically; this module
makes the dependence measurable:

* :func:`nonuniformity_coefficient` — estimate ``c0`` directly from data
  by measuring the average uniformity-assumption error of random partial
  cells against the cell densities, at a given grid size;
* :func:`estimate_c` — translate that into a dataset-specific Guideline 1
  constant ``c = sqrt(2) * c0`` (clamped to a sane range);
* :func:`uniformity_profile` — summary statistics (per-cell density CV,
  empty fraction, entropy ratio) used to characterise datasets the way
  Figure 1's discussion does.

For a perfectly uniform dataset the measured ``c0`` diverges (no
non-uniformity error at all), recovering the paper's "extreme c" limit
where a 1 x 1 grid is optimal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Rect
from repro.core.grid import GridLayout
from repro.privacy.mechanisms import ensure_rng

__all__ = [
    "nonuniformity_coefficient",
    "estimate_c",
    "UniformityProfile",
    "uniformity_profile",
]


def nonuniformity_coefficient(
    dataset: GeoDataset,
    grid_size: int,
    rng: np.random.Generator | int | None,
    samples_per_cell: int = 4,
    max_cells: int = 400,
) -> float:
    """Estimate ``c0``: cell density divided by mean uniformity error.

    For sampled occupied cells, asks random sub-rectangles of each cell
    and compares the uniformity-assumption estimate with the exact count.
    Returns ``density / mean_error`` averaged over cells — large values
    mean locally uniform data (small non-uniformity error per point).
    Returns ``inf`` when no error is observed (perfectly uniform).
    """
    if samples_per_cell < 1:
        raise ValueError("samples_per_cell must be >= 1")
    rng = ensure_rng(rng)
    layout = GridLayout(dataset.domain, grid_size)
    histogram = layout.histogram(dataset.points)
    occupied = np.argwhere(histogram > 0)
    if occupied.shape[0] == 0:
        return math.inf
    if occupied.shape[0] > max_cells:
        chosen = rng.choice(occupied.shape[0], size=max_cells, replace=False)
        occupied = occupied[chosen]

    total_density = 0.0
    total_error = 0.0
    for i, j in occupied:
        cell = layout.cell_rect(int(i), int(j))
        density = float(histogram[i, j])
        for _ in range(samples_per_cell):
            # A random sub-rectangle anchored inside the cell.
            fx = sorted(rng.uniform(0.0, 1.0, size=2))
            fy = sorted(rng.uniform(0.0, 1.0, size=2))
            sub = Rect(
                cell.x_lo + fx[0] * cell.width,
                cell.y_lo + fy[0] * cell.height,
                cell.x_lo + fx[1] * cell.width,
                cell.y_lo + fy[1] * cell.height,
            )
            uniform_estimate = density * cell.overlap_fraction(sub)
            exact = dataset.count_in(sub)
            total_error += abs(uniform_estimate - exact)
            total_density += density
    if total_error == 0.0:
        return math.inf
    return total_density / total_error


def estimate_c(
    dataset: GeoDataset,
    rng: np.random.Generator | int | None,
    grid_size: int | None = None,
    c_min: float = 2.0,
    c_max: float = 50.0,
) -> float:
    """A dataset-specific Guideline 1 constant ``c = sqrt(2) * c0``.

    ``grid_size`` defaults to a moderate probe resolution (the estimate is
    fairly stable across sizes).  The result is clamped to
    ``[c_min, c_max]``: the paper notes very uniform datasets want large
    ``c`` and very skewed ones small ``c``, but extreme values only arise
    from estimation noise.
    """
    rng = ensure_rng(rng)
    if grid_size is None:
        grid_size = max(8, min(64, round(math.sqrt(dataset.size) / 4)))
    c0 = nonuniformity_coefficient(dataset, grid_size, rng)
    if math.isinf(c0):
        return c_max
    return float(min(c_max, max(c_min, math.sqrt(2.0) * c0)))


@dataclass(frozen=True)
class UniformityProfile:
    """Summary statistics of a dataset's spatial density."""

    grid_size: int
    empty_fraction: float
    density_cv: float  # coefficient of variation over occupied cells
    entropy_ratio: float  # cell-occupancy entropy / log(n_cells), in [0, 1]

    def is_highly_uniform(self) -> bool:
        """Heuristic flag matching the paper's description of *road*."""
        return self.density_cv < 1.0 and self.empty_fraction < 0.6


def uniformity_profile(dataset: GeoDataset, grid_size: int = 64) -> UniformityProfile:
    """Characterise how uniform a dataset's density is at a grid scale."""
    layout = GridLayout(dataset.domain, grid_size)
    histogram = layout.histogram(dataset.points).reshape(-1)
    total = histogram.sum()
    empty_fraction = float(np.mean(histogram == 0))
    occupied = histogram[histogram > 0]
    if occupied.size == 0 or total == 0:
        return UniformityProfile(grid_size, 1.0, 0.0, 0.0)
    density_cv = float(occupied.std() / occupied.mean())
    probabilities = histogram[histogram > 0] / total
    entropy = float(-(probabilities * np.log(probabilities)).sum())
    entropy_ratio = entropy / math.log(histogram.size)
    return UniformityProfile(
        grid_size=grid_size,
        empty_fraction=empty_fraction,
        density_cv=density_cv,
        entropy_ratio=float(min(1.0, entropy_ratio)),
    )
