"""Error metrics and summary statistics (Section V-A of the paper).

The paper's primary metric is **relative error** with a floor on the
denominator::

    RE(r) = |Q(r) - A(r)| / max(A(r), rho)       rho = 0.001 * |D|

where ``A`` is the true answer and ``Q`` the synopsis estimate; the floor
avoids division by zero on empty queries.  **Absolute error**
``|Q(r) - A(r)|`` is used in the final comparison (Figure 6).

Each experiment reports, per configuration, the *candlestick* profile of
the pooled errors: 25th percentile, median, 75th percentile, 95th
percentile, and the arithmetic mean (the paper pays most attention to the
mean).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "relative_error_floor",
    "relative_errors",
    "absolute_errors",
    "ErrorProfile",
]

#: The paper's denominator-floor coefficient: rho = 0.001 * |D|.
RHO_FRACTION = 0.001


def relative_error_floor(n_points: int) -> float:
    """The denominator floor ``rho = 0.001 * |D|`` for a dataset of size N."""
    if n_points < 0:
        raise ValueError(f"n_points must be non-negative, got {n_points}")
    return RHO_FRACTION * n_points


def absolute_errors(estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """Element-wise absolute error ``|Q(r) - A(r)|``."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ValueError(
            f"shape mismatch: estimates {estimates.shape} vs truths {truths.shape}"
        )
    return np.abs(estimates - truths)


def relative_errors(
    estimates: np.ndarray, truths: np.ndarray, n_points: int
) -> np.ndarray:
    """Element-wise relative error with the paper's denominator floor."""
    errors = absolute_errors(estimates, truths)
    floor = relative_error_floor(n_points)
    if floor <= 0:
        raise ValueError("relative error undefined for an empty dataset")
    denominators = np.maximum(np.asarray(truths, dtype=float), floor)
    return errors / denominators


@dataclass(frozen=True)
class ErrorProfile:
    """Candlestick summary of an error sample.

    Mirrors the five pieces of information in the paper's candlestick
    plots: 25th percentile, median, 75th percentile, 95th percentile, and
    the arithmetic mean.
    """

    p25: float
    median: float
    p75: float
    p95: float
    mean: float
    count: int

    @classmethod
    def from_errors(cls, errors: np.ndarray) -> "ErrorProfile":
        errors = np.asarray(errors, dtype=float)
        if errors.size == 0:
            raise ValueError("cannot summarise an empty error sample")
        p25, median, p75, p95 = np.percentile(errors, [25.0, 50.0, 75.0, 95.0])
        return cls(
            p25=float(p25),
            median=float(median),
            p75=float(p75),
            p95=float(p95),
            mean=float(errors.mean()),
            count=int(errors.size),
        )

    def as_row(self) -> tuple[float, float, float, float, float]:
        """(p25, median, p75, p95, mean) — the candlestick's five values."""
        return (self.p25, self.median, self.p75, self.p95, self.mean)

    def __str__(self) -> str:
        return (
            f"p25={self.p25:.4g} med={self.median:.4g} p75={self.p75:.4g} "
            f"p95={self.p95:.4g} mean={self.mean:.4g} (n={self.count})"
        )
