"""Query workloads and error metrics (Section V-A methodology)."""

from repro.queries.engine import (
    AdaptiveGridEngine,
    BatchQueryEngine,
    FallbackEngine,
    FlatAdaptiveGridEngine,
    FlatTreeEngine,
    make_engine,
    rects_to_boxes,
    register_engine,
    scalar_answer_batch,
)
from repro.queries.metrics import (
    ErrorProfile,
    absolute_errors,
    relative_error_floor,
    relative_errors,
)
from repro.queries.workload import (
    QuerySize,
    QueryWorkload,
    SizedQuerySet,
    paper_query_sizes,
)

__all__ = [
    "AdaptiveGridEngine",
    "BatchQueryEngine",
    "ErrorProfile",
    "FallbackEngine",
    "FlatAdaptiveGridEngine",
    "FlatTreeEngine",
    "make_engine",
    "rects_to_boxes",
    "register_engine",
    "scalar_answer_batch",
    "QuerySize",
    "QueryWorkload",
    "SizedQuerySet",
    "absolute_errors",
    "paper_query_sizes",
    "relative_error_floor",
    "relative_errors",
]
