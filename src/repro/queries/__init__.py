"""Query workloads and error metrics (Section V-A methodology)."""

from repro.queries.engine import BatchQueryEngine
from repro.queries.metrics import (
    ErrorProfile,
    absolute_errors,
    relative_error_floor,
    relative_errors,
)
from repro.queries.workload import (
    QuerySize,
    QueryWorkload,
    SizedQuerySet,
    paper_query_sizes,
)

__all__ = [
    "BatchQueryEngine",
    "ErrorProfile",
    "QuerySize",
    "QueryWorkload",
    "SizedQuerySet",
    "absolute_errors",
    "paper_query_sizes",
    "relative_error_floor",
    "relative_errors",
]
