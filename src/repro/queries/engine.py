"""Vectorised batch query answering for grid synopses.

Experiments ask thousands of rectangle queries of the same released grid;
answering them one at a time costs a Python-level loop per query.  This
module evaluates a whole batch against a
:class:`~repro.core.grid.GridLayout` with numpy throughout:

The uniformity estimate for rectangle ``r`` is ``fx(r) @ C @ fy(r)`` —
a bilinear form in per-axis coverage vectors.  For a batch, we build the
coverage vectors through *prefix sums*: let ``S`` be the 2-D prefix-sum
matrix of ``C``, extended continuously by linear interpolation inside
cells.  Then the estimate of ``[x0, x1] x [y0, y1]`` is exactly the
four-corner inclusion-exclusion::

    est = S(x1, y1) - S(x0, y1) - S(x1, y0) + S(x0, y0)

where ``S(x, y)`` bilinearly interpolates the prefix sums at fractional
cell coordinates.  This is algebraically identical to the per-query
bilinear form (both are integrals of the piecewise-constant density), but
evaluates a whole batch with eight vectorised gathers.

:class:`BatchQueryEngine` wraps this; ``UniformGridSynopsis.answer_many``
delegates to it automatically for large batches.

For adaptive grids, whose released state is a different sub-grid per
first-level cell, :class:`FlatAdaptiveGridEngine` holds *one*
concatenated prefix-sum buffer (CSR layout, mirroring the synopsis's
flat leaf vector) and answers a batch by expanding it into
(query, touched-cell) pairs evaluated in a single vectorised pass — no
Python loop over cells or queries.  :class:`AdaptiveGridEngine`, the
historical one-``BatchQueryEngine``-per-cell composite, is retained as
the reference implementation for equivalence tests and benchmarks.

For spatial trees (quadtree, KD-standard, KD-hybrid), whose released
state is the flat level-order :class:`~repro.baselines.tree.TreeArrays`,
:class:`FlatTreeEngine` answers a whole batch by level-synchronous
frontier descent: every live (query, node) pair is classified as
contained / disjoint / partial in one vectorised pass per tree level,
contained nodes contribute their counts through one ``bincount`` gather,
partial leaves resolve the uniformity estimate in the same fused pass,
and only partial internal pairs expand to the next level's frontier.

:func:`make_engine` picks the right engine for any supported synopsis
from a **registry**: synopsis modules call :func:`register_engine` at
import time to map their type to an engine factory, so adding a synopsis
type never edits this module.  That is how the serving layer
(:mod:`repro.service`) reuses one prepared engine across many incoming
query batches for every synopsis family.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.geometry import Rect, rects_to_boxes
from repro.core.grid import GridLayout

__all__ = [
    "BatchQueryEngine",
    "FlatAdaptiveGridEngine",
    "FlatTreeEngine",
    "AdaptiveGridEngine",
    "WaveletRangeEngine",
    "NDPrefixSumEngine",
    "FallbackEngine",
    "compute_engine_slabs",
    "fallback_engine_count",
    "has_sealed_engine",
    "make_engine",
    "register_engine",
    "register_engine_sealer",
    "rects_to_boxes",  # canonical home: repro.core.geometry
    "scalar_answer_batch",
]


def scalar_answer_batch(synopsis, rects: "list[Rect] | np.ndarray") -> np.ndarray:
    """Answer a batch through a synopsis's scalar ``answer`` loop.

    The shared fallback path: same contract as the vectorised engines.
    An empty batch returns an empty ``(0,)`` vector without touching the
    synopsis; inverted rows (``x_hi < x_lo`` or ``y_hi < y_lo``, which
    includes NaN bounds) answer 0 instead of raising from the
    :class:`Rect` constructor; degenerate zero-area rows are answered
    exactly like the equivalent edge/point :class:`Rect` query.  Used by
    :class:`FallbackEngine` and by ``AdaptiveGridSynopsis.answer_many``'s
    small-batch branch.
    """
    boxes = rects_to_boxes(rects)
    out = np.zeros(boxes.shape[0])
    if boxes.shape[0] == 0:
        return out
    valid = (boxes[:, 2] >= boxes[:, 0]) & (boxes[:, 3] >= boxes[:, 1])
    for idx in np.flatnonzero(valid):
        out[idx] = synopsis.answer(Rect(*boxes[idx]))
    return out


class BatchQueryEngine:
    """Answers batches of rectangle queries over fixed grid counts.

    Build once per released grid (O(cells) preprocessing), then call
    :meth:`answer_batch` any number of times (O(1) per query).
    """

    def __init__(self, layout: GridLayout, counts: np.ndarray):
        counts = np.asarray(counts, dtype=float)
        if counts.shape != layout.shape:
            raise ValueError(
                f"counts shape {counts.shape} does not match grid {layout.shape}"
            )
        self._layout = layout
        # Prefix sums with a zero border: P[i, j] = sum(counts[:i, :j]).
        prefix = np.zeros((layout.mx + 1, layout.my + 1))
        np.cumsum(np.cumsum(counts, axis=0), axis=1, out=prefix[1:, 1:])
        self._prefix = prefix

    @staticmethod
    def precompute(layout: GridLayout, counts: np.ndarray) -> dict[str, np.ndarray]:
        """Derived buffers to seal into a v2 archive at release time.

        Runs the exact constructor preprocessing, so an engine restored
        via :meth:`from_slabs` is bit-identical to one built in-process.
        """
        return {"prefix": BatchQueryEngine(layout, counts)._prefix}

    @classmethod
    def from_slabs(
        cls, layout: GridLayout, slabs: dict[str, np.ndarray]
    ) -> "BatchQueryEngine":
        """Restore an engine from sealed slabs without rebuilding.

        The slabs may be read-only mmap views; the engine never writes
        into its prefix buffer after construction, so restored engines
        share the archive's physical pages across forked workers.
        """
        prefix = np.asarray(slabs["prefix"], dtype=float)
        if prefix.shape != (layout.mx + 1, layout.my + 1):
            raise ValueError(
                f"sealed prefix shape {prefix.shape} does not match grid "
                f"{layout.shape}"
            )
        engine = cls.__new__(cls)
        engine._layout = layout
        engine._prefix = prefix
        return engine

    @property
    def layout(self) -> GridLayout:
        return self._layout

    def _continuous_prefix(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Bilinear interpolation of the prefix sums at cell coordinates.

        ``xs`` / ``ys`` are fractional positions in cell units (0 .. m).
        """
        mx, my = self._layout.shape
        xs = np.clip(xs, 0.0, mx)
        ys = np.clip(ys, 0.0, my)
        x0 = np.minimum(xs.astype(np.int64), mx - 1)
        y0 = np.minimum(ys.astype(np.int64), my - 1)
        tx = xs - x0
        ty = ys - y0
        p = self._prefix
        p00 = p[x0, y0]
        p10 = p[x0 + 1, y0]
        p01 = p[x0, y0 + 1]
        p11 = p[x0 + 1, y0 + 1]
        return (
            (1 - tx) * (1 - ty) * p00
            + tx * (1 - ty) * p10
            + (1 - tx) * ty * p01
            + tx * ty * p11
        )

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch.

        Accepts a list of :class:`Rect` or an ``(n, 4)`` array of
        ``(x_lo, y_lo, x_hi, y_hi)`` rows.  Rectangles are clipped to the
        domain.
        """
        boxes = rects_to_boxes(rects)
        if boxes.size == 0:
            return np.empty(0)
        bounds = self._layout.domain.bounds
        mx, my = self._layout.shape
        # Convert to cell units.
        x_lo = (boxes[:, 0] - bounds.x_lo) / self._layout.cell_width
        y_lo = (boxes[:, 1] - bounds.y_lo) / self._layout.cell_height
        x_hi = (boxes[:, 2] - bounds.x_lo) / self._layout.cell_width
        y_hi = (boxes[:, 3] - bounds.y_lo) / self._layout.cell_height
        x_lo = np.clip(x_lo, 0.0, mx)
        x_hi = np.clip(x_hi, 0.0, mx)
        y_lo = np.clip(y_lo, 0.0, my)
        y_hi = np.clip(y_hi, 0.0, my)
        # Degenerate, inverted, and NaN rows all answer 0, matching
        # scalar_answer_batch.  NaN survives np.clip and would poison the
        # int64 cast inside the interpolation (undefined conversion, then
        # an out-of-bounds gather), so zero those coordinates out before
        # evaluating; the mask overwrites the result afterwards.
        empty = ~((x_hi > x_lo) & (y_hi > y_lo))
        if empty.any():
            x_lo = np.where(empty, 0.0, x_lo)
            x_hi = np.where(empty, 0.0, x_hi)
            y_lo = np.where(empty, 0.0, y_lo)
            y_hi = np.where(empty, 0.0, y_hi)

        estimate = (
            self._continuous_prefix(x_hi, y_hi)
            - self._continuous_prefix(x_lo, y_hi)
            - self._continuous_prefix(x_hi, y_lo)
            + self._continuous_prefix(x_lo, y_lo)
        )
        estimate[empty] = 0.0
        return estimate


class FlatAdaptiveGridEngine:
    """Flat CSR batch engine for ``AdaptiveGridSynopsis`` releases.

    Preprocessing concatenates every first-level cell's zero-bordered
    ``(m2+1) x (m2+1)`` prefix-sum matrix into one flat buffer indexed by
    CSR offsets, alongside per-cell geometry vectors (origin and sub-cell
    extents) and a level-1 prefix sum over the released cell totals.  A
    batch is answered by:

    1. computing each query's touched first-level index ranges in one
       vectorised pass,
    2. answering the *fully covered* interior block of each query O(1)
       from the level-1 totals prefix (four corners on the ``(m1+1) x
       (m1+1)`` matrix) — valid because each cell's leaf sum equals its
       released total ``v'`` (constrained inference enforces ``sum(u')
       == v'``; without inference the total is defined as the leaf sum),
    3. expanding only the partial border ring into (query, cell) pairs
       with ``repeat`` / ``arange`` arithmetic (no Python loop, no
       ``np.argwhere``) — O(perimeter) pairs per query instead of
       O(area),
    4. converting every pair's clipped query to its cell's local cell
       units and evaluating the four-corner inclusion-exclusion — each
       corner a bilinear interpolation over four gathered prefix values
       — in one vectorised pass over all pairs, and
    5. summing pair estimates back per query with ``np.bincount``.

    Work scales with border cells *touched*, and the only per-batch
    Python-level cost is a fixed number of numpy calls.  Answers equal
    the scalar two-level path (and the per-cell
    :class:`AdaptiveGridEngine`) up to floating-point rounding: partial
    cells use the same uniformity estimator, and fully covered cells
    contribute ``v'`` exactly as ``AdaptiveGridSynopsis.answer`` does.
    """

    def __init__(self, synopsis, *, _slabs: dict[str, np.ndarray] | None = None):
        m1x, m1y = synopsis.first_level_size
        self._domain = synopsis.domain
        self._shape = (m1x, m1y)
        sizes = synopsis.cell_sizes.reshape(-1)
        slabs = self.precompute(synopsis) if _slabs is None else _slabs
        prefix = np.asarray(slabs["prefix"], dtype=float)
        prefix_offsets = np.asarray(slabs["prefix_offsets"], dtype=np.int64)
        totals_prefix = np.asarray(slabs["totals_prefix"], dtype=float)
        if prefix_offsets.shape != (sizes.size,):
            raise ValueError(
                f"sealed prefix offsets cover {prefix_offsets.shape[0]} "
                f"cells, synopsis has {sizes.size}"
            )
        expected = int(((sizes + 1) ** 2).sum())
        if prefix.shape != (expected,):
            raise ValueError(
                f"sealed CSR prefix holds {prefix.size} values, cell sizes "
                f"require {expected}"
            )
        if totals_prefix.shape != (m1x + 1, m1y + 1):
            raise ValueError(
                f"sealed totals prefix shape {totals_prefix.shape} does not "
                f"match first level ({m1x}, {m1y})"
            )

        # Per-cell geometry from the shared level-1 layout, so the local
        # conversions match the per-cell GridLayout expressions (the same
        # tables the builder bins with).  Cheap O(m1^2) — recomputed even
        # when restoring from sealed slabs.
        layout = synopsis.level1_layout
        x_edges, y_edges = layout.x_edges, layout.y_edges
        cell_x_lo, cell_y_lo, cell_w, cell_h = layout.flat_cell_geometry()

        self._sizes = sizes
        self._prefix = prefix
        self._prefix_offsets = prefix_offsets
        self._totals_prefix = totals_prefix
        self._x_edges = x_edges
        self._y_edges = y_edges
        self._cell_x_lo = cell_x_lo
        self._cell_y_lo = cell_y_lo
        self._sub_w = cell_w / sizes
        self._sub_h = cell_h / sizes

    @staticmethod
    def precompute(synopsis) -> dict[str, np.ndarray]:
        """Derived buffers to seal into a v2 archive at release time.

        The CSR prefix buffer and the level-1 totals prefix are the
        expensive O(total leaf cells) part of engine preparation; the
        per-cell geometry vectors are cheap and recomputed on restore.
        """
        m1x, m1y = synopsis.first_level_size
        sizes = synopsis.cell_sizes.reshape(-1)
        leaf_offsets = synopsis.leaf_offsets
        leaves = synopsis.leaf_counts

        # CSR prefix buffer: cell c owns the (sizes[c]+1)^2 block at
        # prefix_offsets[c], a row-major zero-bordered prefix-sum matrix.
        prefix_sizes = (sizes + 1) ** 2
        prefix_offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(prefix_sizes, out=prefix_offsets[1:])
        prefix = np.zeros(int(prefix_offsets[-1]))
        # Vectorised per distinct m2: gather all same-size cells into one
        # (k, m2, m2) tensor, cumsum both axes, scatter into the buffer.
        for size in np.unique(sizes):
            cells = np.flatnonzero(sizes == size)
            src = leaf_offsets[cells][:, None] + np.arange(size * size)[None, :]
            blocks = leaves[src].reshape(-1, size, size)
            cums = blocks.cumsum(axis=1).cumsum(axis=2)
            inner = (
                np.arange(1, size + 1)[:, None] * (size + 1)
                + np.arange(1, size + 1)[None, :]
            ).reshape(-1)
            dst = prefix_offsets[cells][:, None] + inner[None, :]
            prefix[dst] = cums.reshape(cells.size, -1)

        # Level-1 prefix over released cell totals: fully covered interior
        # blocks are answered from this in O(1) per query.
        totals_prefix = np.zeros((m1x + 1, m1y + 1))
        np.cumsum(
            np.cumsum(synopsis.cell_totals, axis=0), axis=1,
            out=totals_prefix[1:, 1:],
        )
        return {
            "prefix": prefix,
            "prefix_offsets": prefix_offsets[:-1],
            "totals_prefix": totals_prefix,
        }

    @classmethod
    def from_slabs(
        cls, synopsis, slabs: dict[str, np.ndarray]
    ) -> "FlatAdaptiveGridEngine":
        """Restore an engine from sealed slabs without rebuilding.

        The slabs may be read-only mmap views; ``answer_batch`` never
        writes into them, so restored engines share the archive's
        physical pages across forked workers.
        """
        return cls(synopsis, _slabs=slabs)

    @property
    def n_cells(self) -> int:
        """Number of first-level cells covered by the CSR buffer."""
        return int(self._sizes.size)

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the prepared buffers."""
        arrays = (
            self._sizes, self._prefix, self._prefix_offsets,
            self._totals_prefix, self._x_edges, self._y_edges,
            self._cell_x_lo, self._cell_y_lo, self._sub_w, self._sub_h,
        )
        return sum(a.nbytes for a in arrays)

    def _corner(
        self,
        row: np.ndarray,
        stride: np.ndarray,
        tx: np.ndarray,
        y0: np.ndarray,
        ty: np.ndarray,
    ) -> np.ndarray:
        """Bilinearly interpolated prefix value per (query, cell) pair.

        ``row`` is the flat index of prefix row ``x0`` in the pair's cell
        block (``prefix_offsets[cell] + x0 * stride``); ``tx`` / ``ty``
        the fractional parts of the already-decomposed local coordinates.
        """
        p = self._prefix
        base = row + y0
        p00 = p[base]
        p10 = p[base + stride]
        p01 = p[base + 1]
        p11 = p[base + stride + 1]
        return (
            (1 - tx) * (1 - ty) * p00
            + tx * (1 - ty) * p10
            + (1 - tx) * ty * p01
            + tx * ty * p11
        )

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch."""
        boxes = rects_to_boxes(rects)
        n = boxes.shape[0]
        if boxes.size == 0:
            return np.empty(0)
        # Pre-clip to the domain once so every pair sees the same
        # effective query the scalar path evaluates.
        bounds = self._domain.bounds
        clipped = np.empty_like(boxes)
        clipped[:, 0] = np.clip(boxes[:, 0], bounds.x_lo, bounds.x_hi)
        clipped[:, 1] = np.clip(boxes[:, 1], bounds.y_lo, bounds.y_hi)
        clipped[:, 2] = np.clip(boxes[:, 2], bounds.x_lo, bounds.x_hi)
        clipped[:, 3] = np.clip(boxes[:, 3], bounds.y_lo, bounds.y_hi)

        # First-level index ranges per query.  Edge-exact bounds may
        # over-include a neighbouring cell, which then contributes a
        # zero-width (zero) estimate — harmless.  Inverted rows answer 0
        # and are excluded from pair expansion entirely.
        mx, my = self._shape
        cell_w = self._domain.width / mx
        cell_h = self._domain.height / my
        valid = (clipped[:, 2] >= clipped[:, 0]) & (clipped[:, 3] >= clipped[:, 1])
        q = np.flatnonzero(valid)
        if q.size == 0:
            return np.zeros(n)
        i_lo = np.clip(((clipped[q, 0] - bounds.x_lo) / cell_w).astype(np.int64), 0, mx - 1)
        i_hi = np.clip(((clipped[q, 2] - bounds.x_lo) / cell_w).astype(np.int64), 0, mx - 1)
        j_lo = np.clip(((clipped[q, 1] - bounds.y_lo) / cell_h).astype(np.int64), 0, my - 1)
        j_hi = np.clip(((clipped[q, 3] - bounds.y_lo) / cell_h).astype(np.int64), 0, my - 1)

        # Fully covered interior block per query: cell column i is fully
        # covered iff the query spans [x_edges[i], x_edges[i + 1]] (rows
        # likewise), so the first/last full indices tighten the touched
        # range by at most one on each side.  The block is answered O(1)
        # from the level-1 totals prefix; when an axis has no full cells
        # the block is marked empty past the touched range so the border
        # bands below degrade to the whole dense block.
        fi_lo = i_lo + (clipped[q, 0] > self._x_edges[i_lo])
        fi_hi = i_hi - (clipped[q, 2] < self._x_edges[i_hi + 1])
        fj_lo = j_lo + (clipped[q, 1] > self._y_edges[j_lo])
        fj_hi = j_hi - (clipped[q, 3] < self._y_edges[j_hi + 1])
        no_full_x = fi_lo > fi_hi
        no_full_y = fj_lo > fj_hi
        fi_lo = np.where(no_full_x, i_hi + 1, fi_lo)
        fi_hi = np.where(no_full_x, i_hi, fi_hi)
        fj_lo = np.where(no_full_y, j_hi + 1, fj_lo)
        fj_hi = np.where(no_full_y, j_hi, fj_hi)

        out = np.zeros(n)
        interior = ~(no_full_x | no_full_y)
        if interior.any():
            tp = self._totals_prefix
            qi, a_lo, a_hi = q[interior], fi_lo[interior], fi_hi[interior]
            b_lo, b_hi = fj_lo[interior], fj_hi[interior]
            out[qi] = (
                tp[a_hi + 1, b_hi + 1]
                - tp[a_lo, b_hi + 1]
                - tp[a_hi + 1, b_lo]
                + tp[a_lo, b_lo]
            )

        # The partial border ring, as four disjoint rectangular bands
        # (left / right columns full-height, bottom / top rows between
        # them), expanded to (query, cell) pairs in row-major order via
        # repeat / arange arithmetic.
        band_q = np.concatenate([q, q, q, q])
        band_i_lo = np.concatenate([i_lo, fi_hi + 1, fi_lo, fi_lo])
        band_i_hi = np.concatenate([fi_lo - 1, i_hi, fi_hi, fi_hi])
        band_j_lo = np.concatenate([j_lo, j_lo, j_lo, fj_hi + 1])
        band_j_hi = np.concatenate([j_hi, j_hi, fj_lo - 1, j_hi])
        nx = np.maximum(0, band_i_hi - band_i_lo + 1)
        ny = np.maximum(0, band_j_hi - band_j_lo + 1)
        k = nx * ny
        occupied = k > 0
        band_q = band_q[occupied]
        band_i_lo, band_j_lo = band_i_lo[occupied], band_j_lo[occupied]
        ny, k = ny[occupied], k[occupied]
        total_pairs = int(k.sum())
        if total_pairs == 0:
            return out
        pair_q = np.repeat(band_q, k)
        starts = np.cumsum(k) - k
        local = np.arange(total_pairs, dtype=np.int64) - np.repeat(starts, k)
        ny_rep = np.repeat(ny, k)
        di = local // ny_rep
        dj = local - di * ny_rep
        cell = (np.repeat(band_i_lo, k) + di) * my + (np.repeat(band_j_lo, k) + dj)

        # Local cell-unit coordinates per pair — the same expressions the
        # per-cell BatchQueryEngine evaluates, with gathered geometry.
        sizes = self._sizes[cell]
        size_f = sizes.astype(float)
        x_lo_u = (clipped[pair_q, 0] - self._cell_x_lo[cell]) / self._sub_w[cell]
        y_lo_u = (clipped[pair_q, 1] - self._cell_y_lo[cell]) / self._sub_h[cell]
        x_hi_u = (clipped[pair_q, 2] - self._cell_x_lo[cell]) / self._sub_w[cell]
        y_hi_u = (clipped[pair_q, 3] - self._cell_y_lo[cell]) / self._sub_h[cell]
        x_lo_u = np.clip(x_lo_u, 0.0, size_f)
        x_hi_u = np.clip(x_hi_u, 0.0, size_f)
        y_lo_u = np.clip(y_lo_u, 0.0, size_f)
        y_hi_u = np.clip(y_hi_u, 0.0, size_f)

        # Zero-width pairs (edge-exact over-inclusion, degenerate clipped
        # queries) contribute nothing — drop them before paying for the
        # 16-gather corner evaluation.
        keep = (x_hi_u > x_lo_u) & (y_hi_u > y_lo_u)
        if not keep.all():
            pair_q, cell, sizes = pair_q[keep], cell[keep], sizes[keep]
            x_lo_u, x_hi_u = x_lo_u[keep], x_hi_u[keep]
            y_lo_u, y_hi_u = y_lo_u[keep], y_hi_u[keep]
            if pair_q.size == 0:
                return out

        # Decompose each local coordinate into integer cell + fraction
        # once (each is reused by two corners of the inclusion-exclusion).
        stride = sizes + 1
        limit = sizes - 1
        x0_lo = np.minimum(x_lo_u.astype(np.int64), limit)
        x0_hi = np.minimum(x_hi_u.astype(np.int64), limit)
        y0_lo = np.minimum(y_lo_u.astype(np.int64), limit)
        y0_hi = np.minimum(y_hi_u.astype(np.int64), limit)
        tx_lo = x_lo_u - x0_lo
        tx_hi = x_hi_u - x0_hi
        ty_lo = y_lo_u - y0_lo
        ty_hi = y_hi_u - y0_hi
        base = self._prefix_offsets[cell]
        row_lo = base + x0_lo * stride
        row_hi = base + x0_hi * stride
        estimate = (
            self._corner(row_hi, stride, tx_hi, y0_hi, ty_hi)
            - self._corner(row_lo, stride, tx_lo, y0_hi, ty_hi)
            - self._corner(row_hi, stride, tx_hi, y0_lo, ty_lo)
            + self._corner(row_lo, stride, tx_lo, y0_lo, ty_lo)
        )
        out += np.bincount(pair_q, weights=estimate, minlength=n)
        return out


class AdaptiveGridEngine:
    """Per-cell composite engine for ``AdaptiveGridSynopsis`` (reference).

    One :class:`BatchQueryEngine` is prepared per first-level cell; a batch
    is answered by summing each cell engine's (domain-clipped) estimates.
    This was the production AG engine before the flat CSR kernel
    (:class:`FlatAdaptiveGridEngine`) replaced it; it is retained because
    its per-cell structure mirrors the scalar definition directly, which
    makes it the natural second opinion in equivalence tests and the
    baseline in ``benchmarks/bench_flat_kernel.py``.

    Preprocessing is O(total leaf cells); each batch then costs one
    vectorised pass per *touched* first-level cell (dispatch via a 2-D
    difference array), which is a Python-level loop the flat engine
    eliminates.
    """

    def __init__(self, synopsis):
        m1x, m1y = synopsis.first_level_size
        self._domain = synopsis.domain
        self._shape = (m1x, m1y)
        self._engines = [
            BatchQueryEngine(synopsis.cell_layout(i, j), synopsis.cell_counts(i, j))
            for i in range(m1x)
            for j in range(m1y)
        ]

    @property
    def n_cell_engines(self) -> int:
        return len(self._engines)

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch.

        Each query is dispatched only to the first-level cells it
        overlaps: the per-query cell-index ranges are computed in one
        vectorised pass, and each overlapped cell engine evaluates just
        its own sub-batch — total work scales with cells *touched*, not
        with ``m1^2 * n``.
        """
        boxes = rects_to_boxes(rects)
        if boxes.size == 0:
            return np.empty(0)
        # Pre-clip to the domain once so every cell engine sees the same
        # effective query the scalar path evaluates.
        bounds = self._domain.bounds
        clipped = np.empty_like(boxes)
        clipped[:, 0] = np.clip(boxes[:, 0], bounds.x_lo, bounds.x_hi)
        clipped[:, 1] = np.clip(boxes[:, 1], bounds.y_lo, bounds.y_hi)
        clipped[:, 2] = np.clip(boxes[:, 2], bounds.x_lo, bounds.x_hi)
        clipped[:, 3] = np.clip(boxes[:, 3], bounds.y_lo, bounds.y_hi)

        # First-level index ranges per query.  Edge-exact bounds may
        # over-include a neighbouring cell, which then contributes a
        # zero-width (zero) estimate — harmless.
        mx, my = self._shape
        cell_w = self._domain.width / mx
        cell_h = self._domain.height / my
        i_lo = np.clip(((clipped[:, 0] - bounds.x_lo) / cell_w).astype(np.int64), 0, mx - 1)
        i_hi = np.clip(((clipped[:, 2] - bounds.x_lo) / cell_w).astype(np.int64), 0, mx - 1)
        j_lo = np.clip(((clipped[:, 1] - bounds.y_lo) / cell_h).astype(np.int64), 0, my - 1)
        j_hi = np.clip(((clipped[:, 3] - bounds.y_lo) / cell_h).astype(np.int64), 0, my - 1)

        # Inverted rows (x_hi < x_lo or y_hi < y_lo) answer 0 but must be
        # excluded from the dispatch bookkeeping: their reversed index
        # ranges would write negative bands into the difference array and
        # cancel *other* queries' contributions.
        valid = (clipped[:, 2] >= clipped[:, 0]) & (clipped[:, 3] >= clipped[:, 1])

        # 2-D difference array -> how many queries touch each cell; only
        # touched cells get an engine pass.
        touched = np.zeros((mx + 1, my + 1), dtype=np.int64)
        np.add.at(touched, (i_lo[valid], j_lo[valid]), 1)
        np.add.at(touched, (i_hi[valid] + 1, j_lo[valid]), -1)
        np.add.at(touched, (i_lo[valid], j_hi[valid] + 1), -1)
        np.add.at(touched, (i_hi[valid] + 1, j_hi[valid] + 1), 1)
        counts = touched.cumsum(axis=0).cumsum(axis=1)[:mx, :my]

        total = np.zeros(boxes.shape[0])
        for i, j in np.argwhere(counts > 0):
            mask = valid & (i_lo <= i) & (i <= i_hi) & (j_lo <= j) & (j <= j_hi)
            total[mask] += self._engines[i * my + j].answer_batch(clipped[mask])
        return total


class FlatTreeEngine:
    """Flat level-order batch engine for ``TreeSynopsis`` releases.

    Preprocessing copies the released :class:`~repro.baselines.tree.
    TreeArrays` state into per-coordinate node vectors (rect bounds,
    counts, CSR child offsets, leaf areas).  A batch is answered by
    level-synchronous frontier descent: the frontier starts as one
    (query, root) pair per valid query, and each round classifies every
    frontier pair in one vectorised pass —

    * **disjoint** pairs (node rect and closed query share no point)
      are dropped;
    * **contained** pairs (query covers the node rect) contribute the
      node's whole count;
    * **partial leaves** contribute ``count * overlap_fraction`` — the
      same uniformity estimate the scalar descent computes, with
      zero-area leaves counted fully when touched;
    * **partial internal** pairs expand to their children via
      ``repeat``/``arange`` arithmetic on the CSR offsets.

    Contributions accumulate per query with ``np.bincount``; the loop
    runs at most ``height + 1`` times regardless of batch size.  Answers
    equal ``TreeSynopsis.answer`` up to floating-point rounding: the
    per-pair classification and estimates evaluate the same expressions,
    but contributions are summed level by level instead of in the scalar
    path's depth-first order, so the additions associate differently.
    """

    def __init__(self, synopsis, *, _slabs: dict[str, np.ndarray] | None = None):
        arrays = synopsis.arrays
        slabs = self.precompute(synopsis) if _slabs is None else _slabs
        counts = np.asarray(arrays.counts, dtype=float)
        n = counts.size
        x_lo = np.asarray(slabs["x_lo"], dtype=float)
        y_lo = np.asarray(slabs["y_lo"], dtype=float)
        x_hi = np.asarray(slabs["x_hi"], dtype=float)
        y_hi = np.asarray(slabs["y_hi"], dtype=float)
        areas = np.asarray(slabs["areas"], dtype=float)
        fan_out = np.asarray(slabs["fan_out"], dtype=np.int64)
        is_leaf = np.asarray(slabs["is_leaf"], dtype=bool)
        for name, slab in (
            ("x_lo", x_lo), ("y_lo", y_lo), ("x_hi", x_hi), ("y_hi", y_hi),
            ("areas", areas), ("fan_out", fan_out), ("is_leaf", is_leaf),
        ):
            if slab.shape != (n,):
                raise ValueError(
                    f"sealed tree slab {name!r} has shape {slab.shape}, "
                    f"synopsis has {n} nodes"
                )
        self._x_lo = x_lo
        self._y_lo = y_lo
        self._x_hi = x_hi
        self._y_hi = y_hi
        self._areas = areas
        self._counts = counts
        self._child_offsets = np.asarray(arrays.child_offsets, dtype=np.int64)
        self._fan_out = fan_out
        self._is_leaf = is_leaf
        self._n_levels = arrays.n_levels

    @staticmethod
    def precompute(synopsis) -> dict[str, np.ndarray]:
        """Derived buffers to seal into a v2 archive at release time.

        The per-coordinate node vectors are strided copies out of the
        released ``rects`` matrix plus derived areas and CSR fan-outs;
        sealing them keeps each forked worker's private footprint at
        zero instead of one copy per process.  ``counts`` and
        ``child_offsets`` are the synopsis's own (already mapped)
        arrays and are referenced directly, not duplicated.
        """
        arrays = synopsis.arrays
        rects = np.asarray(arrays.rects, dtype=float)
        x_lo = np.ascontiguousarray(rects[:, 0])
        y_lo = np.ascontiguousarray(rects[:, 1])
        x_hi = np.ascontiguousarray(rects[:, 2])
        y_hi = np.ascontiguousarray(rects[:, 3])
        child_offsets = np.asarray(arrays.child_offsets, dtype=np.int64)
        fan_out = child_offsets[1:] - child_offsets[:-1]
        return {
            "x_lo": x_lo,
            "y_lo": y_lo,
            "x_hi": x_hi,
            "y_hi": y_hi,
            "areas": (x_hi - x_lo) * (y_hi - y_lo),
            "fan_out": fan_out,
            "is_leaf": fan_out == 0,
        }

    @classmethod
    def from_slabs(cls, synopsis, slabs: dict[str, np.ndarray]) -> "FlatTreeEngine":
        """Restore an engine from sealed slabs without rebuilding.

        The slabs may be read-only mmap views; the frontier descent only
        gathers from them, so restored engines share the archive's
        physical pages across forked workers.
        """
        return cls(synopsis, _slabs=slabs)

    @property
    def n_nodes(self) -> int:
        return int(self._counts.size)

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the prepared buffers."""
        arrays = (
            self._x_lo, self._y_lo, self._x_hi, self._y_hi, self._areas,
            self._counts, self._child_offsets, self._fan_out, self._is_leaf,
        )
        return sum(a.nbytes for a in arrays)

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch."""
        boxes = rects_to_boxes(rects)
        n = boxes.shape[0]
        if n == 0:
            return np.empty(0)
        out = np.zeros(n)
        # Inverted rows (including NaN bounds) answer 0, matching
        # scalar_answer_batch; they never enter the frontier.
        valid = (boxes[:, 2] >= boxes[:, 0]) & (boxes[:, 3] >= boxes[:, 1])
        frontier_q = np.flatnonzero(valid)
        frontier_v = np.zeros(frontier_q.size, dtype=np.int64)
        qx_lo = boxes[frontier_q, 0]
        qy_lo = boxes[frontier_q, 1]
        qx_hi = boxes[frontier_q, 2]
        qy_hi = boxes[frontier_q, 3]

        while frontier_q.size:
            nx_lo = self._x_lo[frontier_v]
            ny_lo = self._y_lo[frontier_v]
            nx_hi = self._x_hi[frontier_v]
            ny_hi = self._y_hi[frontier_v]
            # Closed-rect classification: the same comparisons as
            # Rect.intersects / Rect.contains_rect in the scalar descent.
            intersects = (
                (nx_lo <= qx_hi) & (qx_lo <= nx_hi)
                & (ny_lo <= qy_hi) & (qy_lo <= ny_hi)
            )
            contained = (
                (qx_lo <= nx_lo) & (nx_hi <= qx_hi)
                & (qy_lo <= ny_lo) & (ny_hi <= qy_hi)
            )
            leaf = self._is_leaf[frontier_v]
            partial_leaf = intersects & ~contained & leaf

            scores = np.zeros(frontier_q.size)
            scores[contained] = self._counts[frontier_v[contained]]
            if partial_leaf.any():
                pv = frontier_v[partial_leaf]
                # interval_overlap per axis, then the overlap fraction —
                # expression for expression what Rect.overlap_fraction
                # computes, with zero-area regions counted fully.
                dx = np.minimum(nx_hi[partial_leaf], qx_hi[partial_leaf]) - (
                    np.maximum(nx_lo[partial_leaf], qx_lo[partial_leaf])
                )
                dy = np.minimum(ny_hi[partial_leaf], qy_hi[partial_leaf]) - (
                    np.maximum(ny_lo[partial_leaf], qy_lo[partial_leaf])
                )
                overlap = np.maximum(0.0, dx) * np.maximum(0.0, dy)
                areas = self._areas[pv]
                degenerate = areas == 0.0
                fraction = overlap / np.where(degenerate, 1.0, areas)
                fraction[degenerate] = 1.0
                scores[partial_leaf] = self._counts[pv] * fraction
            contributes = contained | partial_leaf
            if contributes.any():
                out += np.bincount(
                    frontier_q[contributes], weights=scores[contributes],
                    minlength=n,
                )

            # Expand partial internal pairs to (query, child) pairs.
            expand = intersects & ~contained & ~leaf
            if not expand.any():
                break
            parents = frontier_v[expand]
            fan_out = self._fan_out[parents]
            total = int(fan_out.sum())
            starts = np.cumsum(fan_out) - fan_out
            local = np.arange(total, dtype=np.int64) - np.repeat(starts, fan_out)
            frontier_v = np.repeat(self._child_offsets[parents], fan_out) + local
            frontier_q = np.repeat(frontier_q[expand], fan_out)
            qx_lo = np.repeat(qx_lo[expand], fan_out)
            qy_lo = np.repeat(qy_lo[expand], fan_out)
            qx_hi = np.repeat(qx_hi[expand], fan_out)
            qy_hi = np.repeat(qy_hi[expand], fan_out)
        return out


class WaveletRangeEngine:
    """Vectorised Haar range-sum engine for Privelet releases.

    The released state is the noisy coefficient matrix ``A`` of the 2-D
    standard Haar decomposition (padded to ``p x p``, ``p`` a power of
    two).  A range estimate is the bilinear form ``fx^T R fy`` over the
    reconstructed counts ``R``, but reconstructing ``R`` is never
    necessary: writing the form in the coefficient basis gives

    ``fx^T R fy = u(x)^T A v(y)``

    where ``u(x)[k]`` is the integral of basis function ``k`` against the
    cumulative coverage of ``[0, x]``.  For the unnormalised Haar basis
    only ``h + 1`` entries of ``u`` are non-zero per endpoint — the base
    coefficient (weight ``x``, in cell units) and, per level, the single
    detail coefficient whose support straddles ``x`` (weight
    ``clip(x - a, 0, s/2) - clip(x - a - s/2, 0, s/2)`` for support
    ``[a, a + s)``).  A batch is answered with ``4 (h + 1)^2`` vectorised
    coefficient gathers — ``O(log^2 p)`` terms per query instead of the
    ``O(p^2)`` cells a reconstruction-based prefix engine pays to
    prepare.

    The four-corner inclusion-exclusion is evaluated in the nested form
    ``wy1 (wx1 A[kx1, ky1] - wx0 A[kx0, ky1]) - wy0 (...)`` so both
    zero-width and zero-height queries cancel term by term; degenerate,
    inverted, and NaN rows additionally answer exactly 0 through the
    same mask :class:`BatchQueryEngine` applies.  Padding columns never
    contribute: clipped endpoints satisfy ``x <= m <= p``, so the
    cumulative coverage of every padding cell is 0.
    """

    def __init__(self, layout: GridLayout, coefficients: np.ndarray):
        coefficients = np.asarray(coefficients, dtype=float)
        if (
            coefficients.ndim != 2
            or coefficients.shape[0] != coefficients.shape[1]
        ):
            raise ValueError(
                f"coefficients must be square, got {coefficients.shape}"
            )
        p = coefficients.shape[0]
        if p < 1 or (p & (p - 1)):
            raise ValueError(f"coefficient size must be a power of two, got {p}")
        if p < max(layout.shape):
            raise ValueError(
                f"coefficient size {p} smaller than grid {layout.shape}"
            )
        self._layout = layout
        self._coefficients = coefficients
        self._p = p
        self._h = p.bit_length() - 1

    @staticmethod
    def precompute(layout: GridLayout, coefficients: np.ndarray) -> dict[str, np.ndarray]:
        """Derived buffers to seal into a v2 archive at release time.

        Empty by design: the released coefficient matrix *is* the
        prepared state (no prefix sums or level stacks are derived), so
        a restored engine is already zero-copy over the mapped archive.
        The empty dict still marks the archive as sealed, which is what
        lets the serving layer count the restore as a warm load.
        """
        return {}

    @classmethod
    def from_slabs(
        cls,
        layout: GridLayout,
        coefficients: np.ndarray,
        slabs: dict[str, np.ndarray],
    ) -> "WaveletRangeEngine":
        """Restore an engine over the (possibly mapped) coefficients."""
        del slabs  # nothing derived to restore; see precompute
        return cls(layout, coefficients)

    @property
    def layout(self) -> GridLayout:
        return self._layout

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the prepared buffers."""
        return self._coefficients.nbytes

    def _endpoint_terms(self, xs: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-level ``(coefficient index, weight)`` pairs for endpoints.

        ``xs`` holds positions in cell units (0 .. m <= p).  Entry 0 is
        the base coefficient (index 0, weight ``x``); entry ``l + 1`` is
        level ``l``'s straddling detail coefficient.
        """
        terms = [(np.zeros(xs.size, dtype=np.int64), xs)]
        for level in range(self._h):
            support = self._p >> level  # s = p / 2^l, >= 2
            half = support // 2
            t = np.minimum(
                (xs // support).astype(np.int64), (1 << level) - 1
            )
            start = t * support
            weight = np.clip(xs - start, 0.0, half) - np.clip(
                xs - start - half, 0.0, half
            )
            terms.append(((1 << level) + t, weight))
        return terms

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch."""
        boxes = rects_to_boxes(rects)
        n = boxes.shape[0]
        if n == 0:
            return np.zeros(0)
        bounds = self._layout.domain.bounds
        mx, my = self._layout.shape
        x_lo = (boxes[:, 0] - bounds.x_lo) / self._layout.cell_width
        y_lo = (boxes[:, 1] - bounds.y_lo) / self._layout.cell_height
        x_hi = (boxes[:, 2] - bounds.x_lo) / self._layout.cell_width
        y_hi = (boxes[:, 3] - bounds.y_lo) / self._layout.cell_height
        x_lo = np.clip(x_lo, 0.0, mx)
        x_hi = np.clip(x_hi, 0.0, mx)
        y_lo = np.clip(y_lo, 0.0, my)
        y_hi = np.clip(y_hi, 0.0, my)
        # Same contract as BatchQueryEngine: degenerate, inverted, and
        # NaN rows answer exactly 0 (NaN would poison the index cast).
        empty = ~((x_hi > x_lo) & (y_hi > y_lo))
        if empty.any():
            x_lo = np.where(empty, 0.0, x_lo)
            x_hi = np.where(empty, 0.0, x_hi)
            y_lo = np.where(empty, 0.0, y_lo)
            y_hi = np.where(empty, 0.0, y_hi)

        a = self._coefficients
        terms_x0 = self._endpoint_terms(x_lo)
        terms_x1 = self._endpoint_terms(x_hi)
        terms_y0 = self._endpoint_terms(y_lo)
        terms_y1 = self._endpoint_terms(y_hi)
        estimate = np.zeros(n)
        for (kx0, wx0), (kx1, wx1) in zip(terms_x0, terms_x1):
            for (ky0, wy0), (ky1, wy1) in zip(terms_y0, terms_y1):
                estimate += wy1 * (
                    wx1 * a[kx1, ky1] - wx0 * a[kx0, ky1]
                ) - wy0 * (wx1 * a[kx1, ky0] - wx0 * a[kx0, ky0])
        estimate[empty] = 0.0
        return estimate


class NDPrefixSumEngine:
    """Prefix-sum batch engine over a d-dimensional equi-width grid.

    Generalises :class:`BatchQueryEngine` beyond 2-D: one zero-bordered
    cumulative-sum tensor of shape ``(m + 1)^d`` is prepared once, and a
    batch row (a ``2d``-column hyper-rectangle, lows then highs) is
    answered by ``2^d``-corner inclusion-exclusion over the continuous
    prefix, each corner a ``2^d``-point multilinear interpolation —
    ``4^d`` vectorised gathers per batch regardless of grid size.  The
    layout is duck-typed (``dimension``, ``m``, ``box``) so this module
    stays free of extension imports; d = 2 accepts :class:`~repro.core.
    geometry.Rect` rows too, whose ``(x_lo, y_lo, x_hi, y_hi)`` order is
    exactly lows-then-highs.

    A degenerate axis (``lo == hi`` after clipping) makes the hi and lo
    prefix evaluations gather identical corners, so the difference is
    exactly 0.0 — no tolerance involved; inverted and NaN rows answer
    exactly 0 through the same mask the 2-D engines apply.
    """

    def __init__(self, layout, counts: np.ndarray, *, _flat_prefix=None):
        d = int(layout.dimension)
        m = int(layout.m)
        if _flat_prefix is None:
            counts = np.asarray(counts, dtype=float)
            if counts.shape != layout.shape:
                raise ValueError(
                    f"counts shape {counts.shape} does not match grid "
                    f"{layout.shape}"
                )
            prefix = np.zeros((m + 1,) * d)
            prefix[(slice(1, None),) * d] = counts
            for axis in range(d):
                np.cumsum(prefix, axis=axis, out=prefix)
            flat_prefix = prefix.ravel()
        else:
            flat_prefix = np.asarray(_flat_prefix, dtype=float)
            if flat_prefix.shape != ((m + 1) ** d,):
                raise ValueError(
                    f"sealed prefix holds {flat_prefix.size} values, grid "
                    f"requires {(m + 1) ** d}"
                )
        self._layout = layout
        self._d = d
        self._m = m
        self._flat_prefix = flat_prefix
        # C-order index strides of the (m + 1)^d tensor, per axis.
        self._strides = (m + 1) ** np.arange(d - 1, -1, -1, dtype=np.int64)

    @staticmethod
    def precompute(layout, counts: np.ndarray) -> dict[str, np.ndarray]:
        """Derived buffers to seal into a v2 archive at release time.

        Runs the exact constructor preprocessing, so an engine restored
        via :meth:`from_slabs` is bit-identical to one built in-process.
        """
        return {"flat_prefix": NDPrefixSumEngine(layout, counts)._flat_prefix}

    @classmethod
    def from_slabs(cls, layout, slabs: dict[str, np.ndarray]) -> "NDPrefixSumEngine":
        """Restore an engine from sealed slabs without rebuilding.

        The slab may be a read-only mmap view; the interpolation only
        gathers from it, so restored engines share the archive's
        physical pages across forked workers.
        """
        return cls(layout, None, _flat_prefix=slabs["flat_prefix"])

    @property
    def layout(self):
        return self._layout

    @property
    def dimension(self) -> int:
        return self._d

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the prepared buffers."""
        return self._flat_prefix.nbytes + self._strides.nbytes

    def _continuous_prefix(self, coords: np.ndarray) -> np.ndarray:
        """Multilinear interpolation of the prefix tensor at ``(n, d)`` coords."""
        base = np.minimum(coords.astype(np.int64), self._m - 1)
        frac = coords - base
        result = np.zeros(coords.shape[0])
        for corner in range(1 << self._d):
            offsets = (corner >> np.arange(self._d - 1, -1, -1)) & 1
            flat = (base + offsets) @ self._strides
            weight = np.prod(
                np.where(offsets.astype(bool), frac, 1.0 - frac), axis=1
            )
            result += weight * self._flat_prefix[flat]
        return result

    def answer_batch(self, rects: "list | np.ndarray") -> np.ndarray:
        """Uniformity estimates for a batch of hyper-rectangles.

        Accepts an ``(n, 2d)`` array of lows-then-highs rows; when
        ``d == 2`` also a list of :class:`~repro.core.geometry.Rect` or
        4-number rows (the 2-D engines' shared input contract).
        """
        if self._d == 2:
            boxes = rects_to_boxes(rects)
        else:
            boxes = np.asarray(rects, dtype=float).reshape(-1, 2 * self._d)
        n = boxes.shape[0]
        if n == 0:
            return np.zeros(0)
        box = self._layout.box
        cell_widths = box.widths / self._m
        lows = np.clip((boxes[:, : self._d] - box.lows) / cell_widths, 0.0, self._m)
        highs = np.clip((boxes[:, self._d :] - box.lows) / cell_widths, 0.0, self._m)
        # NaN compares false, so NaN rows land in `empty` alongside the
        # inverted and degenerate ones; zero their coordinates so the
        # int64 cast inside the interpolation stays defined.
        empty = ~(highs > lows).all(axis=1)
        if empty.any():
            lows = np.where(empty[:, None], 0.0, lows)
            highs = np.where(empty[:, None], 0.0, highs)

        estimate = np.zeros(n)
        for signs in range(1 << self._d):
            pick_high = (signs >> np.arange(self._d - 1, -1, -1)) & 1
            coords = np.where(pick_high.astype(bool), highs, lows)
            parity = 1.0 if (self._d - int(pick_high.sum())) % 2 == 0 else -1.0
            estimate += parity * self._continuous_prefix(coords)
        estimate[empty] = 0.0
        return estimate


class FallbackEngine:
    """Adapter giving any :class:`~repro.core.synopsis.Synopsis` the
    ``answer_batch`` interface, via its scalar ``answer`` loop.

    Used for synopsis types without a registered vectorised engine so
    the serving layer can treat every release uniformly, and as the
    scalar second opinion in engine equivalence tests and benchmarks.
    """

    def __init__(self, synopsis):
        self._synopsis = synopsis

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        return scalar_answer_batch(self._synopsis, rects)


#: Synopsis type -> engine factory.  Populated by the synopsis modules
#: themselves at import time (see :func:`register_engine`), so the
#: registry is always in sync with whichever synopsis types exist in the
#: process: a synopsis instance cannot reach :func:`make_engine` without
#: its defining module — and hence its registration — having run.
_ENGINE_FACTORIES: dict[type, Callable] = {}

#: How many times :func:`make_engine` had to fall back to the scalar
#: :class:`FallbackEngine` because no engine was registered for the
#: synopsis type.  A scalar fallback on a hot path is an
#: order-of-magnitude regression, so benchmarks and the serving layer's
#: ``stats()`` surface this count instead of letting it hide.
_fallback_count = 0


def fallback_engine_count() -> int:
    """Process-wide count of scalar-fallback engines built so far."""
    return _fallback_count


def register_engine(synopsis_type: type, factory: Callable) -> None:
    """Register (or replace) the batch-engine factory for a synopsis type.

    ``factory`` takes the synopsis and returns an object exposing
    ``answer_batch(rects) -> np.ndarray``.  Subclasses inherit their
    nearest registered ancestor's factory unless they register their own.
    """
    _ENGINE_FACTORIES[synopsis_type] = factory


#: Synopsis type -> (precompute, from_slabs) pair for sealing derived
#: engine buffers into archives at release time (archive format v2).
#: ``precompute(synopsis)`` returns the named arrays to seal;
#: ``from_slabs(synopsis, slabs)`` restores an engine from them without
#: rebuilding.  Populated next to each module's :func:`register_engine`
#: call, so sealing support always tracks engine support.
_ENGINE_SEALERS: dict[type, tuple[Callable, Callable]] = {}


def register_engine_sealer(
    synopsis_type: type, precompute: Callable, from_slabs: Callable
) -> None:
    """Register the engine-sealing pair for a synopsis type.

    ``precompute`` takes the synopsis and returns ``{name: array}`` of
    derived engine buffers; ``from_slabs`` takes ``(synopsis, slabs)``
    and returns a ready engine.  ``from_slabs(s, precompute(s))`` must
    be bit-identical to the registered factory's engine.
    """
    _ENGINE_SEALERS[synopsis_type] = (precompute, from_slabs)


def _sealer_for(synopsis) -> "tuple[Callable, Callable] | None":
    for cls in type(synopsis).__mro__:
        sealer = _ENGINE_SEALERS.get(cls)
        if sealer is not None:
            return sealer
    return None


def compute_engine_slabs(synopsis) -> "dict[str, np.ndarray] | None":
    """Derived engine buffers to seal alongside a release, or ``None``.

    ``None`` means the synopsis type has no registered sealer (the
    archive is written without sealed buffers and loads trigger a
    normal engine build); an empty dict is a valid sealing — the
    engine's prepared state is the released arrays themselves.
    """
    sealer = _sealer_for(synopsis)
    if sealer is None:
        return None
    return dict(sealer[0](synopsis))


def has_sealed_engine(synopsis) -> bool:
    """Whether :func:`make_engine` can restore this synopsis's engine
    from sealed slabs instead of rebuilding (i.e. the synopsis carries
    loader-attached slabs *and* its type has a registered sealer)."""
    return (
        getattr(synopsis, "sealed_engine_slabs", None) is not None
        and _sealer_for(synopsis) is not None
    )


def make_engine(synopsis):
    """Build the fastest available batch engine for a released synopsis.

    Synopses carrying sealed engine slabs (loaded from a v2 archive)
    restore their engine directly from the slabs — no derived-buffer
    rebuild, and the buffers stay read-only views over the archive
    mapping.  Otherwise, looks the synopsis type (nearest registered
    ancestor first) up in the engine registry — uniform grids register
    the prefix-sum :class:`BatchQueryEngine`, adaptive grids the flat
    CSR :class:`FlatAdaptiveGridEngine`, spatial trees the level-order
    :class:`FlatTreeEngine` — and falls back to the scalar
    :class:`FallbackEngine` for unregistered types.  The returned object
    exposes ``answer_batch(rects) -> np.ndarray`` and holds no reference
    to raw data, so it can be cached and shared across threads.
    """
    global _fallback_count
    slabs = getattr(synopsis, "sealed_engine_slabs", None)
    if slabs is not None:
        sealer = _sealer_for(synopsis)
        if sealer is not None:
            try:
                return sealer[1](synopsis, slabs)
            except (KeyError, ValueError):
                # Slabs sealed by an older precompute (missing or
                # mismatched arrays): fall through to a full rebuild.
                pass
    for cls in type(synopsis).__mro__:
        factory = _ENGINE_FACTORIES.get(cls)
        if factory is not None:
            return factory(synopsis)
    _fallback_count += 1
    return FallbackEngine(synopsis)
