"""Vectorised batch query answering for grid synopses.

Experiments ask thousands of rectangle queries of the same released grid;
answering them one at a time costs a Python-level loop per query.  This
module evaluates a whole batch against a
:class:`~repro.core.grid.GridLayout` with numpy throughout:

The uniformity estimate for rectangle ``r`` is ``fx(r) @ C @ fy(r)`` —
a bilinear form in per-axis coverage vectors.  For a batch, we build the
coverage vectors through *prefix sums*: let ``S`` be the 2-D prefix-sum
matrix of ``C``, extended continuously by linear interpolation inside
cells.  Then the estimate of ``[x0, x1] x [y0, y1]`` is exactly the
four-corner inclusion-exclusion::

    est = S(x1, y1) - S(x0, y1) - S(x1, y0) + S(x0, y0)

where ``S(x, y)`` bilinearly interpolates the prefix sums at fractional
cell coordinates.  This is algebraically identical to the per-query
bilinear form (both are integrals of the piecewise-constant density), but
evaluates a whole batch with eight vectorised gathers.

:class:`BatchQueryEngine` wraps this; ``UniformGridSynopsis.answer_many``
delegates to it automatically for large batches.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Rect
from repro.core.grid import GridLayout

__all__ = ["BatchQueryEngine"]


class BatchQueryEngine:
    """Answers batches of rectangle queries over fixed grid counts.

    Build once per released grid (O(cells) preprocessing), then call
    :meth:`answer_batch` any number of times (O(1) per query).
    """

    def __init__(self, layout: GridLayout, counts: np.ndarray):
        counts = np.asarray(counts, dtype=float)
        if counts.shape != layout.shape:
            raise ValueError(
                f"counts shape {counts.shape} does not match grid {layout.shape}"
            )
        self._layout = layout
        # Prefix sums with a zero border: P[i, j] = sum(counts[:i, :j]).
        prefix = np.zeros((layout.mx + 1, layout.my + 1))
        np.cumsum(np.cumsum(counts, axis=0), axis=1, out=prefix[1:, 1:])
        self._prefix = prefix

    @property
    def layout(self) -> GridLayout:
        return self._layout

    def _continuous_prefix(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Bilinear interpolation of the prefix sums at cell coordinates.

        ``xs`` / ``ys`` are fractional positions in cell units (0 .. m).
        """
        mx, my = self._layout.shape
        xs = np.clip(xs, 0.0, mx)
        ys = np.clip(ys, 0.0, my)
        x0 = np.minimum(xs.astype(np.int64), mx - 1)
        y0 = np.minimum(ys.astype(np.int64), my - 1)
        tx = xs - x0
        ty = ys - y0
        p = self._prefix
        p00 = p[x0, y0]
        p10 = p[x0 + 1, y0]
        p01 = p[x0, y0 + 1]
        p11 = p[x0 + 1, y0 + 1]
        return (
            (1 - tx) * (1 - ty) * p00
            + tx * (1 - ty) * p10
            + (1 - tx) * ty * p01
            + tx * ty * p11
        )

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch.

        Accepts a list of :class:`Rect` or an ``(n, 4)`` array of
        ``(x_lo, y_lo, x_hi, y_hi)`` rows.  Rectangles are clipped to the
        domain.
        """
        if isinstance(rects, np.ndarray):
            boxes = np.asarray(rects, dtype=float)
            if boxes.ndim != 2 or boxes.shape[1] != 4:
                raise ValueError(f"expected (n, 4) array, got {boxes.shape}")
        else:
            boxes = np.array([rect.as_tuple() for rect in rects], dtype=float)
            if boxes.size == 0:
                return np.empty(0)
        bounds = self._layout.domain.bounds
        mx, my = self._layout.shape
        # Convert to cell units.
        x_lo = (boxes[:, 0] - bounds.x_lo) / self._layout.cell_width
        y_lo = (boxes[:, 1] - bounds.y_lo) / self._layout.cell_height
        x_hi = (boxes[:, 2] - bounds.x_lo) / self._layout.cell_width
        y_hi = (boxes[:, 3] - bounds.y_lo) / self._layout.cell_height
        x_lo = np.clip(x_lo, 0.0, mx)
        x_hi = np.clip(x_hi, 0.0, mx)
        y_lo = np.clip(y_lo, 0.0, my)
        y_hi = np.clip(y_hi, 0.0, my)
        empty = (x_hi <= x_lo) | (y_hi <= y_lo)

        estimate = (
            self._continuous_prefix(x_hi, y_hi)
            - self._continuous_prefix(x_lo, y_hi)
            - self._continuous_prefix(x_hi, y_lo)
            + self._continuous_prefix(x_lo, y_lo)
        )
        estimate[empty] = 0.0
        return estimate
