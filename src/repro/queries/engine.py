"""Vectorised batch query answering for grid synopses.

Experiments ask thousands of rectangle queries of the same released grid;
answering them one at a time costs a Python-level loop per query.  This
module evaluates a whole batch against a
:class:`~repro.core.grid.GridLayout` with numpy throughout:

The uniformity estimate for rectangle ``r`` is ``fx(r) @ C @ fy(r)`` —
a bilinear form in per-axis coverage vectors.  For a batch, we build the
coverage vectors through *prefix sums*: let ``S`` be the 2-D prefix-sum
matrix of ``C``, extended continuously by linear interpolation inside
cells.  Then the estimate of ``[x0, x1] x [y0, y1]`` is exactly the
four-corner inclusion-exclusion::

    est = S(x1, y1) - S(x0, y1) - S(x1, y0) + S(x0, y0)

where ``S(x, y)`` bilinearly interpolates the prefix sums at fractional
cell coordinates.  This is algebraically identical to the per-query
bilinear form (both are integrals of the piecewise-constant density), but
evaluates a whole batch with eight vectorised gathers.

:class:`BatchQueryEngine` wraps this; ``UniformGridSynopsis.answer_many``
delegates to it automatically for large batches.

For adaptive grids, whose released state is a different sub-grid per
first-level cell, :class:`AdaptiveGridEngine` runs one prefix-sum engine
per cell and sums the per-cell contributions — valid because constrained
inference makes each cell's leaf sum equal its released total, so a fully
covered cell contributes the same amount either way.  :func:`make_engine`
picks the right engine for any supported synopsis, which is how the
serving layer (:mod:`repro.service`) reuses one prepared engine across
many incoming query batches.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Rect
from repro.core.grid import GridLayout

__all__ = ["BatchQueryEngine", "AdaptiveGridEngine", "FallbackEngine", "make_engine"]


def rects_to_boxes(rects: "list[Rect] | np.ndarray") -> np.ndarray:
    """Normalise a query batch to an ``(n, 4)`` float array.

    Accepts a list of :class:`Rect`, a list of 4-number sequences, or an
    already-shaped array of ``(x_lo, y_lo, x_hi, y_hi)`` rows.
    """
    if not isinstance(rects, np.ndarray):
        rects = list(rects)  # materialise: generators must survive the scan
        if all(hasattr(rect, "as_tuple") for rect in rects):
            return np.array(
                [rect.as_tuple() for rect in rects], dtype=float
            ).reshape(-1, 4)
        rects = np.asarray(rects, dtype=float)
    boxes = np.asarray(rects, dtype=float)
    if boxes.size == 0:
        if boxes.ndim == 2 and boxes.shape[1] != 4:
            raise ValueError(f"expected (n, 4) array, got {boxes.shape}")
        return boxes.reshape(0, 4)
    if boxes.ndim != 2 or boxes.shape[1] != 4:
        raise ValueError(f"expected (n, 4) array, got {boxes.shape}")
    return boxes


class BatchQueryEngine:
    """Answers batches of rectangle queries over fixed grid counts.

    Build once per released grid (O(cells) preprocessing), then call
    :meth:`answer_batch` any number of times (O(1) per query).
    """

    def __init__(self, layout: GridLayout, counts: np.ndarray):
        counts = np.asarray(counts, dtype=float)
        if counts.shape != layout.shape:
            raise ValueError(
                f"counts shape {counts.shape} does not match grid {layout.shape}"
            )
        self._layout = layout
        # Prefix sums with a zero border: P[i, j] = sum(counts[:i, :j]).
        prefix = np.zeros((layout.mx + 1, layout.my + 1))
        np.cumsum(np.cumsum(counts, axis=0), axis=1, out=prefix[1:, 1:])
        self._prefix = prefix

    @property
    def layout(self) -> GridLayout:
        return self._layout

    def _continuous_prefix(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Bilinear interpolation of the prefix sums at cell coordinates.

        ``xs`` / ``ys`` are fractional positions in cell units (0 .. m).
        """
        mx, my = self._layout.shape
        xs = np.clip(xs, 0.0, mx)
        ys = np.clip(ys, 0.0, my)
        x0 = np.minimum(xs.astype(np.int64), mx - 1)
        y0 = np.minimum(ys.astype(np.int64), my - 1)
        tx = xs - x0
        ty = ys - y0
        p = self._prefix
        p00 = p[x0, y0]
        p10 = p[x0 + 1, y0]
        p01 = p[x0, y0 + 1]
        p11 = p[x0 + 1, y0 + 1]
        return (
            (1 - tx) * (1 - ty) * p00
            + tx * (1 - ty) * p10
            + (1 - tx) * ty * p01
            + tx * ty * p11
        )

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch.

        Accepts a list of :class:`Rect` or an ``(n, 4)`` array of
        ``(x_lo, y_lo, x_hi, y_hi)`` rows.  Rectangles are clipped to the
        domain.
        """
        boxes = rects_to_boxes(rects)
        if boxes.size == 0:
            return np.empty(0)
        bounds = self._layout.domain.bounds
        mx, my = self._layout.shape
        # Convert to cell units.
        x_lo = (boxes[:, 0] - bounds.x_lo) / self._layout.cell_width
        y_lo = (boxes[:, 1] - bounds.y_lo) / self._layout.cell_height
        x_hi = (boxes[:, 2] - bounds.x_lo) / self._layout.cell_width
        y_hi = (boxes[:, 3] - bounds.y_lo) / self._layout.cell_height
        x_lo = np.clip(x_lo, 0.0, mx)
        x_hi = np.clip(x_hi, 0.0, mx)
        y_lo = np.clip(y_lo, 0.0, my)
        y_hi = np.clip(y_hi, 0.0, my)
        empty = (x_hi <= x_lo) | (y_hi <= y_lo)

        estimate = (
            self._continuous_prefix(x_hi, y_hi)
            - self._continuous_prefix(x_lo, y_hi)
            - self._continuous_prefix(x_hi, y_lo)
            + self._continuous_prefix(x_lo, y_lo)
        )
        estimate[empty] = 0.0
        return estimate


class AdaptiveGridEngine:
    """Batch answering for :class:`~repro.core.adaptive_grid.AdaptiveGridSynopsis`.

    One :class:`BatchQueryEngine` is prepared per first-level cell; a batch
    is answered by summing each cell engine's (domain-clipped) estimates.
    This equals ``synopsis.answer`` up to floating-point rounding: partial
    cells use the same uniformity estimator, and for fully covered cells
    the leaf sum equals the released total ``v'`` (constrained inference
    enforces ``sum(u') == v'``; without inference the total is defined as
    the leaf sum).

    Preprocessing is O(total leaf cells); each batch then costs one
    vectorised pass per first-level cell instead of a Python-level loop
    per query, which is the regime service traffic lives in.
    """

    def __init__(self, synopsis):
        m1x, m1y = synopsis.first_level_size
        self._domain = synopsis.domain
        self._shape = (m1x, m1y)
        self._engines = [
            BatchQueryEngine(synopsis.cell_layout(i, j), synopsis.cell_counts(i, j))
            for i in range(m1x)
            for j in range(m1y)
        ]

    @property
    def n_cell_engines(self) -> int:
        return len(self._engines)

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        """Uniformity estimates for every rectangle in the batch.

        Each query is dispatched only to the first-level cells it
        overlaps: the per-query cell-index ranges are computed in one
        vectorised pass, and each overlapped cell engine evaluates just
        its own sub-batch — total work scales with cells *touched*, not
        with ``m1^2 * n``.
        """
        boxes = rects_to_boxes(rects)
        if boxes.size == 0:
            return np.empty(0)
        # Pre-clip to the domain once so every cell engine sees the same
        # effective query the scalar path evaluates.
        bounds = self._domain.bounds
        clipped = np.empty_like(boxes)
        clipped[:, 0] = np.clip(boxes[:, 0], bounds.x_lo, bounds.x_hi)
        clipped[:, 1] = np.clip(boxes[:, 1], bounds.y_lo, bounds.y_hi)
        clipped[:, 2] = np.clip(boxes[:, 2], bounds.x_lo, bounds.x_hi)
        clipped[:, 3] = np.clip(boxes[:, 3], bounds.y_lo, bounds.y_hi)

        # First-level index ranges per query.  Edge-exact bounds may
        # over-include a neighbouring cell, which then contributes a
        # zero-width (zero) estimate — harmless.
        mx, my = self._shape
        cell_w = self._domain.width / mx
        cell_h = self._domain.height / my
        i_lo = np.clip(((clipped[:, 0] - bounds.x_lo) / cell_w).astype(np.int64), 0, mx - 1)
        i_hi = np.clip(((clipped[:, 2] - bounds.x_lo) / cell_w).astype(np.int64), 0, mx - 1)
        j_lo = np.clip(((clipped[:, 1] - bounds.y_lo) / cell_h).astype(np.int64), 0, my - 1)
        j_hi = np.clip(((clipped[:, 3] - bounds.y_lo) / cell_h).astype(np.int64), 0, my - 1)

        # Inverted rows (x_hi < x_lo or y_hi < y_lo) answer 0 but must be
        # excluded from the dispatch bookkeeping: their reversed index
        # ranges would write negative bands into the difference array and
        # cancel *other* queries' contributions.
        valid = (clipped[:, 2] >= clipped[:, 0]) & (clipped[:, 3] >= clipped[:, 1])

        # 2-D difference array -> how many queries touch each cell; only
        # touched cells get an engine pass.
        touched = np.zeros((mx + 1, my + 1), dtype=np.int64)
        np.add.at(touched, (i_lo[valid], j_lo[valid]), 1)
        np.add.at(touched, (i_hi[valid] + 1, j_lo[valid]), -1)
        np.add.at(touched, (i_lo[valid], j_hi[valid] + 1), -1)
        np.add.at(touched, (i_hi[valid] + 1, j_hi[valid] + 1), 1)
        counts = touched.cumsum(axis=0).cumsum(axis=1)[:mx, :my]

        total = np.zeros(boxes.shape[0])
        for i, j in np.argwhere(counts > 0):
            mask = valid & (i_lo <= i) & (i <= i_hi) & (j_lo <= j) & (j <= j_hi)
            total[mask] += self._engines[i * my + j].answer_batch(clipped[mask])
        return total


class FallbackEngine:
    """Adapter giving any :class:`~repro.core.synopsis.Synopsis` the
    ``answer_batch`` interface, via its scalar ``answer`` loop.

    Used for synopsis types without a vectorised engine (e.g. spatial
    trees) so the serving layer can treat every release uniformly.
    """

    def __init__(self, synopsis):
        self._synopsis = synopsis

    def answer_batch(self, rects: list[Rect] | np.ndarray) -> np.ndarray:
        boxes = rects_to_boxes(rects)
        # Same contract as the grid engines: inverted rows answer 0
        # instead of raising from the Rect constructor.
        out = np.zeros(boxes.shape[0])
        for idx, row in enumerate(boxes):
            if row[2] >= row[0] and row[3] >= row[1]:
                out[idx] = self._synopsis.answer(Rect(*row))
        return out


def make_engine(synopsis):
    """Build the fastest available batch engine for a released synopsis.

    Grid-backed synopses get prefix-sum engines (:class:`BatchQueryEngine`
    for uniform grids, :class:`AdaptiveGridEngine` for adaptive grids);
    anything else falls back to the scalar loop.  The returned object
    exposes ``answer_batch(rects) -> np.ndarray`` and holds no reference
    to raw data, so it can be cached and shared across threads.
    """
    from repro.core.adaptive_grid import AdaptiveGridSynopsis
    from repro.core.uniform_grid import UniformGridSynopsis

    if isinstance(synopsis, UniformGridSynopsis):
        return BatchQueryEngine(synopsis.layout, synopsis.counts)
    if isinstance(synopsis, AdaptiveGridSynopsis):
        return AdaptiveGridEngine(synopsis)
    return FallbackEngine(synopsis)
