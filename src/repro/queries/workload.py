"""Query-workload generation (Section V-A of the paper).

The paper evaluates every method on six query sizes ``q1 .. q6``: ``q6``
covers between a quarter and a half of the domain and each smaller size
halves both the x and y extent (quartering the area).  For each size, 200
rectangles are placed uniformly at random inside the domain.

:class:`QueryWorkload` captures that construction and pairs each generated
rectangle with its exact answer so evaluation code never recomputes ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect
from repro.privacy.mechanisms import ensure_rng

__all__ = [
    "QuerySize",
    "SizedQuerySet",
    "QueryWorkload",
    "paper_query_sizes",
    "interval_workload",
    "nd_hyperrectangle_workload",
]

#: Number of query sizes in the paper's workloads.
N_SIZES = 6

#: Queries generated per size in the paper's experiments.
DEFAULT_QUERIES_PER_SIZE = 200


@dataclass(frozen=True)
class QuerySize:
    """One of the workload's rectangle sizes (width x height)."""

    label: str
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height


def paper_query_sizes(
    q6_width: float, q6_height: float, n_sizes: int = N_SIZES
) -> list[QuerySize]:
    """The doubling ladder of query sizes ``q1 .. q6``.

    ``q_{i+1}`` doubles both extents of ``q_i``, so given the largest size
    ``q6`` the ladder is ``q6 / 2^(6-i)`` per axis.

    >>> [s.width for s in paper_query_sizes(16.0, 16.0)]
    [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    """
    if q6_width <= 0 or q6_height <= 0:
        raise ValueError("q6 extents must be positive")
    if n_sizes < 1:
        raise ValueError(f"n_sizes must be >= 1, got {n_sizes}")
    sizes = []
    for i in range(1, n_sizes + 1):
        factor = 2.0 ** (n_sizes - i)
        sizes.append(QuerySize(f"q{i}", q6_width / factor, q6_height / factor))
    return sizes


@dataclass
class SizedQuerySet:
    """All queries of one size together with their exact answers."""

    size: QuerySize
    rects: list[Rect]
    true_answers: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __len__(self) -> int:
        return len(self.rects)


class QueryWorkload:
    """A full evaluation workload: several sizes x many random rectangles.

    Build one with :meth:`generate`; iterate over :attr:`query_sets` (one
    per size, smallest first).
    """

    def __init__(self, query_sets: list[SizedQuerySet], domain: Domain2D):
        self._query_sets = query_sets
        self._domain = domain

    @classmethod
    def generate(
        cls,
        dataset: GeoDataset,
        q6_width: float,
        q6_height: float,
        rng: np.random.Generator | int | None,
        queries_per_size: int = DEFAULT_QUERIES_PER_SIZE,
        n_sizes: int = N_SIZES,
    ) -> "QueryWorkload":
        """Generate the paper's workload for a dataset.

        Rectangles are uniformly placed inside the domain, and the exact
        answer of every query is computed up front from the dataset —
        in one ``count_many`` batch across all sizes, so the dataset's
        CSR ground-truth index answers the whole workload in a single
        vectorised pass.
        """
        rng = ensure_rng(rng)
        if queries_per_size < 1:
            raise ValueError(f"queries_per_size must be >= 1, got {queries_per_size}")
        domain = dataset.domain
        sizes = paper_query_sizes(q6_width, q6_height, n_sizes)
        rects_by_size: list[list[Rect]] = []
        for size in sizes:
            if size.width > domain.width or size.height > domain.height:
                raise ValueError(
                    f"query size {size.label} ({size.width} x {size.height}) "
                    f"exceeds the domain"
                )
            rects_by_size.append(
                [
                    domain.random_rect(size.width, size.height, rng)
                    for _ in range(queries_per_size)
                ]
            )
        all_answers = dataset.count_many(
            [rect for rects in rects_by_size for rect in rects]
        )
        sets = [
            SizedQuerySet(
                size,
                rects,
                all_answers[k * queries_per_size : (k + 1) * queries_per_size],
            )
            for k, (size, rects) in enumerate(zip(sizes, rects_by_size))
        ]
        return cls(sets, domain)

    @property
    def query_sets(self) -> list[SizedQuerySet]:
        return self._query_sets

    @property
    def domain(self) -> Domain2D:
        return self._domain

    @property
    def size_labels(self) -> list[str]:
        return [query_set.size.label for query_set in self._query_sets]

    def total_queries(self) -> int:
        return sum(len(query_set) for query_set in self._query_sets)

    def all_rects(self) -> list[Rect]:
        """Every rectangle across all sizes, smallest size first."""
        rects: list[Rect] = []
        for query_set in self._query_sets:
            rects.extend(query_set.rects)
        return rects

    def all_true_answers(self) -> np.ndarray:
        return np.concatenate(
            [query_set.true_answers for query_set in self._query_sets]
        )


def interval_workload(
    dataset: GeoDataset,
    rng: np.random.Generator | int | None,
    n_queries: int = DEFAULT_QUERIES_PER_SIZE,
    axis: str = "x",
) -> tuple[list[Rect], np.ndarray]:
    """1-D interval queries over a 2-D dataset, with exact answers.

    Each query is a random interval on one axis crossed with the full
    extent of the other — the query class the wavelet baseline (and any
    1-D hierarchy) is designed for, where range length drives the noise
    cancellation.  Returns ``(rects, true_answers)``; answers come from
    the dataset's ground-truth index in one batch.
    """
    rng = ensure_rng(rng)
    if axis not in ("x", "y"):
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    bounds = dataset.domain.bounds
    if axis == "x":
        edges = rng.uniform(bounds.x_lo, bounds.x_hi, size=(n_queries, 2))
        rects = [
            Rect(lo, bounds.y_lo, hi, bounds.y_hi)
            for lo, hi in zip(edges.min(axis=1), edges.max(axis=1))
        ]
    else:
        edges = rng.uniform(bounds.y_lo, bounds.y_hi, size=(n_queries, 2))
        rects = [
            Rect(bounds.x_lo, lo, bounds.x_hi, hi)
            for lo, hi in zip(edges.min(axis=1), edges.max(axis=1))
        ]
    return rects, dataset.count_many(rects)


def nd_hyperrectangle_workload(
    points: np.ndarray,
    box,
    rng: np.random.Generator | int | None,
    n_queries: int = DEFAULT_QUERIES_PER_SIZE,
    chunk_size: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Random d-dimensional hyper-rectangles with exact counts.

    ``box`` is any object exposing ``lows``/``highs``/``dimension``
    (e.g. :class:`~repro.extensions.multidim.NDBox`).  Queries are the
    bounding boxes of uniform corner pairs inside the box; rows come back
    as ``(n, 2d)`` lows-then-highs — the ND engines' batch layout.
    Ground truth counts points with inclusive bounds (matching
    ``NDBox.contains``), brute-forced in query chunks to bound the
    boolean intermediate at ``chunk_size * n_points * d``.
    """
    rng = ensure_rng(rng)
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    points = np.asarray(points, dtype=float)
    d = int(box.dimension)
    if points.ndim != 2 or points.shape[1] != d:
        raise ValueError(f"points must have shape (n, {d}), got {points.shape}")
    corners = rng.uniform(box.lows, box.highs, size=(n_queries, 2, d))
    lows = corners.min(axis=1)
    highs = corners.max(axis=1)
    answers = np.empty(n_queries)
    for start in range(0, n_queries, chunk_size):
        stop = min(start + chunk_size, n_queries)
        inside = (points[None, :, :] >= lows[start:stop, None, :]) & (
            points[None, :, :] <= highs[start:stop, None, :]
        )
        answers[start:stop] = inside.all(axis=2).sum(axis=1)
    return np.concatenate([lows, highs], axis=1), answers
