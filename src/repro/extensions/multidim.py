"""d-dimensional uniform grids — the paper's higher-dimension extension.

Section IV-C ends with a prediction: hierarchical methods, already of
limited value in 2-D, "would perform even worse with higher dimensions",
whereas the flat-grid approach generalises cleanly.  This module makes
that generalisation concrete:

* :class:`NDGridLayout` — an equi-width grid over a d-dimensional box;
* :class:`NDUniformGridBuilder` / :class:`NDUniformGridSynopsis` — UG in
  d dimensions;
* :func:`guideline1_nd_grid_size` — the d-dimensional analogue of
  Guideline 1.

**Derivation of the generalised guideline.**  With per-axis size ``m``
(so ``m^d`` cells) and a query covering fraction ``r`` of the domain:

* noise error: the query includes about ``r m^d`` cells, each with
  independent ``Lap(1/eps)`` noise, so the error's standard deviation is
  ``sqrt(2 r m^d) / eps``;
* non-uniformity error: the query's border consists of ``2d`` hyperfaces,
  each touching on the order of ``(r^(1/d) m)^(d-1)`` cells holding
  ``N / m^d`` points apiece, i.e. about
  ``2 d r^((d-1)/d) N / m`` points up to a dataset constant.

Minimising the sum in ``m`` gives ``m = (N eps / c_d)^(2 / (d + 2))``,
which for d = 2 collapses to the paper's ``m = sqrt(N eps / c)``.  The
module keeps ``c_d = c = 10`` by default so the 2-D behaviour matches the
paper exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.geometry import Domain2D, Rect, rects_to_boxes
from repro.core.guidelines import DEFAULT_C
from repro.core.synopsis import Synopsis, SynopsisBuilder
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import ensure_rng, noisy_histogram

__all__ = [
    "NDBox",
    "NDGridLayout",
    "NDUniformGridSynopsis",
    "NDUniformGridBuilder",
    "MultiDimGridSynopsis",
    "MultiDimGridBuilder",
    "guideline1_nd_grid_size",
]


def guideline1_nd_grid_size(
    n_points: float,
    epsilon: float,
    dimension: int,
    c: float = DEFAULT_C,
) -> int:
    """Per-axis grid size ``m = (N eps / c)^(2 / (d + 2))``.

    >>> guideline1_nd_grid_size(1_000_000, 1.0, 2)
    316
    >>> guideline1_nd_grid_size(1_000_000, 1.0, 3)
    100
    """
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    n_points = max(0.0, float(n_points))
    return max(1, round((n_points * epsilon / c) ** (2.0 / (dimension + 2))))


class NDBox:
    """An axis-aligned box ``[lo_1, hi_1] x ... x [lo_d, hi_d]``."""

    def __init__(self, lows: np.ndarray, highs: np.ndarray):
        lows = np.asarray(lows, dtype=float)
        highs = np.asarray(highs, dtype=float)
        if lows.shape != highs.shape or lows.ndim != 1 or lows.size == 0:
            raise ValueError("lows and highs must be matching 1-D arrays")
        if np.any(highs < lows):
            raise ValueError("box extents must be non-negative")
        self.lows = lows
        self.highs = highs

    @classmethod
    def unit(cls, dimension: int) -> "NDBox":
        return cls(np.zeros(dimension), np.ones(dimension))

    @property
    def dimension(self) -> int:
        return self.lows.size

    @property
    def widths(self) -> np.ndarray:
        return self.highs - self.lows

    @property
    def volume(self) -> float:
        return float(np.prod(self.widths))

    def contains(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        return np.all((points >= self.lows) & (points <= self.highs), axis=1)

    def __repr__(self) -> str:
        return f"NDBox(d={self.dimension}, lows={self.lows}, highs={self.highs})"


class NDGridLayout:
    """An equi-width ``m^d`` grid over a d-dimensional box."""

    def __init__(self, box: NDBox, per_axis_size: int):
        if per_axis_size < 1:
            raise ValueError(f"per-axis size must be >= 1, got {per_axis_size}")
        if np.any(box.widths <= 0):
            raise ValueError("grid requires a box with positive extent")
        self.box = box
        self.m = int(per_axis_size)

    @property
    def dimension(self) -> int:
        return self.box.dimension

    @property
    def n_cells(self) -> int:
        return self.m**self.dimension

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.m,) * self.dimension

    def cell_indices(self, points: np.ndarray) -> np.ndarray:
        """Map ``(n, d)`` points to per-axis integer indices, shape ``(n, d)``."""
        points = np.asarray(points, dtype=float)
        relative = (points - self.box.lows) / self.box.widths
        return np.clip((relative * self.m).astype(np.int64), 0, self.m - 1)

    def histogram(self, points: np.ndarray) -> np.ndarray:
        """Exact counts per cell, shape ``(m,) * d``."""
        points = np.asarray(points, dtype=float)
        if points.shape[0] == 0:
            return np.zeros(self.shape)
        indices = self.cell_indices(points)
        flat = np.ravel_multi_index(indices.T, self.shape)
        return (
            np.bincount(flat, minlength=self.n_cells)
            .reshape(self.shape)
            .astype(float)
        )

    def _axis_fractions(self, axis: int, lo: float, hi: float) -> np.ndarray:
        """Coverage fraction of ``[lo, hi]`` for each of the m cells on an axis."""
        axis_lo = self.box.lows[axis]
        width = self.box.widths[axis] / self.m
        edges = axis_lo + width * np.arange(self.m + 1)
        overlap = np.minimum(edges[1:], hi) - np.maximum(edges[:-1], lo)
        return np.clip(overlap / width, 0.0, 1.0)

    def estimate(self, counts: np.ndarray, query: NDBox) -> float:
        """Uniformity-assumption estimate of the count inside ``query``.

        The d-dimensional analogue of the 2-D bilinear form: contract the
        count tensor with one per-axis coverage vector per dimension.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.shape != self.shape:
            raise ValueError(
                f"counts shape {counts.shape} does not match grid {self.shape}"
            )
        if query.dimension != self.dimension:
            raise ValueError("query dimension mismatch")
        result = counts
        for axis in range(self.dimension):
            fractions = self._axis_fractions(
                axis, query.lows[axis], query.highs[axis]
            )
            # Contract the leading axis each time.
            result = np.tensordot(fractions, result, axes=(0, 0))
        return float(result)


class NDUniformGridSynopsis:
    """The released state of d-dimensional UG."""

    def __init__(self, layout: NDGridLayout, counts: np.ndarray, epsilon: float):
        counts = np.asarray(counts, dtype=float)
        if counts.shape != layout.shape:
            raise ValueError("counts shape does not match layout")
        self.layout = layout
        self.counts = counts
        self.epsilon = epsilon
        self._engine = None  # lazy NDPrefixSumEngine for answer_many

    @property
    def dimension(self) -> int:
        return self.layout.dimension

    def answer(self, query: NDBox) -> float:
        return self.layout.estimate(self.counts, query)

    def batch_engine(self):
        """The lazily built d-dimensional prefix-sum engine."""
        if self._engine is None:
            from repro.queries.engine import NDPrefixSumEngine

            self._engine = NDPrefixSumEngine(self.layout, self.counts)
        return self._engine

    def answer_many(self, boxes: np.ndarray) -> np.ndarray:
        """Vectorised estimates for ``(n, 2d)`` lows-then-highs rows.

        Routed through :class:`~repro.queries.engine.NDPrefixSumEngine`;
        the engine contract applies (inverted/NaN rows answer 0,
        degenerate axes answer exactly 0).
        """
        return self.batch_engine().answer_batch(boxes)

    def total(self) -> float:
        return self.answer(self.layout.box)


class NDUniformGridBuilder:
    """UG generalised to d dimensions with the generalised Guideline 1.

    Parameters mirror :class:`~repro.core.uniform_grid.UniformGridBuilder`;
    ``max_cells`` guards against accidental tensor blow-ups in high d.
    """

    name = "UG-nd"

    def __init__(
        self,
        per_axis_size: int | None = None,
        c: float = DEFAULT_C,
        max_cells: int = 20_000_000,
    ):
        if per_axis_size is not None and per_axis_size < 1:
            raise ValueError(f"per_axis_size must be >= 1, got {per_axis_size}")
        self.per_axis_size = per_axis_size
        self.c = c
        self.max_cells = max_cells

    def fit(
        self,
        points: np.ndarray,
        box: NDBox,
        epsilon: float,
        rng: np.random.Generator | int | None,
        budget: PrivacyBudget | None = None,
    ) -> NDUniformGridSynopsis:
        rng = ensure_rng(rng)
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        budget = budget if budget is not None else PrivacyBudget(epsilon)
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != box.dimension:
            raise ValueError(
                f"points must have shape (n, {box.dimension}), got {points.shape}"
            )

        m = self.per_axis_size
        if m is None:
            m = guideline1_nd_grid_size(
                points.shape[0], epsilon, box.dimension, self.c
            )
        layout = NDGridLayout(box, m)
        if layout.n_cells > self.max_cells:
            raise ValueError(
                f"grid of {layout.n_cells} cells exceeds max_cells="
                f"{self.max_cells}; pass a smaller per_axis_size"
            )
        exact = layout.histogram(points)
        counts = noisy_histogram(
            exact, epsilon, rng, budget=budget, label=f"{box.dimension}-d cell counts"
        )
        return NDUniformGridSynopsis(layout, counts, epsilon)


class MultiDimGridSynopsis(Synopsis):
    """The d = 2 embedding of the ND grid into the 2-D serving tier.

    Wraps an :class:`NDUniformGridSynopsis` of dimension 2 so the
    generalised machinery — ND layout, ND prefix-sum engine — plugs into
    everything typed against :class:`~repro.core.synopsis.Synopsis`:
    the engine registry, serialization, the synopsis store, and both
    HTTP transports.  A :class:`~repro.core.geometry.Rect` row
    ``(x_lo, y_lo, x_hi, y_hi)`` *is* the ND engine's lows-then-highs
    layout at d = 2, so queries pass through unchanged; the scalar
    :meth:`answer` routes through a single-row engine call, making the
    scalar and batch paths bit-identical by construction.
    """

    def __init__(self, nd: NDUniformGridSynopsis):
        if nd.dimension != 2:
            raise ValueError(
                f"servable embedding requires dimension 2, got {nd.dimension}"
            )
        box = nd.layout.box
        domain = Domain2D(box.lows[0], box.lows[1], box.highs[0], box.highs[1])
        super().__init__(domain, nd.epsilon)
        self._nd = nd

    @property
    def nd(self) -> NDUniformGridSynopsis:
        """The wrapped d-dimensional release."""
        return self._nd

    @property
    def layout(self) -> NDGridLayout:
        return self._nd.layout

    @property
    def counts(self) -> np.ndarray:
        return self._nd.counts

    @property
    def grid_size(self) -> tuple[int, int]:
        return (self._nd.layout.m, self._nd.layout.m)

    def answer(self, rect: Rect) -> float:
        return float(self._nd.answer_many(rects_to_boxes([rect]))[0])

    def answer_many(self, rects: "list[Rect] | np.ndarray") -> np.ndarray:
        return self._nd.answer_many(rects_to_boxes(rects))


class MultiDimGridBuilder(SynopsisBuilder):
    """Builds the servable 2-D specialisation of d-dimensional UG.

    Delegates the entire build to :class:`NDUniformGridBuilder` at
    ``d = 2`` — same guideline, same noise stream — and wraps the result
    for the serving tier.  ``fit_reference`` returns the raw
    :class:`NDUniformGridSynopsis`, which the property suite pins
    bit-identical to the wrapped release.
    """

    name = "UGnd"

    def __init__(
        self,
        per_axis_size: int | None = None,
        c: float = DEFAULT_C,
        max_cells: int = 20_000_000,
    ):
        self._nd_builder = NDUniformGridBuilder(
            per_axis_size=per_axis_size, c=c, max_cells=max_cells
        )

    @property
    def per_axis_size(self) -> int | None:
        return self._nd_builder.per_axis_size

    def label(self) -> str:
        if self.per_axis_size is None:
            return "UGnd(auto)"
        return f"UGnd{self.per_axis_size}"

    def _nd_box(self, dataset: GeoDataset) -> NDBox:
        bounds = dataset.domain.bounds
        return NDBox(
            np.array([bounds.x_lo, bounds.y_lo]),
            np.array([bounds.x_hi, bounds.y_hi]),
        )

    def fit(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> MultiDimGridSynopsis:
        budget = self._budget(epsilon, budget)
        nd = self._nd_builder.fit(
            dataset.points, self._nd_box(dataset), epsilon, rng, budget=budget
        )
        return MultiDimGridSynopsis(nd)

    def fit_reference(
        self,
        dataset: GeoDataset,
        epsilon: float,
        rng: np.random.Generator,
        budget: PrivacyBudget | None = None,
    ) -> NDUniformGridSynopsis:
        """The retained raw ND build (identical noise stream as fit)."""
        budget = self._budget(epsilon, budget)
        return self._nd_builder.fit(
            dataset.points, self._nd_box(dataset), epsilon, rng, budget=budget
        )


def _register_engine() -> None:
    # Self-registration keeps queries.engine's make_engine registry in
    # sync without that module having to know about ND grids.
    from repro.queries.engine import (
        NDPrefixSumEngine,
        register_engine,
        register_engine_sealer,
    )

    register_engine(
        MultiDimGridSynopsis,
        lambda synopsis: NDPrefixSumEngine(synopsis.layout, synopsis.counts),
    )
    register_engine_sealer(
        MultiDimGridSynopsis,
        lambda synopsis: NDPrefixSumEngine.precompute(
            synopsis.layout, synopsis.counts
        ),
        lambda synopsis, slabs: NDPrefixSumEngine.from_slabs(
            synopsis.layout, slabs
        ),
    )


_register_engine()
