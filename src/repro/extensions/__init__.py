"""Extensions beyond the paper's 2-D scope (its stated future work)."""

from repro.extensions.multidim import (
    NDBox,
    NDGridLayout,
    NDUniformGridBuilder,
    NDUniformGridSynopsis,
    guideline1_nd_grid_size,
)

__all__ = [
    "NDBox",
    "NDGridLayout",
    "NDUniformGridBuilder",
    "NDUniformGridSynopsis",
    "guideline1_nd_grid_size",
]
