"""Plain-text rendering of experiment results.

The paper reports two kinds of graphics; we render both as aligned text
tables suitable for terminals and for diffing into EXPERIMENTS.md:

* line graphs (mean relative error per query size) → a sizes x methods
  table (:func:`mean_by_size_table`);
* candlesticks (pooled error profiles) → a methods x statistics table
  (:func:`profile_table`).
"""

from __future__ import annotations

from repro.experiments.runner import MethodResult

__all__ = ["format_table", "mean_by_size_table", "profile_table"]


def format_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Align a header + rows into a monospace table."""
    columns = [headers] + rows
    widths = [
        max(len(str(row[i])) for row in columns) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def mean_by_size_table(results: list[MethodResult], title: str | None = None) -> str:
    """Rows = query sizes, columns = methods, cells = mean relative error."""
    if not results:
        raise ValueError("no results to render")
    size_labels = results[0].size_labels
    headers = ["size"] + [result.label for result in results]
    rows = []
    means = [result.mean_relative_by_size() for result in results]
    for size_label in size_labels:
        rows.append(
            [size_label] + [f"{mean[size_label]:.4f}" for mean in means]
        )
    rows.append(
        ["all"] + [f"{result.mean_relative():.4f}" for result in results]
    )
    return format_table(headers, rows, title=title)


def profile_table(
    results: list[MethodResult],
    absolute: bool = False,
    title: str | None = None,
) -> str:
    """Rows = methods, columns = the candlestick statistics."""
    if not results:
        raise ValueError("no results to render")
    headers = ["method", "p25", "median", "p75", "p95", "mean"]
    rows = []
    for result in results:
        profile = result.absolute_profile() if absolute else result.relative_profile()
        rows.append(
            [result.label]
            + [f"{value:.4f}" for value in profile.as_row()]
        )
    return format_table(headers, rows, title=title)
