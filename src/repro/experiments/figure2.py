"""Figure 2 — comparing KD-standard, KD-hybrid and UG at several grid sizes.

For each dataset and epsilon the paper plots the mean relative error per
query size (line graphs) and the pooled error candlesticks for
KD-standard, KD-hybrid and UG at a range of grid sizes bracketing the
Guideline 1 suggestion.  The headline observations this reproduces:

* there is a distinct band of good UG sizes; errors grow on both sides;
* UG at a good size matches or beats KD-hybrid, and KD-standard trails.
"""

from __future__ import annotations

from repro.baselines.kd_tree import KDHybridBuilder, KDStandardBuilder
from repro.core.guidelines import guideline1_grid_size
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import ExperimentReport, standard_setup
from repro.experiments.report import mean_by_size_table, profile_table
from repro.experiments.runner import evaluate_builders
from repro.experiments.table2 import candidate_ladder

__all__ = ["run"]


def run(
    dataset_name: str,
    epsilon: float,
    ug_sizes: list[int] | None = None,
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Regenerate one panel row of Figure 2.

    ``ug_sizes`` defaults to a factor-two ladder around Guideline 1's
    suggestion, the same coverage as the paper's panels.
    """
    setup = standard_setup(
        dataset_name, n_points=n_points, queries_per_size=queries_per_size
    )
    if ug_sizes is None:
        suggested = guideline1_grid_size(setup.dataset.size, epsilon)
        ug_sizes = candidate_ladder(suggested, n_steps=2)

    builders = [KDStandardBuilder(), KDHybridBuilder()]
    builders += [UniformGridBuilder(grid_size=size) for size in ug_sizes]

    results = evaluate_builders(
        builders, setup.dataset, setup.workload, epsilon,
        n_trials=n_trials, seed=seed, n_workers=n_workers,
    )

    report = ExperimentReport(
        title=f"Figure 2: KD vs UG on {dataset_name}, eps={epsilon:g}"
    )
    report.add(
        mean_by_size_table(results, title="mean relative error per query size")
    )
    report.add(profile_table(results, title="pooled relative-error candlesticks"))
    report.data["results"] = {result.label: result for result in results}
    report.data["ug_sizes"] = ug_sizes
    return report
