"""Figure 1 — dataset illustrations.

The paper's Figure 1 is four scatter plots.  In a text environment we
render each dataset as an ASCII density map and report the structural
statistics the paper's narrative relies on: the fraction of empty space
(road/checkin have large blanks), density skew (checkin/landmark are
heavily non-uniform), and the total point count versus Table II.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.grid import GridLayout
from repro.datasets.registry import dataset_names, get_spec
from repro.experiments.base import ExperimentReport

__all__ = ["density_map", "dataset_statistics", "run"]

_SHADES = " .:-=+*#%@"


def density_map(dataset: GeoDataset, columns: int = 72, rows: int = 24) -> str:
    """An ASCII rendering of the dataset's point density."""
    layout = GridLayout(dataset.domain, columns, rows)
    histogram = layout.histogram(dataset.points)
    if histogram.max() <= 0:
        return "\n".join(" " * columns for _ in range(rows))
    # Log scale so sparse structure stays visible next to dense cities.
    levels = np.log1p(histogram) / np.log1p(histogram.max())
    indices = np.minimum((levels * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1)
    lines = []
    for j in range(rows - 1, -1, -1):  # y increases upward
        lines.append("".join(_SHADES[indices[i, j]] for i in range(columns)))
    return "\n".join(lines)


def dataset_statistics(dataset: GeoDataset, grid_size: int = 64) -> dict[str, float]:
    """Structure metrics: emptiness, skew, and concentration."""
    layout = GridLayout(dataset.domain, grid_size)
    histogram = layout.histogram(dataset.points)
    flat = np.sort(histogram.reshape(-1))[::-1]
    total = flat.sum()
    top_1_percent = max(1, flat.size // 100)
    return {
        "n_points": float(dataset.size),
        "empty_cell_fraction": float(np.mean(histogram == 0)),
        "top1pct_mass_fraction": float(flat[:top_1_percent].sum() / total)
        if total
        else 0.0,
        "max_cell_fraction": float(flat[0] / total) if total else 0.0,
    }


def run(
    n_points: dict[str, int] | None = None,
    data_seed: int = 7,
    render_maps: bool = True,
) -> ExperimentReport:
    """Regenerate Figure 1: maps + structure statistics for all datasets."""
    report = ExperimentReport(title="Figure 1: dataset illustrations")
    stats_by_dataset: dict[str, dict[str, float]] = {}
    for name in dataset_names():
        spec = get_spec(name)
        override = (n_points or {}).get(name)
        dataset = spec.make(n=override, rng=np.random.default_rng(data_seed))
        stats = dataset_statistics(dataset)
        stats_by_dataset[name] = stats
        lines = [
            f"[{name}] {spec.description}",
            f"  points: {dataset.size} (paper: {spec.paper_n})",
            f"  domain: {dataset.domain!r}",
            f"  empty 64x64 cells: {stats['empty_cell_fraction']:.1%}",
            f"  mass in top 1% cells: {stats['top1pct_mass_fraction']:.1%}",
        ]
        if render_maps:
            lines.append(density_map(dataset))
        report.add("\n".join(lines))
    report.data["statistics"] = stats_by_dataset
    return report
