"""Figure 4 — the AG parameter study.

Three sub-experiments per dataset/epsilon, matching the figure's columns:

1. **versus UG/Privelet** (:func:`run_versus_ug`): AG at several first-level
   sizes against the best UG and Privelet at the same grid — AG should win
   across all query sizes.
2. **varying m1** (:func:`run_vary_m1`): AG is less sensitive to its grid
   size than UG, and the suggested ``m1`` sits at or near the optimum.
3. **varying alpha and c2** (:func:`run_vary_alpha_c2`): ``c2 = 5``
   clearly beats 10 and 15; ``alpha`` in {0.25, 0.5} are similar and 0.75
   is worse.
"""

from __future__ import annotations

from repro.baselines.privelet import PriveletBuilder
from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.core.guidelines import adaptive_first_level_size
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import ExperimentReport, standard_setup
from repro.experiments.report import mean_by_size_table, profile_table
from repro.experiments.runner import evaluate_builder, evaluate_builders
from repro.experiments.table2 import candidate_ladder

__all__ = ["run_versus_ug", "run_vary_m1", "run_vary_alpha_c2", "run"]

#: The alpha and c2 grids of Figure 4's third/fourth columns.
ALPHA_VALUES = (0.25, 0.5, 0.75)
C2_VALUES = (5.0, 10.0, 15.0)


def run_versus_ug(
    dataset_name: str,
    epsilon: float,
    ug_size: int,
    ag_m1_values: list[int],
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Column 1: AG at several m1 versus UG and Privelet at ``ug_size``."""
    setup = standard_setup(
        dataset_name, n_points=n_points, queries_per_size=queries_per_size
    )
    builders = [
        UniformGridBuilder(grid_size=ug_size),
        PriveletBuilder(grid_size=ug_size),
    ]
    builders += [AdaptiveGridBuilder(first_level_size=m1) for m1 in ag_m1_values]
    results = evaluate_builders(
        builders, setup.dataset, setup.workload, epsilon,
        n_trials=n_trials, seed=seed, n_workers=n_workers,
    )
    report = ExperimentReport(
        title=f"Figure 4 (vs UG): {dataset_name}, eps={epsilon:g}"
    )
    report.add(mean_by_size_table(results, title="mean relative error per query size"))
    report.data["results"] = {result.label: result for result in results}
    return report


def run_vary_m1(
    dataset_name: str,
    epsilon: float,
    m1_values: list[int] | None = None,
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Column 2: sensitivity of AG to the first-level grid size."""
    setup = standard_setup(
        dataset_name, n_points=n_points, queries_per_size=queries_per_size
    )
    suggested = adaptive_first_level_size(setup.dataset.size, epsilon)
    if m1_values is None:
        m1_values = candidate_ladder(suggested, n_steps=2)
    builders = [AdaptiveGridBuilder(first_level_size=m1) for m1 in m1_values]
    results = evaluate_builders(
        builders, setup.dataset, setup.workload, epsilon,
        n_trials=n_trials, seed=seed, n_workers=n_workers,
    )
    report = ExperimentReport(
        title=f"Figure 4 (vary m1): {dataset_name}, eps={epsilon:g}, "
        f"suggested m1={suggested}"
    )
    report.add(profile_table(results, title="pooled relative-error candlesticks"))
    report.data["results"] = {result.label: result for result in results}
    report.data["suggested_m1"] = suggested
    report.data["m1_values"] = m1_values
    return report


def run_vary_alpha_c2(
    dataset_name: str,
    epsilon: float,
    m1: int,
    alphas: tuple[float, ...] = ALPHA_VALUES,
    c2_values: tuple[float, ...] = C2_VALUES,
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Columns 3-4: the 3 x 3 grid of (alpha, c2) candlesticks at fixed m1."""
    setup = standard_setup(
        dataset_name, n_points=n_points, queries_per_size=queries_per_size
    )
    results = []
    mean_grid: dict[tuple[float, float], float] = {}
    for alpha in alphas:
        for c2 in c2_values:
            builder = AdaptiveGridBuilder(first_level_size=m1, alpha=alpha, c2=c2)
            result = evaluate_builder(
                builder, setup.dataset, setup.workload, epsilon,
                n_trials=n_trials, seed=seed, n_workers=n_workers,
                label=f"A{m1},{c2:g}(a={alpha:g})",
            )
            results.append(result)
            mean_grid[(alpha, c2)] = result.mean_relative()
    report = ExperimentReport(
        title=f"Figure 4 (vary alpha, c2): {dataset_name}, eps={epsilon:g}, m1={m1}"
    )
    report.add(profile_table(results, title="pooled relative-error candlesticks"))
    report.data["results"] = {result.label: result for result in results}
    report.data["mean_grid"] = mean_grid
    return report


def run(
    dataset_name: str,
    epsilon: float,
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> ExperimentReport:
    """All three Figure 4 sub-experiments, with paper-like default settings."""
    setup = standard_setup(dataset_name, n_points=n_points, queries_per_size=8)
    suggested_m1 = adaptive_first_level_size(setup.dataset.size, epsilon)
    vary_m1 = run_vary_m1(
        dataset_name, epsilon, n_points=n_points,
        queries_per_size=queries_per_size, n_trials=n_trials, seed=seed,
        n_workers=n_workers,
    )
    vary_alpha = run_vary_alpha_c2(
        dataset_name, epsilon, m1=suggested_m1, n_points=n_points,
        queries_per_size=queries_per_size, n_trials=n_trials, seed=seed,
        n_workers=n_workers,
    )
    report = ExperimentReport(
        title=f"Figure 4: AG parameter study on {dataset_name}, eps={epsilon:g}"
    )
    for sub_report in (vary_m1, vary_alpha):
        report.add(sub_report.render())
        report.data[sub_report.title] = sub_report.data
    return report
