"""Experiment runner: fit synopses and collect per-query errors.

The runner is the bridge between the algorithm layer and the per-figure
experiment modules: given a builder, a dataset and a workload it repeats
``fit + answer`` over independent trials and accumulates relative and
absolute errors per query size, mirroring the paper's methodology
(Section V-A: 200 random queries per size, relative error with floor
``rho = 0.001 N``, candlestick summaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.synopsis import SynopsisBuilder
from repro.queries.metrics import (
    ErrorProfile,
    absolute_errors,
    relative_errors,
)
from repro.queries.workload import QueryWorkload

__all__ = ["MethodResult", "evaluate_builder", "evaluate_builders"]


@dataclass
class MethodResult:
    """Pooled errors of one method over a workload (possibly many trials)."""

    label: str
    size_labels: list[str]
    relative_by_size: dict[str, np.ndarray] = field(default_factory=dict)
    absolute_by_size: dict[str, np.ndarray] = field(default_factory=dict)

    def mean_relative_by_size(self) -> dict[str, float]:
        """Mean relative error per query size (the paper's line graphs)."""
        return {
            label: float(errors.mean())
            for label, errors in self.relative_by_size.items()
        }

    def pooled_relative(self) -> np.ndarray:
        """All relative errors across sizes (the paper's candlesticks)."""
        return np.concatenate([self.relative_by_size[s] for s in self.size_labels])

    def pooled_absolute(self) -> np.ndarray:
        return np.concatenate([self.absolute_by_size[s] for s in self.size_labels])

    def relative_profile(self) -> ErrorProfile:
        return ErrorProfile.from_errors(self.pooled_relative())

    def absolute_profile(self) -> ErrorProfile:
        return ErrorProfile.from_errors(self.pooled_absolute())

    def mean_relative(self) -> float:
        return float(self.pooled_relative().mean())

    def mean_absolute(self) -> float:
        return float(self.pooled_absolute().mean())


def evaluate_builder(
    builder: SynopsisBuilder,
    dataset: GeoDataset,
    workload: QueryWorkload,
    epsilon: float,
    n_trials: int = 1,
    seed: int = 0,
    label: str | None = None,
) -> MethodResult:
    """Fit ``builder`` ``n_trials`` times and pool the per-query errors.

    Each trial uses an independent RNG stream derived from ``seed``, so
    runs are reproducible and methods can be compared on identical
    workloads.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    size_labels = workload.size_labels
    result = MethodResult(label=label or builder.label(), size_labels=size_labels)
    relative_chunks: dict[str, list[np.ndarray]] = {s: [] for s in size_labels}
    absolute_chunks: dict[str, list[np.ndarray]] = {s: [] for s in size_labels}

    seed_sequence = np.random.SeedSequence(seed)
    for child in seed_sequence.spawn(n_trials):
        rng = np.random.default_rng(child)
        synopsis = builder.fit(dataset, epsilon, rng)
        for query_set in workload.query_sets:
            estimates = synopsis.answer_many(query_set.rects)
            relative_chunks[query_set.size.label].append(
                relative_errors(estimates, query_set.true_answers, dataset.size)
            )
            absolute_chunks[query_set.size.label].append(
                absolute_errors(estimates, query_set.true_answers)
            )

    for size_label in size_labels:
        result.relative_by_size[size_label] = np.concatenate(
            relative_chunks[size_label]
        )
        result.absolute_by_size[size_label] = np.concatenate(
            absolute_chunks[size_label]
        )
    return result


def evaluate_builders(
    builders: list[SynopsisBuilder],
    dataset: GeoDataset,
    workload: QueryWorkload,
    epsilon: float,
    n_trials: int = 1,
    seed: int = 0,
) -> list[MethodResult]:
    """Evaluate several methods on the *same* dataset and workload."""
    return [
        evaluate_builder(
            builder, dataset, workload, epsilon, n_trials=n_trials, seed=seed
        )
        for builder in builders
    ]
