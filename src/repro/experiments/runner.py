"""Experiment runner: fit synopses and collect per-query errors.

The runner is the bridge between the algorithm layer and the per-figure
experiment modules: given a builder, a dataset and a workload it repeats
``fit + answer`` over independent trials and accumulates relative and
absolute errors per query size, mirroring the paper's methodology
(Section V-A: 200 random queries per size, relative error with floor
``rho = 0.001 N``, candlestick summaries).

Trials are embarrassingly parallel: each one derives its RNG solely from
its own ``SeedSequence.spawn`` child and never touches another trial's
state.  ``evaluate_builder(..., n_workers=4)`` therefore fans trials out
over a ``ProcessPoolExecutor`` with a hard determinism contract: **the
pooled errors are bit-identical to the serial run for the same seed,
regardless of worker count**, because (a) every trial's stream depends
only on its spawn index and (b) per-trial error chunks are concatenated
in trial order, not completion order.  ``n_workers`` defaults to the
``REPRO_WORKERS`` environment variable (serial when unset), and 0 means
one worker per CPU.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.synopsis import SynopsisBuilder
from repro.queries.metrics import (
    ErrorProfile,
    absolute_errors,
    relative_errors,
)
from repro.queries.workload import QueryWorkload

__all__ = [
    "MethodResult",
    "evaluate_builder",
    "evaluate_builders",
    "resolve_n_workers",
]

#: Per-size error chunks of one trial: label -> (relative, absolute).
_TrialErrors = dict[str, tuple[np.ndarray, np.ndarray]]


@dataclass
class MethodResult:
    """Pooled errors of one method over a workload (possibly many trials)."""

    label: str
    size_labels: list[str]
    relative_by_size: dict[str, np.ndarray] = field(default_factory=dict)
    absolute_by_size: dict[str, np.ndarray] = field(default_factory=dict)

    def mean_relative_by_size(self) -> dict[str, float]:
        """Mean relative error per query size (the paper's line graphs)."""
        return {
            label: float(errors.mean())
            for label, errors in self.relative_by_size.items()
        }

    def pooled_relative(self) -> np.ndarray:
        """All relative errors across sizes (the paper's candlesticks)."""
        return np.concatenate([self.relative_by_size[s] for s in self.size_labels])

    def pooled_absolute(self) -> np.ndarray:
        return np.concatenate([self.absolute_by_size[s] for s in self.size_labels])

    def relative_profile(self) -> ErrorProfile:
        return ErrorProfile.from_errors(self.pooled_relative())

    def absolute_profile(self) -> ErrorProfile:
        return ErrorProfile.from_errors(self.pooled_absolute())

    def mean_relative(self) -> float:
        return float(self.pooled_relative().mean())

    def mean_absolute(self) -> float:
        return float(self.pooled_absolute().mean())


def resolve_n_workers(n_workers: int | None) -> int:
    """Normalise an ``n_workers`` request to an actual worker count.

    ``None`` reads the ``REPRO_WORKERS`` environment variable and falls
    back to 1 (serial); ``0`` means one worker per available CPU.
    """
    if n_workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        n_workers = int(raw) if raw else 1
    if n_workers == 0:
        n_workers = os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    return n_workers


def _trial_errors(
    builder: SynopsisBuilder,
    dataset: GeoDataset,
    workload: QueryWorkload,
    epsilon: float,
    child: np.random.SeedSequence,
) -> _TrialErrors:
    """One independent trial: fit from the child stream, measure errors.

    This is the single implementation both the serial loop and the
    process pool execute; the determinism contract rests on the trial's
    randomness coming only from ``child``.
    """
    rng = np.random.default_rng(child)
    synopsis = builder.fit(dataset, epsilon, rng)
    # One batch over every size: engines answer each query independently
    # of its batch-mates, so the estimates are bit-identical to per-size
    # batches while the fixed per-batch engine cost is paid once.
    estimates_all = synopsis.answer_many(workload.all_rects())
    errors: _TrialErrors = {}
    offset = 0
    for query_set in workload.query_sets:
        estimates = estimates_all[offset : offset + len(query_set.rects)]
        offset += len(query_set.rects)
        errors[query_set.size.label] = (
            relative_errors(estimates, query_set.true_answers, dataset.size),
            absolute_errors(estimates, query_set.true_answers),
        )
    return errors


# Worker-side state, installed once per worker by the pool initializer so
# the heavy (dataset, workload) payload is pickled per worker — never per
# trial, and never per builder when a pool is shared across builders.
_WORKER_STATE: dict = {}


def _pool_init(dataset: GeoDataset, workload: QueryWorkload) -> None:
    _WORKER_STATE["data"] = (dataset, workload)


def _pool_trial(
    task: tuple[SynopsisBuilder, float, np.random.SeedSequence],
) -> _TrialErrors:
    builder, epsilon, child = task
    dataset, workload = _WORKER_STATE["data"]
    return _trial_errors(builder, dataset, workload, epsilon, child)


def _trial_pool(
    dataset: GeoDataset, workload: QueryWorkload, max_workers: int
) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_pool_init,
        initargs=(dataset, workload),
    )


def evaluate_builder(
    builder: SynopsisBuilder,
    dataset: GeoDataset,
    workload: QueryWorkload,
    epsilon: float,
    n_trials: int = 1,
    seed: int = 0,
    label: str | None = None,
    n_workers: int | None = None,
    _executor: ProcessPoolExecutor | None = None,
) -> MethodResult:
    """Fit ``builder`` ``n_trials`` times and pool the per-query errors.

    Each trial uses an independent RNG stream derived from ``seed``, so
    runs are reproducible and methods can be compared on identical
    workloads.  With ``n_workers > 1`` the trials run in a process pool;
    the result is bit-identical to the serial run (see module docstring).
    ``_executor`` lets :func:`evaluate_builders` share one pool (built by
    :func:`_trial_pool` over the same dataset and workload) across
    builders instead of re-spawning workers per method.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    n_workers = resolve_n_workers(n_workers)
    size_labels = workload.size_labels
    result = MethodResult(label=label or builder.label(), size_labels=size_labels)

    children = np.random.SeedSequence(seed).spawn(n_trials)
    run_pooled = n_workers > 1 and n_trials > 1
    if _executor is not None or run_pooled:
        tasks = [(builder, epsilon, child) for child in children]
        # Executor.map preserves submission order, so pooling below
        # concatenates chunks in trial order exactly as the serial loop
        # does — completion order never leaks into the result.
        if _executor is not None:
            trials = list(_executor.map(_pool_trial, tasks))
        else:
            with _trial_pool(
                dataset, workload, min(n_workers, n_trials)
            ) as pool:
                trials = list(pool.map(_pool_trial, tasks))
    else:
        trials = [
            _trial_errors(builder, dataset, workload, epsilon, child)
            for child in children
        ]

    for size_label in size_labels:
        result.relative_by_size[size_label] = np.concatenate(
            [trial[size_label][0] for trial in trials]
        )
        result.absolute_by_size[size_label] = np.concatenate(
            [trial[size_label][1] for trial in trials]
        )
    return result


def evaluate_builders(
    builders: list[SynopsisBuilder],
    dataset: GeoDataset,
    workload: QueryWorkload,
    epsilon: float,
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> list[MethodResult]:
    """Evaluate several methods on the *same* dataset and workload.

    When trials are pooled, one process pool (and one per-worker
    dataset + workload transfer) is shared across all builders.
    """
    n_workers = resolve_n_workers(n_workers)
    if n_workers > 1 and n_trials > 1 and len(builders) > 1:
        with _trial_pool(dataset, workload, min(n_workers, n_trials)) as pool:
            return [
                evaluate_builder(
                    builder, dataset, workload, epsilon,
                    n_trials=n_trials, seed=seed, n_workers=n_workers,
                    _executor=pool,
                )
                for builder in builders
            ]
    return [
        evaluate_builder(
            builder, dataset, workload, epsilon,
            n_trials=n_trials, seed=seed, n_workers=n_workers,
        )
        for builder in builders
    ]
