"""Table I — the paper's algorithm notation, as a parser.

The experiments refer to configurations by the paper's compact labels:

=========  =====================================================
``Kst``    KD-standard
``Khy``    KD-hybrid
``Um``     UG with an ``m x m`` grid (e.g. ``U64``)
``Wm``     Privelet over an ``m x m`` grid (e.g. ``W360``)
``Hb,d``   hierarchy with ``b x b`` branching and ``d`` levels
``Am1,c2`` AG with first-level grid ``m1`` and constant ``c2``
=========  =====================================================

:func:`parse_notation` turns such a label into a configured builder, so
experiment scripts and benches can be written in the paper's own
vocabulary.
"""

from __future__ import annotations

import re

from repro.baselines.hierarchy import HierarchicalGridBuilder
from repro.baselines.kd_tree import KDHybridBuilder, KDStandardBuilder
from repro.baselines.privelet import PriveletBuilder
from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.core.synopsis import SynopsisBuilder
from repro.core.uniform_grid import UniformGridBuilder

__all__ = ["parse_notation", "NOTATION_HELP"]

NOTATION_HELP = {
    "Kst": "KD-standard",
    "Khy": "KD-hybrid",
    "Um": "UG with m x m grid",
    "Wm": "Privelet with m x m grid",
    "Hb,d": "Hierarchy with d levels and b x b branching",
    "Am1,c2": "AG with m1 x m1 grid and the given c2 value",
}

_UG_PATTERN = re.compile(r"^U(\d+)$")
_PRIVELET_PATTERN = re.compile(r"^W(\d+)$")
_HIERARCHY_PATTERN = re.compile(r"^H(\d+),(\d+)$")
_AG_PATTERN = re.compile(r"^A(\d+),(\d+(?:\.\d+)?)$")


def parse_notation(
    label: str,
    hierarchy_leaf_size: int = 360,
    alpha: float = 0.5,
) -> SynopsisBuilder:
    """Build the synopsis builder named by a Table I label.

    ``hierarchy_leaf_size`` supplies the leaf grid for ``Hb,d`` labels
    (the paper's Figure 3 builds hierarchies over a 360 x 360 grid);
    ``alpha`` sets AG's budget split.

    >>> parse_notation("U64").grid_size
    64
    >>> parse_notation("A16,5").first_level_size
    16
    """
    label = label.strip()
    if label == "Kst":
        return KDStandardBuilder()
    if label == "Khy":
        return KDHybridBuilder()
    if label in {"UG", "Uauto"}:
        return UniformGridBuilder()
    if label in {"AG", "Aauto"}:
        return AdaptiveGridBuilder(alpha=alpha)

    match = _UG_PATTERN.match(label)
    if match:
        return UniformGridBuilder(grid_size=int(match.group(1)))

    match = _PRIVELET_PATTERN.match(label)
    if match:
        return PriveletBuilder(grid_size=int(match.group(1)))

    match = _HIERARCHY_PATTERN.match(label)
    if match:
        branching, depth = int(match.group(1)), int(match.group(2))
        return HierarchicalGridBuilder(
            leaf_grid_size=hierarchy_leaf_size, branching=branching, depth=depth
        )

    match = _AG_PATTERN.match(label)
    if match:
        first_level = int(match.group(1))
        c2 = float(match.group(2))
        return AdaptiveGridBuilder(
            first_level_size=first_level, c2=c2, alpha=alpha
        )

    raise ValueError(
        f"unrecognised algorithm notation {label!r}; see NOTATION_HELP "
        f"for the supported forms"
    )
