"""Figure 6 — the final comparison in absolute error.

Thin wrapper over :mod:`repro.experiments.figure5` with ``absolute=True``;
the two figures share the same six method configurations and runs.  The
extra observation Figure 6 adds (and this module's report preserves): on
the highly uniform *road* dataset, UG at the *suggested* size beats UG at
the size tuned for relative error — the guideline was derived
metric-agnostically and holds up under absolute error.
"""

from __future__ import annotations

from repro.experiments import figure5
from repro.experiments.base import ExperimentReport

__all__ = ["run"]


def run(
    dataset_name: str,
    epsilon: float,
    best_ug_size: int | None = None,
    best_ag_m1: int | None = None,
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    sweep_steps: int = 1,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Regenerate one Figure 6 panel (absolute-error candlesticks)."""
    return figure5.run(
        dataset_name,
        epsilon,
        best_ug_size=best_ug_size,
        best_ag_m1=best_ag_m1,
        n_points=n_points,
        queries_per_size=queries_per_size,
        n_trials=n_trials,
        seed=seed,
        absolute=True,
        sweep_steps=sweep_steps,
        n_workers=n_workers,
    )
