"""Run the entire evaluation suite and produce one combined report.

``run_suite`` regenerates every table/figure at a chosen scale and stitches
the individual reports together — the programmatic equivalent of
``pytest benchmarks/ --benchmark-only``, convenient for one-shot rebuilds
of all result tables (e.g. when refreshing EXPERIMENTS.md) and exposed on
the CLI as ``python -m repro suite``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.registry import dataset_names
from repro.experiments import figure1, figure2, figure3, figure4, figure5, figure6, table2
from repro.experiments.base import ExperimentReport

__all__ = ["SuiteScale", "run_suite", "QUICK_SCALE", "FULL_SCALE"]


@dataclass(frozen=True)
class SuiteScale:
    """How big to run the suite.

    ``n_points`` of ``None`` uses each dataset's registry default; the
    storage dataset always runs at its full 9,000 points.  ``n_trials``
    and ``n_workers`` are threaded to every ``evaluate_builder`` call
    (``n_workers=None`` keeps the serial default; parallel pooling is
    bit-identical to serial, see :mod:`repro.experiments.runner`).
    """

    n_points: dict = field(default_factory=dict)
    queries_per_size: int = 100
    epsilons: tuple[float, ...] = (1.0, 0.1)
    datasets: tuple[str, ...] = ("road", "checkin", "landmark", "storage")
    figure3_datasets: tuple[str, ...] = ("checkin", "landmark")
    seed: int = 0
    n_trials: int = 1
    n_workers: int | None = None


#: A fast sanity-scale run (minutes).
QUICK_SCALE = SuiteScale(
    n_points={"road": 40_000, "checkin": 40_000, "landmark": 40_000},
    queries_per_size=40,
    epsilons=(1.0,),
)

#: The benchmark-suite scale (see benchmarks/conftest.py).
FULL_SCALE = SuiteScale(
    n_points={"road": 150_000, "checkin": 150_000, "landmark": 120_000},
    queries_per_size=100,
)


def run_suite(scale: SuiteScale = QUICK_SCALE) -> ExperimentReport:
    """Regenerate every experiment; returns one combined report.

    Sub-reports appear in the paper's order: Figure 1, Table II,
    Figures 2-6.  ``report.data`` maps sub-report titles to their data.
    """
    combined = ExperimentReport(title="Full evaluation suite")

    def include(report: ExperimentReport) -> None:
        combined.add(report.render())
        combined.data[report.title] = report.data

    include(figure1.run(n_points=scale.n_points or None, render_maps=False))
    include(
        table2.run(
            dataset_names=list(scale.datasets),
            epsilons=scale.epsilons,
            queries_per_size=scale.queries_per_size,
            ladder_steps=1,
            seed=scale.seed,
            n_trials=scale.n_trials,
            n_workers=scale.n_workers,
        )
    )

    def n_for(name: str) -> int | None:
        return scale.n_points.get(name)

    for name in scale.datasets:
        for epsilon in scale.epsilons:
            include(
                figure2.run(
                    name, epsilon, n_points=n_for(name),
                    queries_per_size=scale.queries_per_size, seed=scale.seed,
                    n_trials=scale.n_trials, n_workers=scale.n_workers,
                )
            )
    for name in scale.figure3_datasets:
        if name in scale.datasets:
            include(
                figure3.run(
                    name, scale.epsilons[0], n_points=n_for(name),
                    queries_per_size=scale.queries_per_size, seed=scale.seed,
                    n_trials=scale.n_trials, n_workers=scale.n_workers,
                )
            )
    for name in scale.figure3_datasets:
        if name in scale.datasets:
            include(
                figure4.run_vary_m1(
                    name, scale.epsilons[0], n_points=n_for(name),
                    queries_per_size=scale.queries_per_size, seed=scale.seed,
                    n_trials=scale.n_trials, n_workers=scale.n_workers,
                )
            )
    for name in scale.datasets:
        for epsilon in scale.epsilons:
            include(
                figure5.run(
                    name, epsilon, n_points=n_for(name),
                    queries_per_size=scale.queries_per_size,
                    seed=scale.seed, sweep_steps=1,
                    n_trials=scale.n_trials, n_workers=scale.n_workers,
                )
            )
            include(
                figure6.run(
                    name, epsilon, n_points=n_for(name),
                    queries_per_size=scale.queries_per_size,
                    seed=scale.seed, sweep_steps=1,
                    n_trials=scale.n_trials, n_workers=scale.n_workers,
                )
            )
    return combined


def available_suite_datasets() -> list[str]:
    """All dataset names a :class:`SuiteScale` may reference."""
    return dataset_names()
