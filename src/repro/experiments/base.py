"""Shared plumbing for the per-figure experiment modules.

Every experiment module exposes a ``run(...) -> ExperimentReport`` function
that (a) sets up a dataset + workload, (b) evaluates a list of method
configurations, and (c) renders the same rows/series the paper's
corresponding figure or table shows.  This module holds the pieces they
share: the report container and the standard setup from the dataset
registry.

Experiments accept ``n_points`` / ``queries_per_size`` / ``n_trials``
overrides so the benchmark targets can trade fidelity for runtime; the
defaults mirror the paper (full default dataset size, 200 queries per
size).  They also accept ``n_workers`` (threaded through to
:func:`repro.experiments.runner.evaluate_builder`'s process pool).

``standard_setup`` memoises one :class:`ExperimentSetup` per
``(dataset, n_points, queries_per_size, seeds)`` tuple: an epsilon sweep
(``suite.py``, ``table2.py``, the per-figure CLI loops) re-requests the
same dataset + workload once per epsilon, and the workload's ground
truth — the most expensive part of setup — does not depend on epsilon at
all.  Setups are deterministic functions of their key, so sharing the
cached instance never changes results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.datasets.registry import get_spec
from repro.queries.workload import QueryWorkload

__all__ = [
    "ExperimentReport",
    "ExperimentSetup",
    "standard_setup",
    "clear_setup_cache",
]


@dataclass
class ExperimentReport:
    """A rendered experiment: a title plus ordered text blocks.

    ``data`` carries machine-readable results (per-experiment structure)
    so tests and EXPERIMENTS.md generation don't have to parse the text.
    """

    title: str
    blocks: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def add(self, block: str) -> None:
        self.blocks.append(block)

    def render(self) -> str:
        separator = "\n\n"
        return f"== {self.title} ==\n\n{separator.join(self.blocks)}"


@dataclass
class ExperimentSetup:
    """A dataset together with its evaluation workload."""

    dataset: GeoDataset
    workload: QueryWorkload
    dataset_name: str


#: Memoised setups keyed by (name, n_points, queries_per_size, seeds).
#: Small and bounded in practice: one entry per distinct dataset scale a
#: process touches (the suite uses at most one per registry dataset).
_SETUP_CACHE: dict[tuple, ExperimentSetup] = {}

#: Safety valve so a long-lived process sweeping many scales cannot pin
#: an unbounded number of million-point datasets.
_SETUP_CACHE_MAX = 16


def clear_setup_cache() -> None:
    """Drop all memoised :func:`standard_setup` results."""
    _SETUP_CACHE.clear()


def standard_setup(
    dataset_name: str,
    n_points: int | None = None,
    queries_per_size: int = 200,
    data_seed: int = 7,
    query_seed: int = 11,
) -> ExperimentSetup:
    """Generate a registered dataset and its paper workload, reproducibly.

    The data and query RNGs are independent so changing the number of
    queries never changes the dataset.  Results are memoised per
    argument tuple (they are pure functions of it), so epsilon sweeps
    pay for dataset generation and workload ground truth once per
    dataset instead of once per (dataset, epsilon).
    """
    key = (dataset_name, n_points, queries_per_size, data_seed, query_seed)
    cached = _SETUP_CACHE.get(key)
    if cached is not None:
        return cached
    spec = get_spec(dataset_name)
    dataset = spec.make(n=n_points, rng=np.random.default_rng(data_seed))
    workload = spec.workload(
        dataset,
        rng=np.random.default_rng(query_seed),
        queries_per_size=queries_per_size,
    )
    setup = ExperimentSetup(
        dataset=dataset, workload=workload, dataset_name=dataset_name
    )
    if len(_SETUP_CACHE) >= _SETUP_CACHE_MAX:
        _SETUP_CACHE.pop(next(iter(_SETUP_CACHE)))
    _SETUP_CACHE[key] = setup
    return setup
