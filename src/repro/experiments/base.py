"""Shared plumbing for the per-figure experiment modules.

Every experiment module exposes a ``run(...) -> ExperimentReport`` function
that (a) sets up a dataset + workload, (b) evaluates a list of method
configurations, and (c) renders the same rows/series the paper's
corresponding figure or table shows.  This module holds the pieces they
share: the report container and the standard setup from the dataset
registry.

Experiments accept ``n_points`` / ``queries_per_size`` / ``n_trials``
overrides so the benchmark targets can trade fidelity for runtime; the
defaults mirror the paper (full default dataset size, 200 queries per
size).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.datasets.registry import get_spec
from repro.queries.workload import QueryWorkload

__all__ = ["ExperimentReport", "ExperimentSetup", "standard_setup"]


@dataclass
class ExperimentReport:
    """A rendered experiment: a title plus ordered text blocks.

    ``data`` carries machine-readable results (per-experiment structure)
    so tests and EXPERIMENTS.md generation don't have to parse the text.
    """

    title: str
    blocks: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def add(self, block: str) -> None:
        self.blocks.append(block)

    def render(self) -> str:
        separator = "\n\n"
        return f"== {self.title} ==\n\n{separator.join(self.blocks)}"


@dataclass
class ExperimentSetup:
    """A dataset together with its evaluation workload."""

    dataset: GeoDataset
    workload: QueryWorkload
    dataset_name: str


def standard_setup(
    dataset_name: str,
    n_points: int | None = None,
    queries_per_size: int = 200,
    data_seed: int = 7,
    query_seed: int = 11,
) -> ExperimentSetup:
    """Generate a registered dataset and its paper workload, reproducibly.

    The data and query RNGs are independent so changing the number of
    queries never changes the dataset.
    """
    spec = get_spec(dataset_name)
    dataset = spec.make(n=n_points, rng=np.random.default_rng(data_seed))
    workload = spec.workload(
        dataset,
        rng=np.random.default_rng(query_seed),
        queries_per_size=queries_per_size,
    )
    return ExperimentSetup(dataset=dataset, workload=workload, dataset_name=dataset_name)
