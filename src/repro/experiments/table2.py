"""Table II — suggested versus empirically best grid sizes.

For each dataset and epsilon the paper reports three grid sizes: the UG
size suggested by Guideline 1, the range of UG sizes that perform best
experimentally, and the range of best first-level sizes for AG.  This
module reruns that search: it sweeps a geometric ladder of candidate sizes
around the suggestion and reports where the minimum mean relative error
falls.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.core.guidelines import (
    adaptive_first_level_size,
    guideline1_grid_size,
)
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import ExperimentReport, ExperimentSetup, standard_setup
from repro.experiments.report import format_table
from repro.experiments.runner import evaluate_builders

__all__ = ["candidate_ladder", "sweep_ug_sizes", "sweep_ag_sizes", "run"]


def candidate_ladder(center: int, n_steps: int = 2, ratio: float = 2.0) -> list[int]:
    """Geometric ladder of candidate grid sizes around ``center``.

    ``n_steps = 2`` yields ``center / 4 .. center * 4`` in factor-two
    steps, deduplicated and floored at 1 — matching the coverage of the
    paper's Figure 2 sweeps.
    """
    if center < 1:
        raise ValueError(f"center must be >= 1, got {center}")
    sizes = {
        max(1, round(center * ratio**step)) for step in range(-n_steps, n_steps + 1)
    }
    return sorted(sizes)


def sweep_ug_sizes(
    setup: ExperimentSetup,
    epsilon: float,
    sizes: list[int],
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> dict[int, float]:
    """Mean relative error of UG at each candidate grid size."""
    results = evaluate_builders(
        [UniformGridBuilder(grid_size=size) for size in sizes],
        setup.dataset, setup.workload, epsilon,
        n_trials=n_trials, seed=seed, n_workers=n_workers,
    )
    return {size: result.mean_relative() for size, result in zip(sizes, results)}


def sweep_ag_sizes(
    setup: ExperimentSetup,
    epsilon: float,
    sizes: list[int],
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> dict[int, float]:
    """Mean relative error of AG at each candidate first-level size."""
    results = evaluate_builders(
        [AdaptiveGridBuilder(first_level_size=size) for size in sizes],
        setup.dataset, setup.workload, epsilon,
        n_trials=n_trials, seed=seed, n_workers=n_workers,
    )
    return {size: result.mean_relative() for size, result in zip(sizes, results)}


def _best(sweep: dict[int, float]) -> int:
    return min(sweep, key=sweep.get)


def run(
    dataset_names: list[str] | None = None,
    epsilons: tuple[float, ...] = (1.0, 0.1),
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    ladder_steps: int = 2,
    seed: int = 0,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Regenerate Table II's grid-size columns for the requested datasets."""
    from repro.datasets.registry import dataset_names as all_names

    names = dataset_names or all_names()
    report = ExperimentReport(title="Table II: suggested vs observed best grid sizes")
    headers = [
        "dataset", "epsilon", "N",
        "UG suggested", "UG best observed", "AG m1 suggested", "AG m1 best observed",
    ]
    rows = []
    details: dict[str, dict] = {}
    for name in names:
        setup = standard_setup(
            name, n_points=n_points, queries_per_size=queries_per_size
        )
        n = setup.dataset.size
        for epsilon in epsilons:
            ug_suggested = guideline1_grid_size(n, epsilon)
            ag_suggested = adaptive_first_level_size(n, epsilon)
            ug_sweep = sweep_ug_sizes(
                setup, epsilon, candidate_ladder(ug_suggested, ladder_steps),
                n_trials=n_trials, seed=seed, n_workers=n_workers,
            )
            ag_sweep = sweep_ag_sizes(
                setup, epsilon, candidate_ladder(ag_suggested, ladder_steps),
                n_trials=n_trials, seed=seed, n_workers=n_workers,
            )
            rows.append(
                [
                    name, f"{epsilon:g}", str(n),
                    str(ug_suggested), str(_best(ug_sweep)),
                    str(ag_suggested), str(_best(ag_sweep)),
                ]
            )
            details[f"{name}@eps={epsilon:g}"] = {
                "ug_suggested": ug_suggested,
                "ug_sweep": ug_sweep,
                "ag_suggested": ag_suggested,
                "ag_sweep": ag_sweep,
            }
    report.add(format_table(headers, rows))
    report.data["details"] = details
    return report
