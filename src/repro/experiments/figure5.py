"""Figures 5 and 6 — the final six-method comparison.

Per dataset and epsilon the paper compares, left to right: KD-hybrid, UG
at the best observed size, Privelet at that size, AG at the best observed
first-level size, UG at the suggested size, and AG at the suggested size.
Figure 5 reports relative error (line graphs + candlesticks); Figure 6
reports absolute error (log-scale candlesticks).  Both figures share the
same runs, so this module computes them once and renders either metric.

The headline shapes the reproduction must preserve: AG variants beat all
non-AG methods; UG at the suggested size is comparable to KD-hybrid; AG at
the suggested size is close to AG at the swept-best size.
"""

from __future__ import annotations

from repro.baselines.kd_tree import KDHybridBuilder
from repro.baselines.privelet import PriveletBuilder
from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.core.guidelines import (
    adaptive_first_level_size,
    guideline1_grid_size,
)
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import ExperimentReport, standard_setup
from repro.experiments.report import mean_by_size_table, profile_table
from repro.experiments.runner import evaluate_builders
from repro.experiments.table2 import candidate_ladder, sweep_ag_sizes, sweep_ug_sizes

__all__ = ["run"]


def run(
    dataset_name: str,
    epsilon: float,
    best_ug_size: int | None = None,
    best_ag_m1: int | None = None,
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    absolute: bool = False,
    sweep_steps: int = 1,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Regenerate one Figure 5 (or, with ``absolute=True``, Figure 6) panel.

    ``best_ug_size`` / ``best_ag_m1`` default to a quick sweep around the
    guideline suggestions (the paper uses the sizes found by Figure 2's and
    Figure 4's sweeps).
    """
    setup = standard_setup(
        dataset_name, n_points=n_points, queries_per_size=queries_per_size
    )
    n = setup.dataset.size
    suggested_ug = guideline1_grid_size(n, epsilon)
    suggested_m1 = adaptive_first_level_size(n, epsilon)

    if best_ug_size is None:
        sweep = sweep_ug_sizes(
            setup, epsilon, candidate_ladder(suggested_ug, sweep_steps),
            seed=seed, n_workers=n_workers,
        )
        best_ug_size = min(sweep, key=sweep.get)
    if best_ag_m1 is None:
        sweep = sweep_ag_sizes(
            setup, epsilon, candidate_ladder(suggested_m1, sweep_steps),
            seed=seed, n_workers=n_workers,
        )
        best_ag_m1 = min(sweep, key=sweep.get)

    builders = [
        KDHybridBuilder(),
        UniformGridBuilder(grid_size=best_ug_size),
        PriveletBuilder(grid_size=best_ug_size),
        AdaptiveGridBuilder(first_level_size=best_ag_m1),
        UniformGridBuilder(grid_size=suggested_ug),
        AdaptiveGridBuilder(first_level_size=suggested_m1),
    ]
    results = evaluate_builders(
        builders, setup.dataset, setup.workload, epsilon,
        n_trials=n_trials, seed=seed, n_workers=n_workers,
    )
    # Disambiguate the duplicated-looking labels the way the paper orders
    # them: best-observed first, suggested last.
    results[1].label = f"U{best_ug_size}(best)"
    results[4].label = f"U{suggested_ug}(sugg)"
    results[3].label = f"A{best_ag_m1},5(best)"
    results[5].label = f"A{suggested_m1},5(sugg)"

    figure = "Figure 6" if absolute else "Figure 5"
    metric = "absolute" if absolute else "relative"
    report = ExperimentReport(
        title=f"{figure}: final comparison ({metric} error) on "
        f"{dataset_name}, eps={epsilon:g}"
    )
    if not absolute:
        report.add(
            mean_by_size_table(results, title="mean relative error per query size")
        )
    report.add(
        profile_table(
            results, absolute=absolute,
            title=f"pooled {metric}-error candlesticks",
        )
    )
    report.data["results"] = {result.label: result for result in results}
    report.data["sizes"] = {
        "best_ug": best_ug_size,
        "suggested_ug": suggested_ug,
        "best_ag_m1": best_ag_m1,
        "suggested_m1": suggested_m1,
    }
    return report
