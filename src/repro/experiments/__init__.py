"""Experiments: one module per table/figure of the paper's evaluation."""

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    table2,
)
from repro.experiments.base import ExperimentReport, ExperimentSetup, standard_setup
from repro.experiments.naming import NOTATION_HELP, parse_notation
from repro.experiments.report import format_table, mean_by_size_table, profile_table
from repro.experiments.runner import MethodResult, evaluate_builder, evaluate_builders

__all__ = [
    "ExperimentReport",
    "ExperimentSetup",
    "MethodResult",
    "NOTATION_HELP",
    "evaluate_builder",
    "evaluate_builders",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "format_table",
    "mean_by_size_table",
    "parse_notation",
    "profile_table",
    "standard_setup",
    "table2",
]
