"""Figure 3 — the (small) effect of adding hierarchies to a uniform grid.

The paper fixes a 360 x 360 leaf grid and compares: UG at its best size,
UG at 360, Privelet at 360, and grid hierarchies ``H_{b,d}`` with several
branchings and depths, on the checkin and landmark datasets.  The
observation this reproduces: hierarchies give at most a small improvement
over plain UG at the same leaf size (Section IV-C explains why), while
Privelet gives a clearer (if modest) one.
"""

from __future__ import annotations

from repro.baselines.hierarchy import HierarchicalGridBuilder
from repro.baselines.privelet import PriveletBuilder
from repro.core.guidelines import guideline1_grid_size
from repro.core.uniform_grid import UniformGridBuilder
from repro.experiments.base import ExperimentReport, standard_setup
from repro.experiments.report import profile_table
from repro.experiments.runner import evaluate_builders

__all__ = ["DEFAULT_HIERARCHIES", "run"]

#: The hierarchy configurations of Figure 3: (branching, depth).
DEFAULT_HIERARCHIES: list[tuple[int, int]] = [
    (2, 4), (2, 3), (3, 3), (4, 2), (5, 2), (6, 2),
]


def run(
    dataset_name: str,
    epsilon: float,
    leaf_size: int = 360,
    best_ug_size: int | None = None,
    hierarchies: list[tuple[int, int]] | None = None,
    n_points: int | None = None,
    queries_per_size: int = 200,
    n_trials: int = 1,
    seed: int = 0,
    n_workers: int | None = None,
) -> ExperimentReport:
    """Regenerate one Figure 3 panel.

    ``leaf_size`` must be divisible by every ``branching^(depth-1)`` in
    ``hierarchies`` (360, the paper's choice, divides them all).
    ``best_ug_size`` defaults to Guideline 1's suggestion.
    """
    setup = standard_setup(
        dataset_name, n_points=n_points, queries_per_size=queries_per_size
    )
    if best_ug_size is None:
        best_ug_size = guideline1_grid_size(setup.dataset.size, epsilon)
    hierarchies = hierarchies if hierarchies is not None else DEFAULT_HIERARCHIES

    builders = [
        UniformGridBuilder(grid_size=best_ug_size),
        UniformGridBuilder(grid_size=leaf_size),
        PriveletBuilder(grid_size=leaf_size),
    ]
    builders += [
        HierarchicalGridBuilder(leaf_grid_size=leaf_size, branching=b, depth=d)
        for b, d in hierarchies
    ]

    results = evaluate_builders(
        builders, setup.dataset, setup.workload, epsilon,
        n_trials=n_trials, seed=seed, n_workers=n_workers,
    )
    report = ExperimentReport(
        title=f"Figure 3: hierarchies over a {leaf_size} grid on "
        f"{dataset_name}, eps={epsilon:g}"
    )
    report.add(profile_table(results, title="pooled relative-error candlesticks"))
    report.data["results"] = {result.label: result for result in results}
    return report
