"""Command-line front end for the experiment suite.

Regenerate any of the paper's tables/figures from a shell::

    python -m repro figure5 --dataset checkin --epsilon 1.0
    python -m repro table2 --datasets storage --epsilons 1.0 0.1
    python -m repro figure1
    python -m repro list

Reports print to stdout in the same tabular form the benchmark suite
writes to ``benchmarks/output/``.

The ``serve`` subcommand is routed to the serving layer instead
(:mod:`repro.service.cli`)::

    python -m repro serve --port 8731 --store-dir releases
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets.registry import dataset_names
from repro.experiments import figure1, figure2, figure3, figure4, figure5, figure6, table2

__all__ = ["main", "build_parser"]

EXPERIMENTS = {
    "figure1": "dataset illustrations and structure statistics",
    "figure2": "KD-standard vs KD-hybrid vs UG grid-size sweep",
    "figure3": "effect of hierarchies over a fixed leaf grid",
    "figure4": "AG parameter study (m1, alpha, c2)",
    "figure5": "final six-method comparison, relative error",
    "figure6": "final six-method comparison, absolute error",
    "table2": "suggested vs observed best grid sizes",
    "suite": "every experiment at quick scale, one combined report",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Differentially Private "
        "Grids for Geospatial Data' (ICDE 2013).",
        epilog="To serve released synopses over HTTP instead, run "
        "'repro serve --help'.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list"],
        help="which table/figure to regenerate ('list' shows descriptions)",
    )
    parser.add_argument(
        "--dataset", default="storage", choices=dataset_names(),
        help="dataset for single-dataset experiments (default: storage)",
    )
    parser.add_argument(
        "--datasets", nargs="+", default=None, choices=dataset_names(),
        help="datasets for table2 (default: all four)",
    )
    parser.add_argument(
        "--epsilon", type=float, default=1.0,
        help="privacy budget for single-epsilon experiments (default: 1.0)",
    )
    parser.add_argument(
        "--epsilons", nargs="+", type=float, default=(1.0, 0.1),
        help="privacy budgets for table2 (default: 1.0 0.1)",
    )
    parser.add_argument(
        "--n-points", type=int, default=None,
        help="override the dataset size (default: registry default)",
    )
    parser.add_argument(
        "--queries-per-size", type=int, default=200,
        help="queries per size, as in the paper (default: 200)",
    )
    parser.add_argument(
        "--trials", type=int, default=1, help="independent fits to average over"
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="processes for trial parallelism (0 = one per CPU; default: "
        "serial, or the REPRO_WORKERS environment variable). Pooled "
        "errors are bit-identical to the serial run for any value.",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["serve"]:
        # The serving layer has its own option surface; hand the rest of
        # the command line to it untouched.
        from repro.service.cli import main as serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name.ljust(width)}  {EXPERIMENTS[name]}")
        print(f"\n{'serve'.ljust(width)}  start the synopsis HTTP server "
              "(python -m repro serve --help)")
        return 0

    common = dict(
        n_points=args.n_points,
        queries_per_size=args.queries_per_size,
        seed=args.seed,
        n_workers=args.workers,
    )
    if args.experiment == "figure1":
        report = figure1.run()
    elif args.experiment == "figure2":
        report = figure2.run(
            args.dataset, args.epsilon, n_trials=args.trials, **common
        )
    elif args.experiment == "figure3":
        report = figure3.run(
            args.dataset, args.epsilon, n_trials=args.trials, **common
        )
    elif args.experiment == "figure4":
        report = figure4.run(
            args.dataset, args.epsilon, n_trials=args.trials, **common
        )
    elif args.experiment == "figure5":
        report = figure5.run(
            args.dataset, args.epsilon, n_trials=args.trials, **common
        )
    elif args.experiment == "figure6":
        report = figure6.run(
            args.dataset, args.epsilon, n_trials=args.trials, **common
        )
    elif args.experiment == "suite":
        from dataclasses import replace

        from repro.experiments.suite import QUICK_SCALE, run_suite

        report = run_suite(
            replace(QUICK_SCALE, n_trials=args.trials, n_workers=args.workers)
        )
    elif args.experiment == "table2":
        report = table2.run(
            dataset_names=args.datasets,
            epsilons=tuple(args.epsilons),
            n_points=args.n_points,
            queries_per_size=args.queries_per_size,
            n_trials=args.trials,
            seed=args.seed,
            n_workers=args.workers,
        )
    else:  # pragma: no cover - argparse choices prevent this
        raise AssertionError(args.experiment)

    print(report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
