"""Privacy substrate: budgets, mechanisms, and composition helpers."""

from repro.privacy.budget import BudgetEntry, BudgetExceededError, PrivacyBudget
from repro.privacy.composition import (
    geometric_allocation,
    parallel_epsilon,
    sequential_epsilon,
    uniform_allocation,
)
from repro.privacy.validation import (
    PrivacyAuditResult,
    audit_scalar_mechanism,
    laplace_epsilon_bound,
)
from repro.privacy.mechanisms import (
    ensure_rng,
    exponential_mechanism,
    laplace_mechanism,
    laplace_noise,
    laplace_scale,
    noisy_count,
    noisy_histogram,
    noisy_median_index,
)

__all__ = [
    "BudgetEntry",
    "BudgetExceededError",
    "PrivacyAuditResult",
    "PrivacyBudget",
    "audit_scalar_mechanism",
    "laplace_epsilon_bound",
    "ensure_rng",
    "exponential_mechanism",
    "geometric_allocation",
    "laplace_mechanism",
    "laplace_noise",
    "laplace_scale",
    "noisy_count",
    "noisy_histogram",
    "noisy_median_index",
    "parallel_epsilon",
    "sequential_epsilon",
    "uniform_allocation",
]
