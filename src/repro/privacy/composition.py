"""Composition reasoning helpers.

These small utilities encode the two composition theorems the paper relies
on (Section II-A):

* **Sequential composition** -- running mechanisms with budgets
  ``eps_1, ..., eps_k`` on the same data satisfies ``sum(eps_i)``-DP.
* **Parallel composition** -- running mechanisms on *disjoint* partitions of
  the data satisfies ``max(eps_i)``-DP.

The synopsis implementations use these helpers to document and verify their
budget arithmetic (e.g. AG spends ``alpha * eps`` on the level-1 grid and
``(1 - alpha) * eps`` on level-2 grids; each level is a disjoint partition,
and the two levels compose sequentially).
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "sequential_epsilon",
    "parallel_epsilon",
    "geometric_allocation",
    "uniform_allocation",
]


def sequential_epsilon(epsilons: Iterable[float]) -> float:
    """Total epsilon for mechanisms composed sequentially on the same data."""
    total = 0.0
    for eps in epsilons:
        if eps < 0:
            raise ValueError(f"epsilon must be non-negative, got {eps}")
        total += eps
    return total


def parallel_epsilon(epsilons: Iterable[float]) -> float:
    """Total epsilon for mechanisms applied to disjoint data partitions."""
    best = 0.0
    for eps in epsilons:
        if eps < 0:
            raise ValueError(f"epsilon must be non-negative, got {eps}")
        best = max(best, eps)
    return best


def uniform_allocation(total_epsilon: float, levels: int) -> list[float]:
    """Split ``total_epsilon`` evenly across ``levels`` sequential steps."""
    if levels <= 0:
        raise ValueError(f"levels must be positive, got {levels}")
    if total_epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {total_epsilon}")
    return [total_epsilon / levels] * levels


def geometric_allocation(
    total_epsilon: float, levels: int, ratio: float = 2.0 ** (1.0 / 3.0)
) -> list[float]:
    """Geometrically increasing per-level budgets summing to ``total_epsilon``.

    Cormode et al. (ICDE 2012) observed that hierarchical methods do better
    when deeper levels — whose counts are smaller and noisier in relative
    terms — receive more budget.  The optimal ratio for range queries under
    a binary hierarchy is ``2^(1/3)``; we use that as the default and the
    KD-hybrid baseline builds on it.

    Returns a list ordered from the *root* level (smallest share) to the
    *leaf* level (largest share).
    """
    if levels <= 0:
        raise ValueError(f"levels must be positive, got {levels}")
    if total_epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {total_epsilon}")
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    weights = [ratio**level for level in range(levels)]
    scale = total_epsilon / sum(weights)
    return [weight * scale for weight in weights]
