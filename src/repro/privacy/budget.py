"""Privacy-budget accounting.

Every differentially private operation in the library draws from a
:class:`PrivacyBudget`.  The budget object plays two roles:

1. **Safety** -- an algorithm that accidentally spends more than its total
   epsilon raises :class:`BudgetExceededError` instead of silently breaking
   the privacy guarantee.
2. **Auditability** -- the ledger of :class:`BudgetEntry` records shows how
   the total epsilon was divided among the steps of a mechanism (e.g. the
   AG method's ``alpha * eps`` first level and ``(1 - alpha) * eps`` second
   level), which the tests assert against the paper's prescriptions.

Sequential composition is the default accounting rule: spends add up.  Steps
that act on *disjoint* subsets of tuples fall under parallel composition and
should be charged once at the maximum epsilon; callers express this by
charging a single :meth:`PrivacyBudget.spend` for the whole partitioned
query set (each tuple affects only one cell, so one count query per cell at
``eps`` costs ``eps`` total, not ``n_cells * eps``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BudgetExceededError", "BudgetEntry", "PrivacyBudget"]

# Tolerance for floating-point accumulation when checking overdraft.
_EPS_TOLERANCE = 1e-9


class BudgetExceededError(RuntimeError):
    """Raised when a mechanism tries to spend more epsilon than remains."""


@dataclass(frozen=True)
class BudgetEntry:
    """One item in a budget's spending ledger."""

    epsilon: float
    label: str


@dataclass
class PrivacyBudget:
    """A total epsilon and a ledger of how it has been spent.

    Parameters
    ----------
    total:
        The overall privacy budget epsilon for the task.  Must be positive.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.5, "first-level counts")
    >>> budget.remaining
    0.5
    """

    total: float
    _ledger: list[BudgetEntry] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError(f"privacy budget must be positive, got {self.total}")

    @property
    def spent(self) -> float:
        """Total epsilon consumed so far (sequential composition)."""
        return sum(entry.epsilon for entry in self._ledger)

    @property
    def remaining(self) -> float:
        """Epsilon still available, never below zero."""
        return max(0.0, self.total - self.spent)

    @property
    def ledger(self) -> tuple[BudgetEntry, ...]:
        """Immutable view of the spending history."""
        return tuple(self._ledger)

    def spend(self, epsilon: float, label: str = "") -> None:
        """Consume ``epsilon`` from the budget.

        Raises
        ------
        ValueError
            If ``epsilon`` is not positive.
        BudgetExceededError
            If the spend would exceed the total (beyond floating-point
            tolerance).
        """
        if epsilon <= 0:
            raise ValueError(f"epsilon spend must be positive, got {epsilon}")
        if self.spent + epsilon > self.total + _EPS_TOLERANCE:
            raise BudgetExceededError(
                f"spending {epsilon:.6g} ({label or 'unlabelled'}) would exceed "
                f"budget: spent {self.spent:.6g} of {self.total:.6g}"
            )
        self._ledger.append(BudgetEntry(epsilon, label))

    def can_spend(self, epsilon: float) -> bool:
        """True when ``epsilon`` more can be spent without overdraft."""
        return epsilon > 0 and self.spent + epsilon <= self.total + _EPS_TOLERANCE

    def split(self, fractions: dict[str, float]) -> dict[str, float]:
        """Divide the *total* budget into labelled epsilon shares.

        ``fractions`` maps labels to positive weights summing to at most 1.
        This is a planning helper: it does not spend anything, it only
        computes the per-step epsilons a mechanism should pass to
        :meth:`spend` later.

        >>> PrivacyBudget(2.0).split({"level1": 0.5, "level2": 0.5})
        {'level1': 1.0, 'level2': 1.0}
        """
        if not fractions:
            raise ValueError("fractions must be non-empty")
        for label, frac in fractions.items():
            if frac <= 0:
                raise ValueError(f"fraction for {label!r} must be positive, got {frac}")
        if sum(fractions.values()) > 1.0 + _EPS_TOLERANCE:
            raise ValueError(
                f"fractions sum to {sum(fractions.values()):.6g} > 1"
            )
        return {label: frac * self.total for label, frac in fractions.items()}

    def exhausted(self) -> bool:
        """True when (essentially) nothing remains."""
        return self.remaining <= _EPS_TOLERANCE
