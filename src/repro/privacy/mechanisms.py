"""Differentially private primitives: the Laplace and exponential mechanisms.

All noise in the library flows through this module so that (a) every noisy
release is charged to a :class:`~repro.privacy.budget.PrivacyBudget` and
(b) randomness is always drawn from an explicitly supplied
``numpy.random.Generator``, which keeps experiments reproducible.

The paper uses:

* the **Laplace mechanism** for all count queries (sensitivity 1 for a
  histogram over disjoint cells, by parallel composition), and
* the **exponential mechanism** inside the KD-tree baselines to select
  noisy medians (Cormode et al., ICDE 2012).
"""

from __future__ import annotations

import math

import numpy as np

from repro.privacy.budget import PrivacyBudget

__all__ = [
    "ensure_rng",
    "laplace_scale",
    "laplace_noise",
    "laplace_mechanism",
    "noisy_count",
    "noisy_histogram",
    "exponential_mechanism",
    "noisy_median_index",
]


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` for OS-seeded randomness.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """The Laplace scale parameter ``b = sensitivity / epsilon``.

    The resulting ``Lap(b)`` noise has standard deviation ``sqrt(2) * b``.
    """
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return sensitivity / epsilon


def laplace_noise(
    scale: float,
    rng: np.random.Generator,
    size: int | tuple[int, ...] | None = None,
) -> np.ndarray | float:
    """Draw Laplace noise with the given scale.

    Returns a scalar when ``size`` is ``None``, otherwise an array.
    """
    if scale <= 0:
        raise ValueError(f"Laplace scale must be positive, got {scale}")
    return rng.laplace(loc=0.0, scale=scale, size=size)


def laplace_mechanism(
    value: float | np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    sensitivity: float = 1.0,
    budget: PrivacyBudget | None = None,
    label: str = "laplace",
) -> float | np.ndarray:
    """Release ``value + Lap(sensitivity / epsilon)`` noise (element-wise).

    When ``value`` is an array, the *same* epsilon is charged once: the
    caller asserts that the components have combined L1 sensitivity
    ``sensitivity`` (e.g. a histogram over disjoint cells).  If ``budget``
    is given, the spend is recorded against it.
    """
    if budget is not None:
        budget.spend(epsilon, label)
    scale = laplace_scale(sensitivity, epsilon)
    value = np.asarray(value, dtype=float)
    noise = laplace_noise(scale, rng, size=value.shape if value.shape else None)
    result = value + noise
    if result.ndim == 0:
        return float(result)
    return result


def noisy_count(
    count: float,
    epsilon: float,
    rng: np.random.Generator,
    budget: PrivacyBudget | None = None,
    label: str = "count",
) -> float:
    """A single differentially private count (sensitivity 1)."""
    return float(
        laplace_mechanism(count, epsilon, rng, sensitivity=1.0, budget=budget, label=label)
    )


def noisy_histogram(
    counts: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    budget: PrivacyBudget | None = None,
    label: str = "histogram",
) -> np.ndarray:
    """A differentially private histogram over *disjoint* cells.

    Each tuple contributes to exactly one cell, so by parallel composition
    adding independent ``Lap(1 / epsilon)`` noise to every cell satisfies
    ``epsilon``-DP overall and is charged as a single spend.
    """
    counts = np.asarray(counts, dtype=float)
    return np.asarray(
        laplace_mechanism(counts, epsilon, rng, sensitivity=1.0, budget=budget, label=label)
    )


def exponential_mechanism(
    utilities: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    sensitivity: float = 1.0,
    budget: PrivacyBudget | None = None,
    label: str = "exponential",
) -> int:
    """Sample an index with probability proportional to ``exp(eps * u / (2 * GS))``.

    ``utilities`` is a 1-D array of scores; higher is better.  Uses the
    log-sum-exp trick for numerical stability, so very negative utilities
    are safe.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 1 or utilities.size == 0:
        raise ValueError("utilities must be a non-empty 1-D array")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    if budget is not None:
        budget.spend(epsilon, label)
    logits = (epsilon / (2.0 * sensitivity)) * utilities
    logits = logits - logits.max()
    weights = np.exp(logits)
    probabilities = weights / weights.sum()
    return int(rng.choice(utilities.size, p=probabilities))


def noisy_median_index(
    sorted_values: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    budget: PrivacyBudget | None = None,
) -> int:
    """Differentially private median selection over sorted values.

    Implements the exponential mechanism with the rank-distance utility
    ``u(i) = -|i - n/2|`` whose sensitivity is 1 (adding or removing one
    tuple shifts every rank by at most one).  Returns an *index* into
    ``sorted_values``; the caller uses ``sorted_values[index]`` as the split
    coordinate.  This is the noisy-median primitive of the KD-tree baselines.
    """
    sorted_values = np.asarray(sorted_values, dtype=float)
    n = sorted_values.size
    if n == 0:
        raise ValueError("cannot take the median of an empty array")
    if n == 1:
        if budget is not None:
            budget.spend(epsilon, "median")
        return 0
    ranks = np.arange(n, dtype=float)
    utilities = -np.abs(ranks - (n - 1) / 2.0)
    return exponential_mechanism(
        utilities, epsilon, rng, sensitivity=1.0, budget=budget, label="median"
    )


def laplace_variance(epsilon: float, sensitivity: float = 1.0) -> float:
    """Variance ``2 * (sensitivity / epsilon)^2`` of the Laplace mechanism."""
    return 2.0 * laplace_scale(sensitivity, epsilon) ** 2


def laplace_stddev(epsilon: float, sensitivity: float = 1.0) -> float:
    """Standard deviation ``sqrt(2) * sensitivity / epsilon``."""
    return math.sqrt(laplace_variance(epsilon, sensitivity))
