"""Empirical differential-privacy validation.

These tools sanity-check the library's mechanisms *statistically*: they
run a mechanism many times on a pair of neighbouring datasets and verify
that no event's probability ratio exceeds ``e^eps`` beyond sampling error.
They cannot *prove* privacy (no black-box test can), but they reliably
catch the classic implementation bugs — wrong noise scale, forgotten
sensitivity factor, accidental reuse of exact counts — which is what a
test suite needs.

The core check follows the spirit of "DP-Sniper"/StatDP-style auditing in
a simplified form: pick a family of threshold events over a released
scalar, estimate each event's probability under both datasets, and compare
the worst observed ratio against ``e^eps`` with a binomial confidence
margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.privacy.mechanisms import ensure_rng

__all__ = ["PrivacyAuditResult", "audit_scalar_mechanism", "laplace_epsilon_bound"]


@dataclass(frozen=True)
class PrivacyAuditResult:
    """Outcome of an empirical DP audit."""

    claimed_epsilon: float
    observed_epsilon: float  # worst log-ratio over the tested events
    n_samples: int
    margin: float  # additive slack used to absorb sampling error

    @property
    def passed(self) -> bool:
        return self.observed_epsilon <= self.claimed_epsilon + self.margin

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"[{verdict}] claimed eps={self.claimed_epsilon:.3f}, "
            f"observed eps<={self.observed_epsilon:.3f} "
            f"(+margin {self.margin:.3f}, n={self.n_samples})"
        )


def audit_scalar_mechanism(
    mechanism: Callable[[int, np.random.Generator], float],
    claimed_epsilon: float,
    rng: np.random.Generator | int | None,
    n_samples: int = 20_000,
    n_thresholds: int = 21,
    probability_floor: float = 0.01,
) -> PrivacyAuditResult:
    """Estimate the privacy loss of a scalar mechanism on neighbours.

    ``mechanism(world, rng)`` must run the mechanism on dataset ``D``
    (``world = 0``) or its neighbour ``D'`` (``world = 1``) and return a
    released scalar.  The audit estimates ``P[release <= t]`` under both
    worlds over a grid of thresholds ``t`` and reports the worst absolute
    log-ratio (both tail directions).

    Events with estimated probability below ``probability_floor`` in both
    worlds are skipped — their ratio estimates are pure noise.  The
    returned margin is three binomial standard errors at the floor,
    translated into log-ratio units.
    """
    if claimed_epsilon <= 0:
        raise ValueError("claimed_epsilon must be positive")
    if n_samples < 100:
        raise ValueError("n_samples too small to estimate probabilities")
    rng = ensure_rng(rng)

    samples_0 = np.array([mechanism(0, rng) for _ in range(n_samples)])
    samples_1 = np.array([mechanism(1, rng) for _ in range(n_samples)])

    pooled = np.concatenate([samples_0, samples_1])
    thresholds = np.quantile(pooled, np.linspace(0.02, 0.98, n_thresholds))

    worst = 0.0
    for threshold in thresholds:
        for probabilities in (
            (np.mean(samples_0 <= threshold), np.mean(samples_1 <= threshold)),
            (np.mean(samples_0 > threshold), np.mean(samples_1 > threshold)),
        ):
            p0, p1 = probabilities
            if max(p0, p1) < probability_floor:
                continue
            p0 = max(p0, probability_floor / 10)
            p1 = max(p1, probability_floor / 10)
            worst = max(worst, abs(math.log(p0 / p1)))

    # Sampling slack: 3 standard errors of a binomial at the floor
    # probability, propagated through the log ratio.
    standard_error = math.sqrt(probability_floor / n_samples) / probability_floor
    margin = 6.0 * standard_error
    return PrivacyAuditResult(
        claimed_epsilon=claimed_epsilon,
        observed_epsilon=worst,
        n_samples=n_samples,
        margin=margin,
    )


def laplace_epsilon_bound(
    true_difference: float, scale: float
) -> float:
    """Exact worst-case privacy loss of a Laplace release.

    For outputs ``x + Lap(b)`` vs ``x' + Lap(b)`` with ``|x - x'| =
    true_difference``, the log-likelihood ratio is bounded by
    ``true_difference / b`` — the analytical reference the audits are
    compared against.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return abs(true_difference) / scale
