"""Unit tests for the vectorised batch query engines."""

import numpy as np
import pytest

from repro.core.adaptive_grid import AdaptiveGridBuilder
from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.uniform_grid import UniformGridBuilder
from repro.queries.engine import (
    AdaptiveGridEngine,
    BatchQueryEngine,
    FallbackEngine,
    FlatAdaptiveGridEngine,
    make_engine,
    scalar_answer_batch,
)


@pytest.fixture
def layout() -> GridLayout:
    return GridLayout(Domain2D(-2.0, 1.0, 6.0, 5.0), 7, 5)


@pytest.fixture
def counts(layout, rng) -> np.ndarray:
    return rng.normal(10.0, 4.0, size=layout.shape)


class TestExactness:
    def test_matches_per_query_estimate(self, layout, counts, rng):
        """The prefix-sum path agrees with the bilinear-form path exactly."""
        engine = BatchQueryEngine(layout, counts)
        bounds = layout.domain.bounds
        rects = []
        for _ in range(300):
            x = np.sort(rng.uniform(bounds.x_lo, bounds.x_hi, 2))
            y = np.sort(rng.uniform(bounds.y_lo, bounds.y_hi, 2))
            rects.append(Rect(x[0], y[0], x[1], y[1]))
        batch = engine.answer_batch(rects)
        singles = np.array([layout.estimate(counts, rect) for rect in rects])
        np.testing.assert_allclose(batch, singles, rtol=1e-9, atol=1e-9)

    def test_full_domain(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        result = engine.answer_batch([layout.domain.bounds])
        assert result[0] == pytest.approx(counts.sum())

    def test_cell_aligned(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        cell = layout.cell_rect(2, 3)
        assert engine.answer_batch([cell])[0] == pytest.approx(counts[2, 3])

    def test_out_of_domain_clipped(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        huge = Rect(-100.0, -100.0, 100.0, 100.0)
        assert engine.answer_batch([huge])[0] == pytest.approx(counts.sum())

    def test_disjoint_is_zero(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        outside = Rect(100.0, 100.0, 101.0, 101.0)
        assert engine.answer_batch([outside])[0] == 0.0

    def test_degenerate_is_zero(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        line = Rect(0.0, 2.0, 0.0, 4.0)
        assert engine.answer_batch([line])[0] == 0.0


class TestInputs:
    def test_array_input(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        boxes = np.array([[0.0, 2.0, 1.0, 3.0], [-2.0, 1.0, 6.0, 5.0]])
        result = engine.answer_batch(boxes)
        assert result.shape == (2,)
        assert result[1] == pytest.approx(counts.sum())

    def test_empty_batch(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        assert engine.answer_batch([]).shape == (0,)

    def test_generator_input(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        rects = [Rect(0.0, 2.0, 1.0, 3.0), layout.domain.bounds]
        result = engine.answer_batch(rect for rect in rects)
        np.testing.assert_array_equal(result, engine.answer_batch(rects))

    def test_plain_list_rows_input(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        result = engine.answer_batch([[-2.0, 1.0, 6.0, 5.0]])
        assert result[0] == pytest.approx(counts.sum())

    def test_bad_array_shape(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        with pytest.raises(ValueError):
            engine.answer_batch(np.zeros((3, 3)))

    def test_counts_shape_checked(self, layout):
        with pytest.raises(ValueError):
            BatchQueryEngine(layout, np.zeros((2, 2)))


class TestSynopsisIntegration:
    def test_answer_many_uses_engine_and_matches_answer(self, small_skewed, rng):
        synopsis = UniformGridBuilder(grid_size=16).fit(small_skewed, 1.0, rng)
        rects = [
            Rect(0.1, 0.1, 0.4, 0.9),
            Rect(0.0, 0.0, 1.0, 1.0),
            Rect(0.33, 0.21, 0.34, 0.23),
        ]
        many = synopsis.answer_many(rects)
        singles = np.array([synopsis.answer(rect) for rect in rects])
        np.testing.assert_allclose(many, singles, rtol=1e-9)


def random_rects(rng, n=200):
    """Unit-square query mix: interior, border-crossing, and covering."""
    rects = [Rect(0.0, 0.0, 1.0, 1.0), Rect(-0.5, -0.5, 1.5, 1.5)]
    for _ in range(n - len(rects)):
        x = np.sort(rng.uniform(-0.1, 1.1, 2))
        y = np.sort(rng.uniform(-0.1, 1.1, 2))
        rects.append(Rect(x[0], y[0], x[1], y[1]))
    return rects


class TestAdaptiveGridEngine:
    @pytest.mark.parametrize("constrained_inference", [True, False])
    def test_matches_scalar_answers(self, small_skewed, rng, constrained_inference):
        """Summed per-cell engines equal the scalar two-level path."""
        synopsis = AdaptiveGridBuilder(
            constrained_inference=constrained_inference
        ).fit(small_skewed, 1.0, rng)
        engine = AdaptiveGridEngine(synopsis)
        rects = random_rects(rng)
        batch = engine.answer_batch(rects)
        singles = np.array([synopsis.answer(rect) for rect in rects])
        np.testing.assert_allclose(batch, singles, rtol=1e-9, atol=1e-7)

    def test_one_engine_per_first_level_cell(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=4).fit(
            small_skewed, 1.0, rng
        )
        assert AdaptiveGridEngine(synopsis).n_cell_engines == 16

    def test_empty_batch(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=3).fit(
            small_skewed, 1.0, rng
        )
        assert AdaptiveGridEngine(synopsis).answer_batch([]).shape == (0,)

    def test_inverted_row_does_not_corrupt_other_queries(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=4).fit(
            small_skewed, 1.0, rng
        )
        engine = AdaptiveGridEngine(synopsis)
        good = [0.2, 0.2, 0.6, 0.6]
        alone = engine.answer_batch(np.array([good]))[0]
        assert alone != 0.0
        # An inverted row must answer 0 itself AND leave its batchmates'
        # estimates untouched (its reversed index range once cancelled
        # other queries' cell-dispatch bookkeeping).
        mixed = engine.answer_batch(np.array([good, [0.9, 0.2, 0.1, 0.6]]))
        assert mixed[1] == 0.0
        assert mixed[0] == pytest.approx(alone)

    def test_ag_answer_many_delegates_and_matches(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder().fit(small_skewed, 1.0, rng)
        rects = random_rects(rng, n=64)
        many = synopsis.answer_many(rects)
        singles = np.array([synopsis.answer(rect) for rect in rects])
        np.testing.assert_allclose(many, singles, rtol=1e-9, atol=1e-7)

    def test_ag_answer_many_small_batch_stays_scalar(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder().fit(small_skewed, 1.0, rng)
        small = synopsis.answer_many([Rect(0.2, 0.2, 0.7, 0.7)])
        assert small.shape == (1,)
        assert synopsis._engine is None  # scalar path: no engine built


class TestFlatAdaptiveGridEngine:
    @pytest.mark.parametrize("constrained_inference", [True, False])
    def test_matches_scalar_answers(self, small_skewed, rng, constrained_inference):
        """The flat CSR pair expansion equals the scalar two-level path."""
        synopsis = AdaptiveGridBuilder(
            constrained_inference=constrained_inference
        ).fit(small_skewed, 1.0, rng)
        engine = FlatAdaptiveGridEngine(synopsis)
        rects = random_rects(rng)
        batch = engine.answer_batch(rects)
        singles = np.array([synopsis.answer(rect) for rect in rects])
        np.testing.assert_allclose(batch, singles, rtol=1e-9, atol=1e-7)

    def test_matches_per_cell_reference_engine(self, small_skewed, rng):
        """Flat engine and the retained composite engine agree."""
        synopsis = AdaptiveGridBuilder(first_level_size=6).fit(
            small_skewed, 1.0, rng
        )
        rects = random_rects(rng)
        flat = FlatAdaptiveGridEngine(synopsis).answer_batch(rects)
        reference = AdaptiveGridEngine(synopsis).answer_batch(rects)
        np.testing.assert_allclose(flat, reference, rtol=1e-9, atol=1e-9)

    def test_covers_every_first_level_cell(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=4).fit(
            small_skewed, 1.0, rng
        )
        assert FlatAdaptiveGridEngine(synopsis).n_cells == 16

    def test_empty_batch(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=3).fit(
            small_skewed, 1.0, rng
        )
        assert FlatAdaptiveGridEngine(synopsis).answer_batch([]).shape == (0,)

    def test_all_rows_inverted(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=3).fit(
            small_skewed, 1.0, rng
        )
        engine = FlatAdaptiveGridEngine(synopsis)
        out = engine.answer_batch(np.array([[0.9, 0.2, 0.1, 0.6]] * 3))
        np.testing.assert_array_equal(out, np.zeros(3))

    def test_inverted_row_does_not_corrupt_other_queries(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=4).fit(
            small_skewed, 1.0, rng
        )
        engine = FlatAdaptiveGridEngine(synopsis)
        good = [0.2, 0.2, 0.6, 0.6]
        alone = engine.answer_batch(np.array([good]))[0]
        assert alone != 0.0
        mixed = engine.answer_batch(np.array([good, [0.9, 0.2, 0.1, 0.6]]))
        assert mixed[1] == 0.0
        assert mixed[0] == pytest.approx(alone)

    def test_out_of_domain_and_degenerate(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=3).fit(
            small_skewed, 1.0, rng
        )
        engine = FlatAdaptiveGridEngine(synopsis)
        out = engine.answer_batch(
            np.array(
                [
                    [5.0, 5.0, 6.0, 6.0],  # fully outside
                    [0.3, 0.2, 0.3, 0.8],  # zero width
                    [-1.0, -1.0, 2.0, 2.0],  # covers the whole domain
                ]
            )
        )
        assert out[0] == 0.0
        assert out[1] == 0.0
        assert out[2] == pytest.approx(synopsis.total())

    def test_nbytes_positive(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=3).fit(
            small_skewed, 1.0, rng
        )
        assert FlatAdaptiveGridEngine(synopsis).nbytes > 0


class TestScalarAnswerBatch:
    def test_matches_answer_loop(self, small_skewed, rng):
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        boxes = np.array([[0.1, 0.1, 0.5, 0.5], [0.0, 0.0, 1.0, 1.0]])
        out = scalar_answer_batch(synopsis, boxes)
        expected = np.array([synopsis.answer(Rect(*row)) for row in boxes])
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_inverted_rows_answer_zero(self, small_skewed, rng):
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        out = scalar_answer_batch(
            synopsis, np.array([[0.9, 0.1, 0.1, 0.5], [0.1, 0.1, 0.5, 0.5]])
        )
        assert out[0] == 0.0
        assert out[1] != 0.0

    def test_empty_batch_returns_zero_length_vector(self, small_skewed, rng):
        """Pins the empty-batch contract: shape (0,), synopsis untouched."""
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        for empty in ([], np.empty((0, 4)), np.array([])):
            out = scalar_answer_batch(synopsis, empty)
            assert out.shape == (0,)
            assert out.dtype == float

    def test_empty_batch_never_calls_answer(self, unit_domain):
        from repro.core.synopsis import Synopsis

        class ExplodingSynopsis(Synopsis):
            def answer(self, rect):
                raise AssertionError("answer must not be called")

        synopsis = ExplodingSynopsis(unit_domain, 1.0)
        assert scalar_answer_batch(synopsis, []).shape == (0,)
        assert FallbackEngine(synopsis).answer_batch([]).shape == (0,)

    def test_degenerate_rows_answer_exact_edge(self, small_skewed, rng):
        """Zero-area rows evaluate the equivalent edge/point Rect query."""
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        boxes = np.array(
            [
                [0.3, 0.2, 0.3, 0.8],  # vertical edge
                [0.2, 0.5, 0.8, 0.5],  # horizontal edge
                [0.5, 0.5, 0.5, 0.5],  # point
            ]
        )
        out = scalar_answer_batch(synopsis, boxes)
        expected = np.array([synopsis.answer(Rect(*row)) for row in boxes])
        np.testing.assert_array_equal(out, expected)

    def test_nan_rows_answer_zero(self, small_skewed, rng):
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        out = scalar_answer_batch(
            synopsis,
            np.array([[np.nan, 0.1, 0.5, 0.5], [0.1, 0.1, 0.5, np.nan]]),
        )
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_fallback_engine_routes_through_helper(self, small_skewed, rng):
        from repro.baselines.kd_tree import KDStandardBuilder

        synopsis = KDStandardBuilder(depth=3).fit(small_skewed, 1.0, rng)
        boxes = np.array([[0.1, 0.1, 0.6, 0.6]])
        np.testing.assert_array_equal(
            FallbackEngine(synopsis).answer_batch(boxes),
            scalar_answer_batch(synopsis, boxes),
        )


class TestDegenerateIntervalRows:
    """Engines == ``scalar_answer_batch`` on 1-D degenerate rows.

    Interval queries embed 1-D ranges as full-height (or full-width)
    rectangles; the degenerate end of that family is the zero-width
    interval ``[x, x]``.  Every vectorised engine must answer those rows
    — plus inverted and NaN rows — exactly like the scalar loop, which
    for grid-family synopses means exactly 0.0.  Regression for the
    BatchQueryEngine NaN crash (undefined int64 cast -> out-of-bounds
    gather).
    """

    @staticmethod
    def interval_mix():
        """Zero-width / zero-height intervals, NaN, inverted, valid rows."""
        return np.array(
            [
                [0.3, 0.0, 0.3, 1.0],      # zero-width x-interval
                [0.0, 0.6, 1.0, 0.6],      # zero-height y-interval
                [0.0, 0.0, 0.0, 1.0],      # zero-width on the domain edge
                [1.0, 0.0, 1.0, 1.0],      # zero-width on the far edge
                [0.5, 0.5, 0.5, 0.5],      # point
                [1.5, 0.0, 1.5, 1.0],      # zero-width outside the domain
                [np.nan, 0.1, 0.5, 0.5],   # NaN low
                [0.1, 0.1, 0.5, np.nan],   # NaN high
                [np.nan] * 4,              # all-NaN
                [0.9, 0.1, 0.1, 0.5],      # inverted x
                [0.1, 0.9, 0.5, 0.1],      # inverted y
                [0.1, 0.1, 0.6, 0.6],      # valid control row
                [0.0, 0.0, 1.0, 1.0],      # full domain control row
            ]
        )

    def test_batch_engine_matches_scalar(self, small_skewed, rng):
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        boxes = self.interval_mix()
        engine = make_engine(synopsis)
        out = engine.answer_batch(boxes)
        expected = scalar_answer_batch(synopsis, boxes)
        # Degenerate/invalid rows are exactly 0 on both paths.
        np.testing.assert_array_equal(out[:11], np.zeros(11))
        np.testing.assert_array_equal(expected[:11], np.zeros(11))
        np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_flat_adaptive_engine_matches_scalar(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=4).fit(
            small_skewed, 1.0, rng
        )
        boxes = self.interval_mix()
        out = make_engine(synopsis).answer_batch(boxes)
        expected = scalar_answer_batch(synopsis, boxes)
        np.testing.assert_array_equal(out[:11], np.zeros(11))
        np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_flat_tree_engine_matches_scalar(self, small_skewed, rng):
        from repro.baselines.quadtree import QuadtreeBuilder

        synopsis = QuadtreeBuilder(depth=4).fit(small_skewed, 1.0, rng)
        boxes = self.interval_mix()
        out = make_engine(synopsis).answer_batch(boxes)
        expected = scalar_answer_batch(synopsis, boxes)
        scale = max(1.0, float(np.abs(expected).max()))
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9 * scale)

    def test_nan_rows_do_not_crash_batch_engine(self, small_skewed, rng):
        """The exact pre-fix failure: NaN row -> IndexError in the gather."""
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        out = synopsis.answer_many(
            np.array([[np.nan, 0.1, 0.9, 0.9], [0.2, 0.2, 0.8, 0.8]])
        )
        assert out[0] == 0.0
        assert np.isfinite(out[1])


class TestMakeEngine:
    def test_uniform_grid_gets_prefix_sum_engine(self, small_skewed, rng):
        synopsis = UniformGridBuilder(grid_size=8).fit(small_skewed, 1.0, rng)
        assert isinstance(make_engine(synopsis), BatchQueryEngine)

    def test_adaptive_grid_gets_flat_engine(self, small_skewed, rng):
        synopsis = AdaptiveGridBuilder(first_level_size=3).fit(
            small_skewed, 1.0, rng
        )
        assert isinstance(make_engine(synopsis), FlatAdaptiveGridEngine)

    def test_tree_synopses_get_flat_tree_engine(self, small_skewed, rng):
        from repro.baselines.kd_tree import KDStandardBuilder
        from repro.queries.engine import FlatTreeEngine

        synopsis = KDStandardBuilder(depth=3).fit(small_skewed, 1.0, rng)
        engine = make_engine(synopsis)
        assert isinstance(engine, FlatTreeEngine)
        rect = Rect(0.1, 0.1, 0.6, 0.6)
        assert engine.answer_batch([rect])[0] == pytest.approx(
            synopsis.answer(rect)
        )

    def test_unregistered_synopses_get_fallback(self, unit_domain):
        from repro.core.synopsis import Synopsis

        class FortyTwoSynopsis(Synopsis):
            def answer(self, rect):
                return 42.0

        engine = make_engine(FortyTwoSynopsis(unit_domain, 1.0))
        assert isinstance(engine, FallbackEngine)
        assert engine.answer_batch([Rect(0.1, 0.1, 0.6, 0.6)])[0] == 42.0

    def test_fallback_hits_are_counted(self, unit_domain, small_skewed, rng):
        from repro.core.synopsis import Synopsis
        from repro.queries.engine import fallback_engine_count

        class UnregisteredSynopsis(Synopsis):
            def answer(self, rect):
                return 0.0

        before = fallback_engine_count()
        make_engine(UnregisteredSynopsis(unit_domain, 1.0))
        make_engine(UnregisteredSynopsis(unit_domain, 1.0))
        assert fallback_engine_count() == before + 2
        # Registered types never touch the counter.
        make_engine(UniformGridBuilder(grid_size=4).fit(small_skewed, 1.0, rng))
        assert fallback_engine_count() == before + 2


class TestDefaultAnswerMany:
    """The inherited ``Synopsis.answer_many`` routes through the shared
    scalar batch helper instead of a bare per-rect loop (ISSUE 5)."""

    def _synopsis(self, unit_domain):
        from repro.core.synopsis import Synopsis

        class ConstantSynopsis(Synopsis):
            calls = 0

            def answer(self, rect):
                type(self).calls += 1
                return 7.0

        return ConstantSynopsis(unit_domain, 1.0)

    def test_accepts_boxes_array_and_rect_lists(self, unit_domain):
        synopsis = self._synopsis(unit_domain)
        np.testing.assert_array_equal(
            synopsis.answer_many(np.array([[0.1, 0.1, 0.5, 0.5]])), [7.0]
        )
        np.testing.assert_array_equal(
            synopsis.answer_many([Rect(0.1, 0.1, 0.5, 0.5)]), [7.0]
        )

    def test_empty_batch_returns_zero_length(self, unit_domain):
        synopsis = self._synopsis(unit_domain)
        assert synopsis.answer_many([]).shape == (0,)
        assert type(synopsis).calls == 0

    def test_inverted_rows_answer_zero_without_calling_answer(self, unit_domain):
        synopsis = self._synopsis(unit_domain)
        out = synopsis.answer_many(
            np.array([[0.9, 0.1, 0.1, 0.5], [0.1, 0.1, 0.5, 0.5]])
        )
        np.testing.assert_array_equal(out, [0.0, 7.0])
        assert type(synopsis).calls == 1  # only the valid row

    def test_registry_prefers_nearest_ancestor(self, unit_domain):
        from repro.core.synopsis import Synopsis
        from repro.queries.engine import register_engine

        class BaseSynopsis(Synopsis):
            def answer(self, rect):
                return 1.0

        class DerivedSynopsis(BaseSynopsis):
            pass

        sentinel = object()
        try:
            register_engine(BaseSynopsis, lambda synopsis: sentinel)
            # Subclasses inherit the nearest registered ancestor's factory.
            assert make_engine(DerivedSynopsis(unit_domain, 1.0)) is sentinel
            override = object()
            register_engine(DerivedSynopsis, lambda synopsis: override)
            assert make_engine(DerivedSynopsis(unit_domain, 1.0)) is override
            assert make_engine(BaseSynopsis(unit_domain, 1.0)) is sentinel
        finally:
            from repro.queries.engine import _ENGINE_FACTORIES

            _ENGINE_FACTORIES.pop(BaseSynopsis, None)
            _ENGINE_FACTORIES.pop(DerivedSynopsis, None)
