"""Unit tests for the vectorised batch query engine."""

import numpy as np
import pytest

from repro.core.geometry import Domain2D, Rect
from repro.core.grid import GridLayout
from repro.core.uniform_grid import UniformGridBuilder
from repro.queries.engine import BatchQueryEngine


@pytest.fixture
def layout() -> GridLayout:
    return GridLayout(Domain2D(-2.0, 1.0, 6.0, 5.0), 7, 5)


@pytest.fixture
def counts(layout, rng) -> np.ndarray:
    return rng.normal(10.0, 4.0, size=layout.shape)


class TestExactness:
    def test_matches_per_query_estimate(self, layout, counts, rng):
        """The prefix-sum path agrees with the bilinear-form path exactly."""
        engine = BatchQueryEngine(layout, counts)
        bounds = layout.domain.bounds
        rects = []
        for _ in range(300):
            x = np.sort(rng.uniform(bounds.x_lo, bounds.x_hi, 2))
            y = np.sort(rng.uniform(bounds.y_lo, bounds.y_hi, 2))
            rects.append(Rect(x[0], y[0], x[1], y[1]))
        batch = engine.answer_batch(rects)
        singles = np.array([layout.estimate(counts, rect) for rect in rects])
        np.testing.assert_allclose(batch, singles, rtol=1e-9, atol=1e-9)

    def test_full_domain(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        result = engine.answer_batch([layout.domain.bounds])
        assert result[0] == pytest.approx(counts.sum())

    def test_cell_aligned(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        cell = layout.cell_rect(2, 3)
        assert engine.answer_batch([cell])[0] == pytest.approx(counts[2, 3])

    def test_out_of_domain_clipped(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        huge = Rect(-100.0, -100.0, 100.0, 100.0)
        assert engine.answer_batch([huge])[0] == pytest.approx(counts.sum())

    def test_disjoint_is_zero(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        outside = Rect(100.0, 100.0, 101.0, 101.0)
        assert engine.answer_batch([outside])[0] == 0.0

    def test_degenerate_is_zero(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        line = Rect(0.0, 2.0, 0.0, 4.0)
        assert engine.answer_batch([line])[0] == 0.0


class TestInputs:
    def test_array_input(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        boxes = np.array([[0.0, 2.0, 1.0, 3.0], [-2.0, 1.0, 6.0, 5.0]])
        result = engine.answer_batch(boxes)
        assert result.shape == (2,)
        assert result[1] == pytest.approx(counts.sum())

    def test_empty_batch(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        assert engine.answer_batch([]).shape == (0,)

    def test_bad_array_shape(self, layout, counts):
        engine = BatchQueryEngine(layout, counts)
        with pytest.raises(ValueError):
            engine.answer_batch(np.zeros((3, 3)))

    def test_counts_shape_checked(self, layout):
        with pytest.raises(ValueError):
            BatchQueryEngine(layout, np.zeros((2, 2)))


class TestSynopsisIntegration:
    def test_answer_many_uses_engine_and_matches_answer(self, small_skewed, rng):
        synopsis = UniformGridBuilder(grid_size=16).fit(small_skewed, 1.0, rng)
        rects = [
            Rect(0.1, 0.1, 0.4, 0.9),
            Rect(0.0, 0.0, 1.0, 1.0),
            Rect(0.33, 0.21, 0.34, 0.23),
        ]
        many = synopsis.answer_many(rects)
        singles = np.array([synopsis.answer(rect) for rect in rects])
        np.testing.assert_allclose(many, singles, rtol=1e-9)
